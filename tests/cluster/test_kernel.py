"""The bitset MC kernel must be bit-identical to the real lookup path.

Every test runs the same seeded Monte-Carlo estimate twice — once on
the kernel, once with the kernel disabled (by hiding the strategy's
``lookup_profile``) — and demands identical probabilities, identical
message counters, and an identical final RNG state.  Identical RNG
state is the strong claim: it proves the kernel consumed exactly the
draw sequence the Entry-object path would, so *any* downstream seeded
computation is unaffected by which path ran.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.kernel import plan_kernel
from repro.core.entry import make_entries
from repro.metrics.unfairness import retrieval_probabilities
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY

LOOKUPS = 400

SCHEMES = {
    "full_replication": lambda cluster: FullReplication(cluster),
    "fixed": lambda cluster: FixedX(cluster, x=20),
    "random_server": lambda cluster: RandomServerX(cluster, x=20),
    "round_robin": lambda cluster: RoundRobinY(cluster, y=2),
    "hash": lambda cluster: HashY(cluster, y=2),
}


def _stats_tuple(cluster):
    stats = cluster.network.stats
    return (
        stats.total,
        dict(stats.by_category),
        dict(stats.by_type),
        dict(stats.per_server),
        stats.undelivered,
    )


def _measure(build, target, *, fail=(), disable_kernel, seed=1234):
    cluster = Cluster(10, seed=seed)
    strategy = build(cluster)
    entries = make_entries(100)
    strategy.place(entries)
    for server_id in fail:
        cluster.fail(server_id)
    if disable_kernel:
        strategy.lookup_profile = lambda: None  # force the real path
        assert plan_kernel(strategy, target) is None
    else:
        assert plan_kernel(strategy, target) is not None
    probs = retrieval_probabilities(strategy, target, entries, LOOKUPS)
    return probs, _stats_tuple(cluster), cluster.rng.getstate()


@pytest.mark.parametrize("name", sorted(SCHEMES))
@pytest.mark.parametrize("target", [5, 35, 150])
def test_kernel_matches_real_path(name, target):
    build = SCHEMES[name]
    fast = _measure(build, target, disable_kernel=False)
    slow = _measure(build, target, disable_kernel=True)
    assert fast[0] == slow[0], "per-entry probabilities diverge"
    assert fast[1] == slow[1], "message counters diverge"
    assert fast[2] == slow[2], "RNG streams diverge"


@pytest.mark.parametrize("name", sorted(SCHEMES))
def test_kernel_matches_real_path_with_failures(name):
    build = SCHEMES[name]
    fast = _measure(build, 35, fail=(3, 7), disable_kernel=False)
    slow = _measure(build, 35, fail=(3, 7), disable_kernel=True)
    assert fast == slow


def test_kernel_refuses_nonreplayable_setups():
    from repro.cluster.client import Client, RetryPolicy

    cluster = Cluster(10, seed=5)
    strategy = RandomServerX(cluster, x=20)
    strategy.place(make_entries(100))
    assert plan_kernel(strategy, 35) is not None
    strategy.client = Client(cluster, retry_policy=RetryPolicy())
    assert plan_kernel(strategy, 35) is None


def test_kernel_declines_target_zero():
    cluster = Cluster(10, seed=5)
    strategy = RandomServerX(cluster, x=20)
    strategy.place(make_entries(100))
    assert plan_kernel(strategy, 0) is None
