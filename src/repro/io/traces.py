"""Record and replay workload traces as JSON-lines files.

A saved trace captures the §6.1 methodology exactly: the initial
placement batch plus every timestamped add/delete/lookup event.  Traces
saved on one machine replay bit-identically anywhere, which makes
cross-implementation comparisons and bug reports reproducible.

File layout: one JSON object per line.  The first line is a header
(format version + initial entries); each further line is one event.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Union

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.simulation.events import (
    AddEvent,
    DeleteEvent,
    Event,
    FailureEvent,
    LookupEvent,
    RecoveryEvent,
)
from repro.workload.generator import WorkloadTrace

PathLike = Union[str, pathlib.Path]

FORMAT_VERSION = 1

_EVENT_KINDS = {
    "add": AddEvent,
    "delete": DeleteEvent,
    "lookup": LookupEvent,
    "failure": FailureEvent,
    "recovery": RecoveryEvent,
}


def _event_to_record(event: Event) -> dict:
    if isinstance(event, AddEvent):
        return {"kind": "add", "time": event.time, "entry": event.entry.entry_id}
    if isinstance(event, DeleteEvent):
        return {
            "kind": "delete",
            "time": event.time,
            "entry": event.entry.entry_id,
        }
    if isinstance(event, LookupEvent):
        return {"kind": "lookup", "time": event.time, "target": event.target}
    if isinstance(event, FailureEvent):
        return {"kind": "failure", "time": event.time, "server": event.server_id}
    if isinstance(event, RecoveryEvent):
        return {"kind": "recovery", "time": event.time, "server": event.server_id}
    raise InvalidParameterError(
        f"cannot serialize event type {type(event).__name__}"
    )


def _record_to_event(record: dict) -> Event:
    kind = record.get("kind")
    time = record.get("time")
    if kind == "add":
        return AddEvent(time, Entry(record["entry"]))
    if kind == "delete":
        return DeleteEvent(time, Entry(record["entry"]))
    if kind == "lookup":
        return LookupEvent(time, target=record["target"])
    if kind == "failure":
        return FailureEvent(time, server_id=record["server"])
    if kind == "recovery":
        return RecoveryEvent(time, server_id=record["server"])
    raise InvalidParameterError(f"unknown event kind {kind!r} in trace")


def save_trace(trace: WorkloadTrace, path: PathLike) -> pathlib.Path:
    """Write a trace as JSON lines; parent directories are created."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "initial_entries": [e.entry_id for e in trace.initial_entries],
                "events": len(trace.events),
            }
        )
    ]
    lines.extend(json.dumps(_event_to_record(event)) for event in trace.events)
    target.write_text("\n".join(lines) + "\n")
    return target


def load_trace(path: PathLike) -> WorkloadTrace:
    """Read a trace saved by :func:`save_trace`."""
    source = pathlib.Path(path)
    lines = source.read_text().splitlines()
    if not lines:
        raise InvalidParameterError(f"{source} is empty")
    header = json.loads(lines[0])
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise InvalidParameterError(
            f"{source} has format version {version!r}; "
            f"this reader supports {FORMAT_VERSION}"
        )
    initial = tuple(Entry(entry_id) for entry_id in header["initial_entries"])
    events = tuple(_record_to_event(json.loads(line)) for line in lines[1:])
    declared = header.get("events")
    if declared is not None and declared != len(events):
        raise InvalidParameterError(
            f"{source} declares {declared} events but contains {len(events)}"
        )
    return WorkloadTrace(initial_entries=initial, events=events)
