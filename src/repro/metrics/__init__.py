"""The paper's five evaluation metrics (Section 4).

Two overhead metrics — storage cost (§4.1) and client lookup cost
(§4.2) — and three answer-quality metrics — maximum coverage (§4.3),
worst-case fault tolerance (§4.4, via the Appendix A greedy heuristic),
and unfairness (§4.5, the coefficient of variation of per-entry
retrieval probability).
"""

from repro.metrics.storage import (
    measured_storage_cost,
    storage_by_server,
    storage_imbalance,
)
from repro.metrics.lookup_cost import (
    LookupCostEstimate,
    estimate_lookup_cost,
)
from repro.metrics.coverage import coverage_size, covered_entries, uncovered_entries
from repro.metrics.fault_tolerance import (
    exact_fault_tolerance,
    greedy_fault_tolerance,
    server_importance,
)
from repro.metrics.unfairness import (
    UnfairnessEstimate,
    estimate_unfairness,
    exact_unfairness_uniform_subset,
    instance_unfairness,
    retrieval_probabilities,
)
from repro.metrics.collector import MetricsCollector, MetricsSnapshot
from repro.metrics.latency import LatencyEstimate, estimate_lookup_latency
from repro.metrics.load import LoadProfile, measure_lookup_load
from repro.metrics.timeseries import (
    TimeSeries,
    TimeSeriesProbe,
    coverage_metric,
    min_store_metric,
    storage_metric,
)

__all__ = [
    "measured_storage_cost",
    "storage_by_server",
    "storage_imbalance",
    "exact_unfairness_uniform_subset",
    "LookupCostEstimate",
    "estimate_lookup_cost",
    "coverage_size",
    "covered_entries",
    "uncovered_entries",
    "greedy_fault_tolerance",
    "exact_fault_tolerance",
    "server_importance",
    "UnfairnessEstimate",
    "estimate_unfairness",
    "instance_unfairness",
    "retrieval_probabilities",
    "MetricsCollector",
    "MetricsSnapshot",
    "LatencyEstimate",
    "estimate_lookup_latency",
    "LoadProfile",
    "measure_lookup_load",
    "TimeSeries",
    "TimeSeriesProbe",
    "coverage_metric",
    "storage_metric",
    "min_store_metric",
]
