"""Unit tests for cluster placement snapshots."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.snapshots import (
    load_snapshot,
    restore_cluster,
    save_snapshot,
    snapshot_cluster,
)
from repro.core.entry import Entry, make_entries
from repro.core.exceptions import InvalidParameterError
from repro.strategies.round_robin import RoundRobinY


def _round_robin_cluster(seed=5):
    cluster = Cluster(10, seed=seed)
    strategy = RoundRobinY(cluster, y=2)
    strategy.place(make_entries(30))
    strategy.add(Entry("extra"))
    strategy.delete(Entry("v3"))
    return cluster, strategy


class TestSnapshot:
    def test_round_trip_in_memory(self):
        cluster, _ = _round_robin_cluster()
        snapshot = snapshot_cluster(cluster)
        fresh = Cluster(10, seed=99)
        restore_cluster(snapshot, fresh)
        assert fresh.placement("k") == cluster.placement("k")
        assert fresh.storage_cost("k") == cluster.storage_cost("k")

    def test_round_trip_via_file(self, tmp_path):
        cluster, _ = _round_robin_cluster()
        path = save_snapshot(cluster, tmp_path / "snap.json")
        fresh = Cluster(10, seed=1)
        load_snapshot(path, fresh)
        assert fresh.placement("k") == cluster.placement("k")

    def test_failure_flags_restored(self, tmp_path):
        cluster, _ = _round_robin_cluster()
        cluster.fail(4)
        path = save_snapshot(cluster, tmp_path / "snap.json")
        fresh = Cluster(10, seed=1)
        load_snapshot(path, fresh)
        assert not fresh.server(4).alive
        assert fresh.failed_count == 1

    def test_strategy_resumes_on_restored_cluster(self, tmp_path):
        """Counters/positions survive, so the protocol keeps working."""
        cluster, _ = _round_robin_cluster()
        path = save_snapshot(cluster, tmp_path / "snap.json")

        fresh = Cluster(10, seed=2)
        load_snapshot(path, fresh)
        resumed = RoundRobinY(fresh, y=2)  # reattach the strategy logic
        # The restored head/tail let adds and migration deletes work.
        resumed.add(Entry("post-restore"))
        resumed.delete(Entry("v10"))
        counts = fresh.replica_counts("k")
        assert all(count == 2 for count in counts.values())
        assert Entry("post-restore") in resumed.lookup_all()
        assert Entry("v10") not in resumed.lookup_all()

    def test_size_mismatch_rejected(self):
        cluster, _ = _round_robin_cluster()
        snapshot = snapshot_cluster(cluster)
        with pytest.raises(InvalidParameterError, match="servers"):
            restore_cluster(snapshot, Cluster(5, seed=1))

    def test_version_checked(self):
        with pytest.raises(InvalidParameterError, match="format version"):
            restore_cluster({"format_version": 9, "size": 10}, Cluster(10))

    def test_restore_wipes_previous_content(self):
        cluster, _ = _round_robin_cluster()
        snapshot = snapshot_cluster(cluster)
        target = Cluster(10, seed=3)
        target.server(0).store("other").add(Entry("junk"))
        restore_cluster(snapshot, target)
        assert target.storage_cost("other") == 0
