"""Unit tests for the capacity planner."""

import math

import pytest

from repro.analysis.planner import (
    SIMULATION_ONLY,
    DeploymentSpec,
    cheapest_for_updates,
    plan,
    plan_rows,
)
from repro.core.exceptions import InvalidParameterError


def _spec(**overrides):
    base = dict(
        entry_count=100, server_count=10, storage_budget=200,
        target_answer_size=15,
    )
    base.update(overrides)
    return DeploymentSpec(**base)


class TestSpecValidation:
    def test_bad_counts(self):
        with pytest.raises(InvalidParameterError):
            DeploymentSpec(0, 10, 200, 5)
        with pytest.raises(InvalidParameterError):
            DeploymentSpec(100, 10, 200, 0)
        with pytest.raises(InvalidParameterError):
            DeploymentSpec(100, 10, 200, 5, updates_per_lookup=-1)


class TestPlan:
    def test_all_schemes_planned(self):
        schemes = {p.scheme for p in plan(_spec())}
        assert schemes == {
            "full_replication", "fixed", "random_server",
            "round_robin", "hash",
        }

    def test_budget_parameterization(self):
        by_name = {p.scheme: p for p in plan(_spec())}
        assert by_name["fixed"].parameters == {"x": 20}
        assert by_name["round_robin"].parameters == {"y": 2}

    def test_table1_storage_numbers(self):
        by_name = {p.scheme: p for p in plan(_spec())}
        assert by_name["full_replication"].expected_storage == 1000
        assert by_name["fixed"].expected_storage == 200
        assert by_name["round_robin"].expected_storage == 200
        assert by_name["hash"].expected_storage == pytest.approx(190.0)

    def test_round_robin_predictions(self):
        by_name = {p.scheme: p for p in plan(_spec(target_answer_size=25))}
        rr = by_name["round_robin"]
        assert rr.expected_lookup_cost == 2.0
        assert rr.worst_case_fault_tolerance == 8

    def test_fixed_unusable_beyond_x(self):
        by_name = {p.scheme: p for p in plan(_spec(target_answer_size=30))}
        fixed = by_name["fixed"]
        assert fixed.expected_lookup_cost == math.inf
        assert fixed.worst_case_fault_tolerance == 0
        assert "unusable" in fixed.notes

    def test_simulation_only_cells_marked(self):
        by_name = {p.scheme: p for p in plan(_spec())}
        assert by_name["random_server"].expected_lookup_cost == SIMULATION_ONLY
        assert by_name["hash"].worst_case_fault_tolerance == SIMULATION_ONLY
        assert by_name["round_robin"].expected_update_messages == SIMULATION_ONLY

    def test_update_costs(self):
        by_name = {p.scheme: p for p in plan(_spec())}
        assert by_name["fixed"].expected_update_messages == pytest.approx(3.0)
        assert by_name["hash"].expected_update_messages == pytest.approx(3.0)
        assert by_name["full_replication"].expected_update_messages == 11.0


class TestCheapestForUpdates:
    def test_small_ratio_prefers_fixed(self):
        # §6.4 rule of thumb: t/h < 1/n.
        spec = _spec(entry_count=600, storage_budget=500, target_answer_size=10)
        assert cheapest_for_updates(spec) == "fixed"

    def test_large_ratio_prefers_hash(self):
        spec = _spec(entry_count=100, storage_budget=200, target_answer_size=40)
        assert cheapest_for_updates(spec) == "hash"


class TestPlanRows:
    def test_rows_render(self):
        rows = plan_rows(_spec())
        assert len(rows) == 5
        assert all(
            set(row) >= {"scheme", "params", "storage", "lookup_cost"}
            for row in rows
        )
