"""Benchmark: the hot-spot comparison (Figure 1 / conclusion claim).

Traditional hashing (key partitioning) funnels a popular key's entire
lookup load to its single owner server and loses the key when that
server fails; every partial lookup scheme spreads the same burst to
~1/n per server and keeps answering through the failure.
"""

from _bench_utils import render_and_print

from repro.experiments.hotspot import HotspotConfig, run


def test_bench_hotspot(benchmark):
    config = HotspotConfig(runs=5, lookups=2000)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    partitioning = result.row_for(architecture="key_partitioning")
    assert partitioning["peak_share"] == 1.0
    assert partitioning["survives_owner_failure"] == 0.0

    for name in ("full_replication", "fixed", "random_server",
                 "round_robin", "hash"):
        row = result.row_for(architecture=name)
        # Spread within 2.5x of the ideal 1/n share; never a hot spot.
        assert row["peak_share"] < 2.5 * row["ideal_share"]
        assert row["survives_owner_failure"] == 1.0
