"""Tests for the chaos soak experiment and harness."""

import dataclasses

import pytest

from repro.experiments.chaos_soak import (
    SCHEME_PARAMS,
    ChaosSoakConfig,
    run,
    soak_one,
)

#: Small but real: enough events for drops, duplicates, and at least
#: one crash point to fire, small enough for the test suite.
FAST = ChaosSoakConfig(events=300, lookups=60, audit_lookups=10, seed=0)


class TestSoakOne:
    @pytest.mark.parametrize("label", sorted(SCHEME_PARAMS))
    def test_every_scheme_survives_the_soak(self, label):
        report = soak_one(label, FAST)
        assert report.passed, report.invariant_failures
        assert report.violations_after == 0
        assert report.lookups == FAST.lookups
        assert report.audit_failures == 0
        # The fault layer actually did something.
        assert report.faults["dropped"] > 0
        assert report.faults["duplicated"] > 0
        # And its books balance.
        assert report.faults["attempted"] == (
            report.faults["delivered"]
            + report.faults["dropped"]
            + report.faults["blacked_out"]
            + report.faults["suppressed"]
        )

    def test_soak_is_deterministic(self):
        first = soak_one("hash", FAST)
        second = soak_one("hash", FAST)
        assert first == second

    def test_seed_changes_the_run(self):
        base = soak_one("hash", FAST)
        other = soak_one("hash", dataclasses.replace(FAST, seed=99))
        assert base.faults != other.faults

    def test_crash_points_fire_mid_protocol(self):
        report = soak_one("full_replication", FAST)
        assert report.crashes  # at least one server crashed mid-run
        for server_id, step, nth in report.crashes:
            assert isinstance(step, str) and nth >= 1


class TestRunAllSchemes:
    def test_five_rows_all_pass(self):
        result = run(FAST)
        assert len(result.rows) == 5
        assert {row["strategy"] for row in result.rows} == set(SCHEME_PARAMS)
        assert all(row["verdict"] == "PASS" for row in result.rows)
        assert result.meta["passed"] is True

    def test_rows_are_reproducible(self):
        assert run(FAST).rows == run(FAST).rows
