"""Yellow pages: a mostly-static directory with mixed key types.

The paper's second motivating application (§1): categories like
"news" map to lists of URLs.  Categories differ — a handful are
updated constantly (breaking-news feeds), most are static — and §2
points out that *different keys can use different strategies*.  This
example builds one directory that does exactly that, using the
Figure 3 / rules-of-thumb recommender to pick each key's scheme, then
verifies the choices with measurements.

Run:  python examples/yellow_pages.py
"""

from repro import Cluster, PartialLookupDirectory
from repro.core.entry import make_entries
from repro.experiments.report import render_table
from repro.metrics.collector import MetricsCollector
from repro.strategies.selector import WorkloadProfile, recommend

#: (category, number of URLs, updates per lookup, wants everything?)
CATEGORIES = [
    ("news",        200, 2.0,  False),  # heavy churn, clients want ~5
    ("restaurants", 400, 0.05, False),  # mild churn
    ("museums",      60, 0.0,  True),   # static; some clients browse all
    ("pharmacies",   80, 0.0,  False),  # static, small answers
]


def pick_scheme(name, urls, update_rate, wants_all):
    profile = WorkloadProfile(
        entry_count=urls,
        server_count=10,
        target_answer_size=5 if not wants_all else 20,
        update_rate=update_rate,
        needs_complete_coverage=wants_all or update_rate < 0.1,
        needs_fairness=not wants_all,
        storage_is_fixed=update_rate > 1.0,
    )
    best = recommend(profile)[0]
    return best


def scheme_params(scheme_name, urls):
    """Size the scheme's parameter for ~2 copies' worth of storage."""
    if scheme_name in ("fixed", "random_server"):
        return {"x": 15}
    if scheme_name in ("round_robin", "hash"):
        return {"y": 2}
    return {}


def main() -> None:
    cluster = Cluster(10, seed=77)
    directory = PartialLookupDirectory(cluster, default_strategy="round_robin",
                                       default_params={"y": 2})
    collector = MetricsCollector(lookup_samples=300, unfairness_samples=1000)

    rows = []
    for name, urls, update_rate, wants_all in CATEGORIES:
        choice = pick_scheme(name, urls, update_rate, wants_all)
        params = scheme_params(choice.name, urls)
        directory.configure_key(name, choice.name, **params)
        entries = make_entries(urls, prefix=f"{name}.example/")
        directory.place(name, entries)

        snapshot = collector.collect(
            directory.strategy(name), target=5, universe=entries
        )
        rows.append(
            {
                "category": name,
                "urls": urls,
                "chosen_scheme": choice.name,
                "why (top rule)": choice.reasons[0] if choice.reasons else "",
                "storage": snapshot.storage_cost,
                "lookup_cost": snapshot.mean_lookup_cost,
                "coverage": snapshot.coverage,
            }
        )

    print(render_table(
        ["category", "urls", "chosen_scheme", "storage", "lookup_cost",
         "coverage", "why (top rule)"],
        rows,
        title="Yellow pages: per-category scheme selection",
    ))

    # The directory serves all categories side by side on one cluster.
    print("\nSample lookups:")
    for name, _, _, _ in CATEGORIES:
        result = directory.partial_lookup(name, 3)
        first = result.entries[0].entry_id if result.entries else "-"
        print(f"   {name:12s} -> {len(result)} URLs "
              f"(e.g. {first}), {result.lookup_cost} server(s)")


if __name__ == "__main__":
    main()
