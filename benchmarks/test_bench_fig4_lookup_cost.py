"""Benchmark: regenerate Figure 4 (lookup cost vs target answer size).

Paper shape: Round-2 steps by one server per 20 of target;
RandomServer-20 sits on or above it; Hash-2 exceeds 1 even for small
targets (1.124 at t=15 in the paper) but dips below the others just
past each step.
"""

from _bench_utils import render_and_print

from repro.experiments.fig4_lookup_cost import Fig4Config, run


def test_bench_fig4_lookup_cost(benchmark):
    config = Fig4Config(runs=20, lookups_per_run=500)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    # Round-2's step curve.
    assert result.row_for(target=20)["round_robin_2"] == 1.0
    assert result.row_for(target=25)["round_robin_2"] == 2.0
    assert result.row_for(target=40)["round_robin_2"] == 2.0
    assert result.row_for(target=45)["round_robin_2"] == 3.0

    # Hash-2 at t=15: the paper reports 1.124.
    hash_at_15 = result.row_for(target=15)["hash_2"]
    assert 1.05 < hash_at_15 < 1.25

    # RandomServer >= Round everywhere; Hash wins just past the step.
    for row in result.rows:
        assert row["random_server_20"] >= row["round_robin_2"] - 1e-9
    assert result.row_for(target=25)["hash_2"] < 2.0
