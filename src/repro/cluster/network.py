"""Message transport with the paper's processed-message cost model.

Section 6.4 defines update overhead as "the total number of messages
received and processed by all the servers": a broadcast costs ``n``
(every server processes it) and a point-to-point message costs 1.  The
:class:`Network` enforces exactly that accounting, keeping separate
counters for update and lookup traffic and per message type, so every
overhead number in the reproduction comes from one place.

Delivery to a failed server is suppressed and *not* counted as
processed (the server never received it); the send is recorded in the
``undelivered`` counter so clients can observe the failure and retry,
as the paper's lookup protocol requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.messages import Message, MessageCategory
from repro.cluster.server import Server


class _Undelivered:
    """Sentinel reply for sends to failed servers."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNDELIVERED"

    def __bool__(self) -> bool:
        return False


UNDELIVERED = _Undelivered()


@dataclass
class MessageStats:
    """Counters for processed messages, by category, type, and server."""

    total: int = 0
    by_category: Dict[MessageCategory, int] = field(default_factory=dict)
    by_type: Dict[str, int] = field(default_factory=dict)
    per_server: Dict[int, int] = field(default_factory=dict)
    undelivered: int = 0
    broadcasts: int = 0
    #: Total entries shipped inside processed messages — the
    #: second-order cost separating schemes with equal message counts
    #: (a one-entry store broadcast vs an h-entry re-place broadcast).
    payload_entries: int = 0

    def record(self, server_id: int, message: Message) -> None:
        self.total += 1
        category = message.category
        self.by_category[category] = self.by_category.get(category, 0) + 1
        type_name = type(message).__name__
        self.by_type[type_name] = self.by_type.get(type_name, 0) + 1
        self.per_server[server_id] = self.per_server.get(server_id, 0) + 1
        self.payload_entries += message.payload_entries

    @property
    def update_messages(self) -> int:
        """Messages counted by the Figure 14 update-overhead metric."""
        return self.by_category.get(MessageCategory.UPDATE, 0)

    @property
    def lookup_messages(self) -> int:
        """Messages counted by the Figure 4 lookup-cost metric."""
        return self.by_category.get(MessageCategory.LOOKUP, 0)

    def reset(self) -> None:
        self.total = 0
        self.by_category.clear()
        self.by_type.clear()
        self.per_server.clear()
        self.undelivered = 0
        self.broadcasts = 0
        self.payload_entries = 0

    def snapshot(self) -> "MessageStats":
        """An independent copy, for before/after differencing."""
        return MessageStats(
            total=self.total,
            by_category=dict(self.by_category),
            by_type=dict(self.by_type),
            per_server=dict(self.per_server),
            undelivered=self.undelivered,
            broadcasts=self.broadcasts,
            payload_entries=self.payload_entries,
        )


class Network:
    """Synchronous message transport between clients and servers.

    All messaging in the paper is logically synchronous request/reply
    (a server broadcasts and the protocol proceeds), so ``send`` and
    ``broadcast`` deliver immediately and return the handlers' replies.
    Asynchronous timing effects are modelled at the workload level by
    the discrete-event engine, not inside the transport.
    """

    def __init__(self, servers: Sequence[Server]) -> None:
        self._servers = list(servers)
        self.stats = MessageStats()
        self._message_log: Optional[List[Tuple[int, str]]] = None

    def enable_message_log(self) -> List[Tuple[int, str]]:
        """Record (destination id, message type) for every delivery.

        A protocol-debugging aid: tests assert the exact choreography
        of multi-step protocols (e.g. the Round-Robin delete's
        broadcast → migrate → remove_replacement sequence) against
        this log.  Returns the live list; call again to reset.
        """
        self._message_log = []
        return self._message_log

    @property
    def servers(self) -> List[Server]:
        return self._servers

    @property
    def size(self) -> int:
        return len(self._servers)

    def server(self, server_id: int) -> Server:
        return self._servers[server_id % len(self._servers)]

    def send(self, dest_id: int, key: str, message: Message) -> Any:
        """Deliver ``message`` about ``key`` to one server.

        Returns the handler's reply, or :data:`UNDELIVERED` if the
        destination is failed.  A processed message costs 1.
        """
        server = self.server(dest_id)
        if not server.alive:
            self.stats.undelivered += 1
            return UNDELIVERED
        self.stats.record(server.server_id, message)
        if self._message_log is not None:
            self._message_log.append((server.server_id, type(message).__name__))
        return server.receive(key, message, self)

    def broadcast(self, key: str, message: Message) -> Dict[int, Any]:
        """Deliver ``message`` to every operational server.

        Costs one processed message per operational server — ``n``
        when nothing is failed, matching the Section 6.4 model.
        Returns a map from server id to handler reply.
        """
        self.stats.broadcasts += 1
        replies: Dict[int, Any] = {}
        for server in self._servers:
            if not server.alive:
                self.stats.undelivered += 1
                continue
            self.stats.record(server.server_id, message)
            if self._message_log is not None:
                self._message_log.append(
                    (server.server_id, type(message).__name__)
                )
            replies[server.server_id] = server.receive(key, message, self)
        return replies

    def reset_stats(self) -> None:
        self.stats.reset()
