"""Hot-spot experiment: popular-key load under each lookup architecture.

Not a numbered figure — this measures the claim the paper's
introduction and conclusion make qualitatively: with traditional
hashing (key partitioning, Figure 1 center) a popular key overloads
its single owner server, while every partial lookup scheme spreads the
same traffic across all ``n`` servers; and when the hot key's owner
fails, partitioning loses the key entirely while partial lookups
continue.

Output: one row per architecture with the busiest server's share of
the lookup traffic (1.0 = perfect hot spot, 1/n = perfectly spread)
and whether the key survives its busiest server failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional

from repro.baselines.key_partitioning import KeyPartitioning
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs_multi
from repro.metrics.load import measure_lookup_load
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class HotspotConfig:
    entry_count: int = 100
    server_count: int = 10
    #: The popular key's lookup burst per run.
    lookups: int = 2000
    target: int = 5
    storage_budget: int = 200
    runs: int = 5
    seed: int = 1


def _architectures(config: HotspotConfig, cluster: Cluster):
    x = max(1, config.storage_budget // config.server_count)
    y = max(1, config.storage_budget // config.entry_count)
    return {
        "key_partitioning": KeyPartitioning(cluster, key="kp"),
        "full_replication": FullReplication(cluster, key="fr"),
        "fixed": FixedX(cluster, x=x, key="f"),
        "random_server": RandomServerX(cluster, x=x, key="rs"),
        "round_robin": RoundRobinY(cluster, y=y, key="rr"),
        "hash": HashY(cluster, y=y, key="h"),
    }


def measure_point(config: HotspotConfig, seed: int) -> Dict[str, float]:
    """One run: burst the popular key, record peak share + survival."""
    cluster = Cluster(config.server_count, seed=seed)
    entries = make_entries(config.entry_count)
    samples: Dict[str, float] = {}
    for label, strategy in _architectures(config, cluster).items():
        strategy.place(entries)
        profile = measure_lookup_load(strategy, config.target, config.lookups)
        samples[f"{label}_peak_share"] = profile.peak_share
        # Survival: fail the busiest server, can the key still answer?
        busiest = max(
            profile.requests_per_server, key=profile.requests_per_server.get
        )
        cluster.fail(busiest)
        survived = strategy.partial_lookup(config.target).success
        cluster.recover(busiest)
        samples[f"{label}_survives"] = 1.0 if survived else 0.0
    return samples


def run(
    config: HotspotConfig = HotspotConfig(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the hot-spot comparison table."""
    labels = [
        "key_partitioning",
        "full_replication",
        "fixed",
        "random_server",
        "round_robin",
        "hash",
    ]
    with make_executor(jobs) as executor:
        averaged = average_runs_multi(
            partial(measure_point, config),
            master_seed=config.seed,
            runs=config.runs,
            executor=executor,
        )
    result = ExperimentResult(
        name="Hot spot: popular-key load by architecture",
        headers=["architecture", "peak_share", "ideal_share",
                 "survives_owner_failure"],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "lookups": config.lookups,
            "t": config.target,
            "runs": config.runs,
        },
    )
    for label in labels:
        result.rows.append(
            {
                "architecture": label,
                "peak_share": round(averaged[f"{label}_peak_share"].mean, 3),
                "ideal_share": round(1 / config.server_count, 3),
                "survives_owner_failure": round(
                    averaged[f"{label}_survives"].mean, 2
                ),
            }
        )
    return result
