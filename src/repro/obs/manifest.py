"""Run manifests: every result row traceable to its config and seed.

A :class:`RunManifest` is a small, deterministic description of one
run — experiment id, seed, full config, library version — that the
CLI attaches to :class:`~repro.experiments.runner.ExperimentResult.meta`
(under the ``"manifest"`` key) and that the JSONL trace exporter
embeds in the trace header.  Deliberately contains no wall-clock
timestamps or host details: two runs of the same config must produce
byte-identical manifests, because the manifest is part of the
reproducibility contract, not provenance garnish.

The one exception is the optional ``execution`` record the CLI adds
via :meth:`RunManifest.with_execution` — jobs, worker count, and
wall-clock for the run.  Execution mode does not affect results (the
parallel engine merges samples in run-index order), so this lives in
a clearly separated, explicitly non-deterministic key and is omitted
entirely when absent, keeping the determinism contract for everything
else.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

MANIFEST_FORMAT_VERSION = 1


def _coerce_config(config: Any) -> Dict[str, Any]:
    """Accept a config dataclass or a plain mapping."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, Mapping):
        return dict(config)
    return {"value": repr(config)}


@dataclass(frozen=True)
class RunManifest:
    """Deterministic identity of one experiment run."""

    experiment: str
    run_id: str
    seed: Optional[int]
    config: Dict[str, Any] = field(default_factory=dict)
    repro_version: str = ""
    format_version: int = MANIFEST_FORMAT_VERSION
    #: How the run was executed (jobs/workers/wall-clock); None for
    #: library-level runs.  Not part of the determinism contract.
    execution: Optional[Dict[str, Any]] = None

    @classmethod
    def for_config(cls, experiment: str, config: Any) -> "RunManifest":
        """Build a manifest from an experiment id and its config.

        The ``run_id`` is derived purely from the experiment id and
        the config's ``seed`` field (when present), so the same config
        always yields the same id — which is what lets a trace file,
        a JSON result, and a report row be matched up after the fact.
        """
        from repro import __version__

        fields = _coerce_config(config)
        seed = fields.get("seed")
        seed_part = f"-seed{seed}" if seed is not None else ""
        return cls(
            experiment=experiment,
            run_id=f"{experiment}{seed_part}",
            seed=seed if isinstance(seed, int) else None,
            config=fields,
            repro_version=__version__,
        )

    def with_execution(
        self, jobs: int, workers: int, mode: str, wall_clock_seconds: float
    ) -> "RunManifest":
        """A copy carrying an execution record.

        ``wall_clock_seconds`` varies run to run by construction;
        consumers comparing manifests for reproducibility must ignore
        the ``execution`` key (results themselves do not depend on it).
        """
        return dataclasses.replace(
            self,
            execution={
                "jobs": jobs,
                "workers": workers,
                "mode": mode,
                "wall_clock_seconds": round(wall_clock_seconds, 6),
            },
        )

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "experiment": self.experiment,
            "run_id": self.run_id,
            "seed": self.seed,
            "config": dict(self.config),
            "repro_version": self.repro_version,
            "format_version": self.format_version,
        }
        if self.execution is not None:
            payload["execution"] = dict(self.execution)
        return payload
