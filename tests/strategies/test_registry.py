"""Unit tests for the strategy registry."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.exceptions import InvalidParameterError, UnknownStrategyError
from repro.strategies.registry import (
    STRATEGY_REGISTRY,
    available_strategies,
    create_strategy,
)


class TestRegistry:
    def test_all_schemes_registered(self):
        assert available_strategies() == [
            "fixed",
            "full_replication",
            "hash",
            "key_partitioning",
            "random_server",
            "round_robin",
        ]

    def test_names_match_classes(self):
        for name, cls in STRATEGY_REGISTRY.items():
            assert cls.name == name

    def test_create_passes_params(self):
        strategy = create_strategy("fixed", Cluster(4, seed=1), x=7)
        assert strategy.x == 7

    def test_create_with_key(self):
        strategy = create_strategy("round_robin", Cluster(4, seed=1), key="song", y=2)
        assert strategy.key == "song"

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(UnknownStrategyError, match="available"):
            create_strategy("bogus", Cluster(4, seed=1))

    def test_bad_params_rejected(self):
        with pytest.raises(InvalidParameterError, match="full_replication"):
            create_strategy("full_replication", Cluster(4, seed=1), x=5)
