"""Unit tests for multi-key workloads and Zipf key popularity."""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.core.exceptions import InvalidParameterError
from repro.core.service import PartialLookupDirectory
from repro.workload.keys import (
    DirectoryOp,
    DirectoryWorkload,
    MultiKeyWorkloadGenerator,
    ZipfKeyPopularity,
    apply_workload,
)


class TestZipfKeyPopularity:
    def test_probabilities_sum_to_one(self):
        popularity = ZipfKeyPopularity(
            [f"k{i}" for i in range(20)], skew=1.0, rng=random.Random(1)
        )
        total = sum(popularity.probability(k) for k in popularity.keys)
        assert total == pytest.approx(1.0)

    def test_rank_order_respected(self):
        popularity = ZipfKeyPopularity(
            ["hot", "warm", "cold"], skew=1.0, rng=random.Random(2)
        )
        assert (
            popularity.probability("hot")
            > popularity.probability("warm")
            > popularity.probability("cold")
        )

    def test_zero_skew_is_uniform(self):
        popularity = ZipfKeyPopularity(
            ["a", "b", "c", "d"], skew=0.0, rng=random.Random(3)
        )
        for key in popularity.keys:
            assert popularity.probability(key) == pytest.approx(0.25)

    def test_draw_frequencies_match_probabilities(self):
        popularity = ZipfKeyPopularity(
            [f"k{i}" for i in range(5)], skew=1.0, rng=random.Random(4)
        )
        draws = popularity.draw_many(20000)
        for key in popularity.keys:
            expected = popularity.probability(key)
            observed = draws.count(key) / len(draws)
            assert abs(observed - expected) < 0.02

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ZipfKeyPopularity([], skew=1.0)
        with pytest.raises(InvalidParameterError):
            ZipfKeyPopularity(["a"], skew=-1.0)


class TestMultiKeyWorkloadGenerator:
    def test_operation_count(self):
        generator = MultiKeyWorkloadGenerator(5, rng=random.Random(5))
        workload = generator.generate(200)
        # Updates come in delete+add pairs, so ops >= requested.
        assert len(workload.operations) >= 200

    def test_times_nondecreasing(self):
        generator = MultiKeyWorkloadGenerator(5, rng=random.Random(6))
        workload = generator.generate(300)
        times = [op.time for op in workload.operations]
        assert times == sorted(times)

    def test_popular_key_dominates(self):
        generator = MultiKeyWorkloadGenerator(
            10, popularity_skew=1.2, rng=random.Random(7)
        )
        workload = generator.generate(2000)
        counts = workload.per_key_counts()
        assert counts.get("key0", 0) > counts.get("key9", 0) * 2

    def test_update_fraction_zero_means_all_lookups(self):
        generator = MultiKeyWorkloadGenerator(
            3, update_fraction=0.0, rng=random.Random(8)
        )
        workload = generator.generate(100)
        assert not workload.updates()
        assert len(workload.lookups()) == 100

    def test_deletes_target_live_entries(self):
        generator = MultiKeyWorkloadGenerator(
            3, update_fraction=0.5, rng=random.Random(9)
        )
        workload = generator.generate(400)
        live = {
            key: set(entries)
            for key, entries in workload.initial_entries.items()
        }
        for op in workload.operations:
            if op.kind == "delete":
                assert op.entry_id in live[op.key]
                live[op.key].discard(op.entry_id)
            elif op.kind == "add":
                live[op.key].add(op.entry_id)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MultiKeyWorkloadGenerator(0)
        with pytest.raises(InvalidParameterError):
            MultiKeyWorkloadGenerator(2, update_fraction=1.5)


class TestApplyWorkload:
    def test_directory_serves_generated_workload(self):
        generator = MultiKeyWorkloadGenerator(
            4, entries_per_key=30, update_fraction=0.2, rng=random.Random(10)
        )
        workload = generator.generate(500)
        directory = PartialLookupDirectory(
            Cluster(10, seed=10),
            default_strategy="round_robin",
            default_params={"y": 2},
        )
        failures = apply_workload(directory, workload)
        assert failures == {}  # round-robin never under-serves t=3
        for key in workload.initial_entries:
            assert directory.coverage(key) == 30  # churn preserved size

    def test_failure_counting(self):
        # Fixed-2 cannot serve t=3 -> every lookup fails.
        workload = DirectoryWorkload(
            initial_entries={"k": ("a", "b", "c", "d")},
            operations=(DirectoryOp(1.0, "k", "lookup", target=3),),
        )
        directory = PartialLookupDirectory(
            Cluster(4, seed=11), default_strategy="fixed", default_params={"x": 2}
        )
        failures = apply_workload(directory, workload)
        assert failures == {"k": 1}
