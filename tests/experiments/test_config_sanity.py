"""Sanity checks over every registered experiment's default config.

Registry-driven: any future experiment automatically gets these
checks.  They catch config drift (targets exceeding populations,
non-positive statistical budgets) that would otherwise surface as
confusing downstream failures.
"""

import dataclasses

import pytest

from repro.experiments.registry import EXPERIMENTS, list_experiments


@pytest.mark.parametrize(
    "spec",
    list_experiments(),
    ids=[s.experiment_id for s in list_experiments()],
)
class TestConfigDefaults:
    def test_config_is_a_frozen_dataclass(self, spec):
        assert dataclasses.is_dataclass(spec.config_class)
        config = spec.config_class()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 1  # type: ignore[misc]

    def test_statistical_budgets_positive(self, spec):
        config = spec.config_class()
        for field in dataclasses.fields(spec.config_class):
            value = getattr(config, field.name)
            if field.name in ("runs", "lookups", "lookups_per_run",
                              "lookups_per_instance", "updates_per_run"):
                assert value >= 1, f"{spec.experiment_id}.{field.name}"

    def test_targets_within_entry_population(self, spec):
        config = spec.config_class()
        entry_count = getattr(config, "entry_count", None)
        target = getattr(config, "target", None)
        if entry_count is not None and isinstance(target, int):
            assert 1 <= target <= entry_count

    def test_has_a_seed(self, spec):
        # Every experiment must be replayable from one master seed.
        assert hasattr(spec.config_class(), "seed")

    def test_description_and_artifact_set(self, spec):
        assert spec.description
        assert spec.paper_artifact


class TestRegistryShape:
    def test_ids_unique(self):
        ids = [s.experiment_id for s in list_experiments()]
        assert len(ids) == len(set(ids))

    def test_paper_artifacts_cover_all_numbered_items(self):
        artifacts = {s.paper_artifact for s in list_experiments()}
        for required in ("Table 1", "Table 2", "Figure 4", "Figure 6",
                         "Figure 7", "Figure 9", "Figure 12", "Figure 13",
                         "Figure 14"):
            assert any(required in a for a in artifacts), required
