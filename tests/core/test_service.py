"""Unit tests for the multi-key PartialLookupDirectory."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.core.exceptions import UnknownKeyError, UnknownStrategyError
from repro.core.service import PartialLookupDirectory


@pytest.fixture
def directory():
    return PartialLookupDirectory(
        Cluster(10, seed=42),
        default_strategy="round_robin",
        default_params={"y": 2},
    )


class TestPlacementAndLookup:
    def test_place_then_partial_lookup(self, directory):
        directory.place("song", make_entries(30))
        result = directory.partial_lookup("song", 3)
        assert result.success
        assert len(result) == 3

    def test_place_accepts_strings(self, directory):
        directory.place("song", ["host1", "host2"])
        assert directory.lookup("song") == {Entry("host1"), Entry("host2")}

    def test_unknown_key_returns_empty(self, directory):
        result = directory.partial_lookup("missing", 3)
        assert not result.success
        assert len(result) == 0

    def test_unknown_key_full_lookup_empty_set(self, directory):
        assert directory.lookup("missing") == set()

    def test_full_lookup_returns_everything(self, directory):
        entries = make_entries(25)
        directory.place("k", entries)
        assert directory.lookup("k") == set(entries)

    def test_replace_placement(self, directory):
        directory.place("k", make_entries(10))
        directory.place("k", make_entries(5, prefix="w"))
        assert directory.lookup("k") == set(make_entries(5, prefix="w"))


class TestIncrementalUpdates:
    def test_add_creates_key(self, directory):
        directory.add("new", Entry("a"))
        assert Entry("a") in directory.lookup("new")

    def test_add_then_delete(self, directory):
        directory.place("k", make_entries(10))
        directory.add("k", Entry("extra"))
        assert Entry("extra") in directory.lookup("k")
        directory.delete("k", Entry("extra"))
        assert Entry("extra") not in directory.lookup("k")

    def test_delete_on_unknown_key_raises(self, directory):
        with pytest.raises(UnknownKeyError):
            directory.delete("missing", Entry("a"))


class TestPerKeyStrategies:
    def test_keys_are_independent(self, directory):
        directory.place("a", make_entries(10))
        directory.place("b", make_entries(10, prefix="w"))
        assert directory.lookup("a") == set(make_entries(10))
        assert directory.lookup("b") == set(make_entries(10, prefix="w"))

    def test_configure_key_overrides_default(self, directory):
        directory.configure_key("hot", "fixed", x=5)
        directory.place("hot", make_entries(20))
        assert directory.strategy_name("hot") == "fixed"
        assert directory.coverage("hot") == 5

    def test_default_strategy_used_otherwise(self, directory):
        directory.place("cold", make_entries(20))
        assert directory.strategy_name("cold") == "round_robin"

    def test_reconfigure_live_key_rejected(self, directory):
        directory.place("k", make_entries(5))
        with pytest.raises(UnknownKeyError):
            directory.configure_key("k", "fixed", x=3)

    def test_unknown_strategy_name(self, directory):
        with pytest.raises(UnknownStrategyError):
            directory.configure_key("k", "nonsense")

    def test_keys_listing(self, directory):
        directory.place("a", make_entries(3))
        directory.place("b", make_entries(3))
        assert directory.keys() == ["a", "b"]


class TestStorageAccounting:
    def test_per_key_storage(self, directory):
        directory.place("k", make_entries(30))
        # round_robin y=2: 30 entries * 2 copies
        assert directory.storage_cost("k") == 60

    def test_total_storage_sums_keys(self, directory):
        directory.place("a", make_entries(10))
        directory.place("b", make_entries(20))
        assert directory.storage_cost() == 60

    def test_coverage(self, directory):
        directory.place("k", make_entries(30))
        assert directory.coverage("k") == 30
