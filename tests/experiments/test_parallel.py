"""The parallel run engine: ordering, determinism, profiles, CLI knobs."""

import json
import random

import pytest

from repro.core.exceptions import InvalidParameterError, ReproError
from repro.experiments import (
    chaos_soak,
    fig4_lookup_cost,
    fig9_unfairness,
    table2_summary,
)
from repro.experiments.cli import main
from repro.experiments.parallel import (
    JOBS_ENV_VAR,
    ProcessRunExecutor,
    RunExecutor,
    SerialRunExecutor,
    make_executor,
    resolve_jobs,
)
from repro.experiments.profiles import PROFILES, profile_overrides
from repro.experiments.runner import average_runs, seeded_runs
from repro.obs.metrics import MetricsRegistry


def _square(value):
    """Module-level so it pickles into worker processes."""
    return value * value


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(2) == 2

    def test_bad_env_is_a_clean_error(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "lots")
        with pytest.raises(InvalidParameterError, match=JOBS_ENV_VAR):
            resolve_jobs(None)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "4"])
    def test_invalid_values(self, bad):
        with pytest.raises(InvalidParameterError):
            resolve_jobs(bad)

    def test_make_executor_picks_backend(self):
        assert isinstance(make_executor(1), SerialRunExecutor)
        with make_executor(2) as executor:
            assert isinstance(executor, ProcessRunExecutor)
            assert executor.jobs == 2 and executor.mode == "process"


class ShufflingExecutor(RunExecutor):
    """Returns pairs in shuffled order — simulates racing workers."""

    mode = "shuffled"

    def map_indexed(self, fn, items):
        pairs = [(index, fn(item)) for index, item in enumerate(items)]
        random.Random(1234).shuffle(pairs)
        return pairs


class DroppingExecutor(RunExecutor):
    """Loses the last run's result — must be caught, not averaged over."""

    def map_indexed(self, fn, items):
        return [(index, fn(item)) for index, item in enumerate(items)][:-1]


class TestRunExecutorContract:
    def test_serial_matches_list_comprehension(self):
        executor = SerialRunExecutor()
        assert executor.ordered_samples(_square, range(7)) == [
            _square(i) for i in range(7)
        ]

    def test_shuffled_completion_order_is_restored(self):
        seeds = list(seeded_runs(42, 16))
        assert ShufflingExecutor().ordered_samples(_square, seeds) == [
            _square(seed) for seed in seeds
        ]

    def test_average_runs_immune_to_completion_order(self):
        serial = average_runs(_square, master_seed=7, runs=12)
        shuffled = average_runs(
            _square, master_seed=7, runs=12, executor=ShufflingExecutor()
        )
        assert shuffled == serial

    def test_missing_run_index_is_an_error(self):
        with pytest.raises(ReproError, match="exactly once"):
            DroppingExecutor().ordered_samples(_square, range(5))

    def test_process_pool_matches_serial(self):
        with make_executor(4) as executor:
            samples = executor.ordered_samples(_square, range(23))
        assert samples == [_square(i) for i in range(23)]

    def test_process_pool_empty_items(self):
        with make_executor(2) as executor:
            assert executor.ordered_samples(_square, []) == []


FIG4 = fig4_lookup_cost.Fig4Config(targets=(20, 35), runs=4, lookups_per_run=30)
FIG9 = fig9_unfairness.Fig9Config(
    budgets=(200, 400), runs=4, lookups_per_instance=60
)
TABLE2 = table2_summary.Table2Config(
    runs=2, lookups=60, churn_updates=60, update_trace_length=60
)


class TestParallelDeterminism:
    @pytest.mark.parametrize(
        "module, config",
        [
            (fig4_lookup_cost, FIG4),
            (fig9_unfairness, FIG9),
            (table2_summary, TABLE2),
        ],
        ids=["fig4", "fig9", "table2"],
    )
    def test_jobs4_rows_bit_identical_to_serial(self, module, config):
        serial = module.run(config, jobs=1)
        parallel = module.run(config, jobs=4)
        assert parallel.headers == serial.headers
        assert parallel.rows == serial.rows

    def test_chaos_parallel_rows_and_metrics_match_serial(self):
        config = chaos_soak.ChaosSoakConfig(
            events=200, lookups=30, audit_lookups=5
        )
        serial_metrics = MetricsRegistry()
        serial = chaos_soak.run(config, metrics=serial_metrics, jobs=1)
        parallel_metrics = MetricsRegistry()
        parallel = chaos_soak.run(config, metrics=parallel_metrics, jobs=4)
        assert parallel.rows == serial.rows
        assert parallel.meta["passed"] and serial.meta["passed"]
        assert parallel_metrics.dump_state() == serial_metrics.dump_state()


class TestProfiles:
    def test_paper_profile_restores_paper_scale(self):
        overrides = profile_overrides(fig9_unfairness.Fig9Config, "paper")
        config = fig9_unfairness.Fig9Config(**overrides)
        assert config.runs == 5000
        assert config.lookups_per_instance == 10000

    def test_profile_restricted_to_declared_fields(self):
        overrides = profile_overrides(fig4_lookup_cost.Fig4Config, "paper")
        assert overrides["lookups_per_run"] == 5000
        assert "lookups_per_instance" not in overrides

    def test_unknown_profile_is_a_clean_error(self):
        with pytest.raises(InvalidParameterError, match="available"):
            profile_overrides(fig4_lookup_cost.Fig4Config, "mega")

    def test_smoke_profile_covers_every_experiment(self):
        from repro.experiments.registry import list_experiments

        for spec in list_experiments():
            overrides = profile_overrides(spec.config_class, "smoke")
            assert overrides, f"smoke profile is empty for {spec.experiment_id}"
            spec.config_class(**overrides)  # must construct cleanly


class TestCliParallel:
    FIG4_ARGS = [
        "--set", "runs=3", "--set", "targets=20,35",
        "--set", "lookups_per_run=20",
    ]

    def test_jobs_zero_is_a_clean_error(self, capsys):
        assert main(["run", "fig4", "--jobs", "0"] + self.FIG4_ARGS) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "jobs" in err

    def test_bad_set_value_is_a_clean_error(self, capsys):
        assert main(["run", "fig4", "--set", "runs=abc"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "runs" in err and "Traceback" not in err

    def test_bad_env_jobs_is_a_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        assert main(["run", "fig4"] + self.FIG4_ARGS) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_smoke_applies_and_set_wins(self, tmp_path, capsys):
        target = tmp_path / "fig9.json"
        assert main([
            "run", "fig9", "--profile", "smoke",
            "--set", "budgets=200", "--set", "runs=3",
            "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["config"]["runs"] == 3  # --set beats the profile
        assert payload["config"]["lookups_per_instance"] == 100  # from smoke

    def test_manifest_records_execution(self, tmp_path, capsys):
        target = tmp_path / "fig4.json"
        args = ["run", "fig4", "--json", str(target), "--jobs", "2"]
        assert main(args + self.FIG4_ARGS) == 0
        execution = json.loads(target.read_text())["meta"]["manifest"]["execution"]
        assert execution["jobs"] == 2
        assert execution["workers"] == 2
        assert execution["mode"] == "process"
        assert execution["wall_clock_seconds"] >= 0

    def test_json_identical_modulo_execution_record(self, tmp_path, capsys):
        payloads = []
        for jobs in ("1", "2"):
            target = tmp_path / f"fig4-jobs{jobs}.json"
            args = ["run", "fig4", "--json", str(target), "--jobs", jobs]
            assert main(args + self.FIG4_ARGS) == 0
            payload = json.loads(target.read_text())
            assert payload["meta"]["manifest"].pop("execution") is not None
            payloads.append(payload)
        assert payloads[0] == payloads[1]
