"""Protocol choreography tests using the network message log.

The message log records every (destination, message type) delivery in
order, letting tests pin down the *exact* message sequence of each
protocol — the executable version of the paper's Figure 11 pseudocode.
"""

from collections import Counter

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.round_robin import RoundRobinY


class TestRoundRobinDeleteChoreography:
    """Figure 11's delete, message by message."""

    def test_full_sequence(self):
        cluster = Cluster(5, seed=1)
        strategy = RoundRobinY(cluster, y=2)
        strategy.place(make_entries(10))
        log = cluster.network.enable_message_log()
        strategy.delete(Entry("v5"))  # position 4, holders 4 and 0

        kinds = [kind for _, kind in log]
        # 1 client request, n=5 broadcast deliveries, y=2 migrations,
        # y=2 replacement removals.
        assert Counter(kinds) == Counter(
            {
                "DeleteRequest": 1,
                "RemoveWithHead": 5,
                "MigrateRequest": 2,
                "RemoveReplacement": 2,
            }
        )
        # The request precedes everything; every migrate goes to the
        # head server (position 0 -> server 0).
        assert kinds[0] == "DeleteRequest"
        migrate_targets = {dest for dest, kind in log if kind == "MigrateRequest"}
        assert migrate_targets == {0}
        # Replacement removals go to the old holders of the head entry
        # (position 0: servers 0 and 1) and happen after all migrates.
        removal_targets = sorted(
            dest for dest, kind in log if kind == "RemoveReplacement"
        )
        assert removal_targets == [0, 1]
        last_migrate = max(
            i for i, (_, kind) in enumerate(log) if kind == "MigrateRequest"
        )
        first_removal = min(
            i for i, (_, kind) in enumerate(log) if kind == "RemoveReplacement"
        )
        assert first_removal > last_migrate

    def test_deleting_head_entry_skips_migration_payload(self):
        cluster = Cluster(5, seed=2)
        strategy = RoundRobinY(cluster, y=2)
        strategy.place(make_entries(10))
        log = cluster.network.enable_message_log()
        strategy.delete(Entry("v1"))  # the head entry itself
        kinds = Counter(kind for _, kind in log)
        # Migrations still occur (holders must ask) but there is no
        # replacement to retire.
        assert kinds["MigrateRequest"] == 2
        assert kinds["RemoveReplacement"] == 0


class TestFixedChoreography:
    def test_ignored_add_sends_nothing_downstream(self):
        cluster = Cluster(5, seed=3)
        strategy = FixedX(cluster, x=5)
        strategy.place(make_entries(20))
        log = cluster.network.enable_message_log()
        strategy.add(Entry("ignored"))
        assert [kind for _, kind in log] == ["AddRequest"]

    def test_acting_delete_broadcasts_once(self):
        cluster = Cluster(5, seed=4)
        strategy = FixedX(cluster, x=5)
        strategy.place(make_entries(20))
        log = cluster.network.enable_message_log()
        strategy.delete(Entry("v2"))
        kinds = Counter(kind for _, kind in log)
        assert kinds == Counter({"DeleteRequest": 1, "RemoveMessage": 5})


class TestHashChoreography:
    def test_add_goes_only_to_hash_targets(self):
        cluster = Cluster(10, seed=5)
        strategy = HashY(cluster, y=3)
        strategy.place(make_entries(5))
        entry = Entry("new")
        targets = set(strategy.family.assign_distinct(entry))
        log = cluster.network.enable_message_log()
        strategy.add(entry)
        stores = [(dest, kind) for dest, kind in log if kind == "StoreMessage"]
        assert {dest for dest, _ in stores} == targets
        assert len(stores) == len(targets)  # one message per distinct target
