"""Unit tests for the key-partitioning baseline (Figure 1, center)."""

import pytest

from repro.baselines.key_partitioning import KeyPartitioning
from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries


@pytest.fixture
def baseline(cluster):
    strategy = KeyPartitioning(cluster)
    strategy.place(make_entries(100))
    return strategy


class TestPlacement:
    def test_everything_on_the_owner(self, baseline):
        placement = baseline.placement()
        assert placement[baseline.owner_id] == set(make_entries(100))
        for server_id, entries in placement.items():
            if server_id != baseline.owner_id:
                assert entries == set()

    def test_minimal_storage(self, baseline):
        assert baseline.storage_cost() == 100

    def test_complete_coverage(self, baseline):
        assert baseline.coverage() == 100

    def test_owner_deterministic_per_key(self):
        a = KeyPartitioning(Cluster(10, seed=1), key="song", hash_seed=5)
        b = KeyPartitioning(Cluster(10, seed=2), key="song", hash_seed=5)
        assert a.owner_id == b.owner_id

    def test_different_keys_spread_over_servers(self):
        cluster = Cluster(10, seed=3)
        owners = {
            KeyPartitioning(cluster, key=f"key{i}", hash_seed=9).owner_id
            for i in range(40)
        }
        assert len(owners) > 3


class TestLookups:
    def test_every_lookup_hits_the_owner(self, baseline):
        for _ in range(20):
            result = baseline.partial_lookup(5)
            assert result.servers_contacted == (baseline.owner_id,)
            assert result.success

    def test_owner_failure_kills_the_key(self, baseline):
        baseline.cluster.fail(baseline.owner_id)
        result = baseline.partial_lookup(1)
        assert not result.success
        assert len(result) == 0

    def test_other_failures_are_harmless(self, baseline):
        for server_id in range(10):
            if server_id != baseline.owner_id:
                baseline.cluster.fail(server_id)
        assert baseline.partial_lookup(50).success


class TestUpdates:
    def test_add_goes_to_owner_only(self, baseline):
        result = baseline.add(Entry("new"))
        assert result.messages == 2  # initial request + forward
        assert Entry("new") in baseline.placement()[baseline.owner_id]

    def test_delete_goes_to_owner_only(self, baseline):
        result = baseline.delete(Entry("v1"))
        assert result.messages == 2
        assert Entry("v1") not in baseline.lookup_all()

    def test_no_broadcasts(self, baseline):
        before = baseline.cluster.network.stats.broadcasts
        baseline.add(Entry("a"))
        baseline.delete(Entry("v2"))
        assert baseline.cluster.network.stats.broadcasts == before
