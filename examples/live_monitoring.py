"""Live monitoring: watch a service degrade and recover, over time.

Composes a full scenario — steady churn, client lookups, and a
mid-run failure window where three servers crash and later recover —
and samples coverage and the minimum per-server store on a fixed
period, rendering both as ASCII time series.  The tooling equivalent
of a Grafana dashboard for the simulated service.

Run:  python examples/live_monitoring.py
"""

from repro import Cluster
from repro.experiments.plotting import ascii_plot
from repro.metrics.timeseries import (
    TimeSeriesProbe,
    coverage_metric,
    min_store_metric,
)
from repro.simulation.events import FailureEvent, RecoveryEvent
from repro.simulation.replay import TraceReplayer
from repro.strategies.round_robin import RoundRobinY
from repro.workload.compose import ScenarioBuilder, merge_event_streams

ENTRIES = 100
UPDATES = 1500


def main() -> None:
    scenario = (
        ScenarioBuilder(seed=31)
        .with_steady_state_churn(entry_count=ENTRIES, updates=UPDATES)
        .with_lookups(count=150, target=10)
        .build()
    )
    horizon = scenario.horizon

    # A deterministic failure window in the middle third of the run.
    # Servers 5..7 crash — deliberately NOT the counter replicas
    # (servers 0..2): killing all counter hosts would refuse every
    # update and deleted entries would leak for the rest of the run.
    # (Try it: change `5 + i` to `i` and watch coverage overshoot.)
    window_start, window_end = horizon * 0.4, horizon * 0.65
    failures = [
        FailureEvent(window_start + i * 20.0, server_id=5 + i)
        for i in range(3)
    ] + [
        RecoveryEvent(window_end + i * 20.0, server_id=5 + i)
        for i in range(3)
    ]

    cluster = Cluster(10, seed=31)
    strategy = RoundRobinY(cluster, y=2, counter_replicas=3)
    strategy.place(scenario.initial_entries)

    coverage_probe = TimeSeriesProbe(
        "coverage", coverage_metric, period=horizon / 60, horizon=horizon
    )
    floor_probe = TimeSeriesProbe(
        "min_store", min_store_metric, period=horizon / 60, horizon=horizon
    )
    events = merge_event_streams(
        list(scenario.events),
        failures,
        coverage_probe.events(),
        floor_probe.events(),
    )
    stats = TraceReplayer(strategy).replay(events)

    print(ascii_plot(
        {"coverage (alive servers)": coverage_probe.series.as_curve()},
        title=f"Coverage through a 3-server failure window "
              f"(t in [{window_start:.0f}, {window_end:.0f}])",
        x_label="virtual time",
        width=70,
        height=12,
    ))
    print()
    print(ascii_plot(
        {"min per-server store": floor_probe.series.as_curve()},
        title="Smallest per-server store over the same run",
        x_label="virtual time",
        width=70,
        height=10,
    ))
    print(
        f"\nrun summary: {stats.adds} adds, {stats.deletes} deletes, "
        f"{stats.lookups} lookups ({stats.failed_lookups} failed), "
        f"{stats.refused_updates} updates refused."
    )

    from repro.maintenance.verify import verify_placement

    violations = verify_placement(strategy)
    print(
        "\nReading the charts:\n"
        " - coverage dips ~30 entries while the window is open (the\n"
        "   failed servers' exclusive copies), yet every 10-entry\n"
        "   lookup succeeds: round-robin keeps 2 copies on consecutive\n"
        "   servers.\n"
        " - after recovery, coverage OVERSHOOTS the steady state: the\n"
        "   recovered servers return with stale copies of entries that\n"
        "   were deleted while they were down (the paper's protocols\n"
        "   have no anti-entropy repair).\n"
        f"   verify_placement() confirms: {len(violations)} structural\n"
        "   violations on the recovered placement - see\n"
        "   repro.maintenance for the verification/repair tooling.\n"
    )


if __name__ == "__main__":
    main()
