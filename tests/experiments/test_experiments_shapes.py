"""Shape tests: each experiment reproduces the paper's qualitative claims.

These run the experiment modules at reduced statistical budgets and
assert the *shape* conclusions the paper draws — who wins, where the
steps and crossovers fall, which direction curves move — rather than
absolute values.  The benchmarks run the same experiments at larger
budgets.
"""

import pytest

from repro.experiments import (
    fig4_lookup_cost,
    fig6_coverage,
    fig7_fault_tolerance,
    fig9_unfairness,
    fig12_cushion,
    fig13_dynamic_unfairness,
    fig14_update_overhead,
    table1_storage,
    table2_summary,
)


class TestTable1:
    def test_deterministic_rows_exact(self):
        result = table1_storage.run(table1_storage.Table1Config(runs=10))
        for name in ("full_replication", "fixed", "random_server", "round_robin"):
            row = result.row_for(strategy=name)
            assert row["measured"] == row["expected"]

    def test_hash_row_close_to_expectation(self):
        result = table1_storage.run(table1_storage.Table1Config(runs=30))
        row = result.row_for(strategy="hash")
        assert abs(row["measured"] - row["expected"]) < 5


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        config = fig4_lookup_cost.Fig4Config(
            targets=(10, 20, 25, 40, 45), runs=5, lookups_per_run=200
        )
        return fig4_lookup_cost.run(config)

    def test_round_robin_step_curve(self, result):
        assert result.row_for(target=20)["round_robin_2"] == 1.0
        assert result.row_for(target=25)["round_robin_2"] == 2.0
        assert result.row_for(target=45)["round_robin_2"] == 3.0

    def test_random_server_at_least_round_robin(self, result):
        for row in result.rows:
            assert row["random_server_20"] >= row["round_robin_2"] - 1e-9

    def test_hash_above_one_for_small_targets(self, result):
        # §4.2: Hash-y pays >1 even when t is below the per-server mean.
        assert result.row_for(target=10)["hash_2"] > 1.0

    def test_hash_wins_just_past_the_step(self, result):
        # §4.2: at t=25 Hash-2 can finish with one server, Round-2 can't.
        row = result.row_for(target=25)
        assert row["hash_2"] < row["round_robin_2"]

    def test_fixed_fails_beyond_x(self, result):
        assert result.row_for(target=25)["fixed_20_fail"] == 1.0
        assert result.row_for(target=20)["fixed_20_fail"] == 0.0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        config = fig6_coverage.Fig6Config(budgets=(20, 50, 100, 150, 200), runs=10)
        return fig6_coverage.run(config)

    def test_round_and_hash_track_min_budget_h(self, result):
        for budget in (20, 50, 100):
            row = result.row_for(budget=budget)
            assert row["round_robin"] == budget
            assert row["hash"] == budget
        assert result.row_for(budget=200)["round_robin"] == 100

    def test_fixed_coverage_is_budget_over_n(self, result):
        assert result.row_for(budget=100)["fixed"] == 10
        assert result.row_for(budget=200)["fixed"] == 20

    def test_random_server_between_fixed_and_complete(self, result):
        for row in result.rows:
            assert row["fixed"] <= row["random_server"] <= 100

    def test_random_server_matches_formula(self, result):
        for row in result.rows:
            assert row["random_server"] == pytest.approx(
                row["random_server_expected"], abs=3.0
            )


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        config = fig7_fault_tolerance.Fig7Config(targets=(10, 30, 50), runs=10)
        return fig7_fault_tolerance.run(config)

    def test_round_robin_matches_closed_form(self, result):
        for row in result.rows:
            assert row["round_robin_2"] == pytest.approx(
                row["round_robin_formula"], abs=0.01
            )

    def test_random_server_at_least_round_robin(self, result):
        # §4.4: random overlaps give RandomServer extra tolerance.
        for row in result.rows:
            assert row["random_server_20"] >= row["round_robin_2"] - 1e-9

    def test_tolerance_declines_with_target(self, result):
        for label in ("random_server_20", "hash_2", "round_robin_2"):
            values = result.column(label)
            assert values[0] >= values[-1]


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        config = fig9_unfairness.Fig9Config(
            budgets=(100, 200, 500, 1000), runs=4, lookups_per_instance=1000
        )
        return fig9_unfairness.run(config)

    def test_random_server_decreases_with_storage(self, result):
        values = result.column("random_server")
        assert values[0] > values[-1]
        assert values[-1] < 0.15  # nearly fair once servers hold all

    def test_hash_rises_then_stays_flat(self, result):
        values = result.column("hash")
        # Phase 1 increase (100 -> 500), then no further big rise.
        assert values[1] >= values[0] * 0.8
        assert max(values[1:]) < 1.0

    def test_fixed_order_of_magnitude_worse(self, result):
        row = result.row_for(budget=200)
        assert row["fixed_exact"] > 3 * row["random_server"]


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        config = fig12_cushion.Fig12Config(
            cushions=(0, 2, 4), runs=4, updates_per_run=2000
        )
        return fig12_cushion.run(config)

    def test_zero_cushion_double_digit_failures(self, result):
        row = result.row_for(cushion=0)
        assert row["exp_percent"] > 5.0
        assert row["zipf_percent"] > 5.0

    def test_failure_time_drops_steeply_with_cushion(self, result):
        exp = result.column("exp_percent")
        assert exp[0] > 5 * max(exp[1], 0.01)
        assert exp[1] > exp[2] or exp[2] < 0.5

    def test_zipf_tapers_above_exponential(self, result):
        # The heavy tail keeps a floor of failures at large cushions.
        row = result.row_for(cushion=4)
        assert row["zipf_percent"] >= row["exp_percent"]


class TestFig13:
    def test_unfairness_rises_then_stabilizes(self):
        config = fig13_dynamic_unfairness.Fig13Config(
            checkpoints=(0, 1000, 3000), runs=3, lookups=800
        )
        result = fig13_dynamic_unfairness.run(config)
        values = result.column("random_server")
        assert values[1] > values[0]  # rapid initial deterioration
        # §6.3: stabilizes around a factor ~2 better than Fixed's 2.0.
        assert 0.5 < values[2] < 1.6


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        config = fig14_update_overhead.Fig14Config(
            entry_counts=(100, 200, 300, 400), runs=2, updates_per_run=1500
        )
        return fig14_update_overhead.run(config)

    def test_fixed_cost_decreasing_in_h(self, result):
        values = result.column("fixed_measured")
        assert values == sorted(values, reverse=True)

    def test_hash_steps_down_with_y(self, result):
        assert result.column("hash_y") == [4, 2, 2, 1]

    def test_crossovers_present(self, result):
        # hash cheaper at h=100, fixed cheaper at h=300, hash at 400.
        assert (
            result.row_for(entry_count=100)["hash_measured"]
            < result.row_for(entry_count=100)["fixed_measured"]
        )
        assert (
            result.row_for(entry_count=300)["fixed_measured"]
            < result.row_for(entry_count=300)["hash_measured"]
        )
        assert (
            result.row_for(entry_count=400)["hash_measured"]
            < result.row_for(entry_count=400)["fixed_measured"]
        )

    def test_measured_tracks_expected(self, result):
        for row in result.rows:
            assert row["fixed_measured"] == pytest.approx(
                row["fixed_expected"], rel=0.25
            )
            assert row["hash_measured"] <= row["hash_expected"] * 1.05


class TestTable2:
    @pytest.fixture(scope="class")
    def outcome(self):
        config = table2_summary.Table2Config(
            runs=2, lookups=400, churn_updates=400, update_trace_length=400
        )
        cells = table2_summary.measure_all(config)
        return cells, table2_summary.assign_stars(cells)

    def test_round_robin_fairest(self, outcome):
        cells, stars = outcome
        assert stars["round_robin"]["fairness_static"] == 4

    def test_fixed_best_lookup_cost(self, outcome):
        cells, stars = outcome
        assert stars["fixed"]["lookup_cost"] == 4

    def test_fixed_wins_small_target_updates(self, outcome):
        # §6.4 rule of thumb: t/h < 1/n favours Fixed-x.
        cells, stars = outcome
        assert stars["fixed"]["update_overhead_small_t"] == 4

    def test_hash_wins_large_target_updates(self, outcome):
        cells, stars = outcome
        assert stars["hash"]["update_overhead_large_t"] == 4

    def test_fixed_worst_coverage(self, outcome):
        cells, stars = outcome
        assert stars["fixed"]["coverage"] == 1

    def test_run_renders(self):
        config = table2_summary.Table2Config(
            runs=1, lookups=200, churn_updates=200, update_trace_length=200
        )
        result = table2_summary.run(config)
        assert len(result.rows) == 4
        assert all("*" in str(row["coverage"]) for row in result.rows)
