"""Ablation: Round-Robin's plug-the-hole delete vs naive re-placement.

The paper's §5.4 delete protocol migrates the head entry into the hole
a deletion leaves, at a cost of one broadcast plus 2y point-to-point
messages.  The naive alternative — re-running the entire round-robin
placement after every delete — also restores the invariant, but at
O(h·y) messages per delete.  This bench quantifies the gap the
protocol exists to close.
"""

from _bench_utils import render_and_print

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.runner import ExperimentResult
from repro.strategies.round_robin import RoundRobinY


def _migration_delete_cost(h: int, deletes: int) -> float:
    """Mean messages per delete under the paper's migration protocol."""
    strategy = RoundRobinY(Cluster(10, seed=1), y=2)
    entries = make_entries(h)
    strategy.place(entries)
    total = 0
    for entry in entries[:deletes]:
        total += strategy.delete(entry).messages
    return total / deletes


def _replace_delete_cost(h: int, deletes: int) -> float:
    """Mean messages per delete when deletes re-place everything."""
    strategy = RoundRobinY(Cluster(10, seed=2), y=2)
    entries = make_entries(h)
    strategy.place(entries)
    remaining = list(entries)
    total = 0
    for entry in entries[:deletes]:
        remaining.remove(entry)
        total += strategy.place(remaining).messages
    return total / deletes


def _run_ablation() -> ExperimentResult:
    result = ExperimentResult(
        name="Ablation: Round-Robin delete protocol",
        headers=["entry_count", "migration_msgs_per_delete", "replace_msgs_per_delete", "ratio"],
    )
    for h in (50, 100, 200):
        migration = _migration_delete_cost(h, deletes=20)
        replace = _replace_delete_cost(h, deletes=20)
        result.rows.append(
            {
                "entry_count": h,
                "migration_msgs_per_delete": round(migration, 1),
                "replace_msgs_per_delete": round(replace, 1),
                "ratio": round(replace / migration, 1),
            }
        )
    return result


def test_bench_ablation_roundrobin_delete(benchmark):
    result = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    render_and_print(result)
    for row in result.rows:
        # Migration cost is O(n + y), independent of h.
        assert row["migration_msgs_per_delete"] <= 20
        # Naive replacement scales with h·y and loses badly.
        assert row["replace_msgs_per_delete"] > 2 * row["entry_count"] * 0.8
        assert row["ratio"] > 3
    # The migration advantage grows with the entry count.
    ratios = result.column("ratio")
    assert ratios == sorted(ratios)
