"""The client-side lookup driver.

Every strategy's ``partial_lookup`` follows the same skeleton — contact
servers in some order, merge the distinct entries from each reply, stop
once the target is met — and differs only in the *order* of servers
contacted (uniformly random for most strategies, the deterministic
``s, s+y, s+2y, ...`` walk for Round-Robin).  :class:`Client`
implements that skeleton once, including the paper's failure handling:
a request to a failed server goes unanswered and the client falls back
to trying other (random) servers.

The one public entry point is :meth:`Client.lookup`: a keyword-only
API built around the frozen :class:`LookupOptions` dataclass, whose
``order`` selects between the random walk (``"random"``) and the
Round-Robin stride walk (:class:`Stride`).  The legacy
``lookup_random`` / ``lookup_stride`` methods remain as deprecated
shims over it.

Under a fault plan the transport can also *lose* requests
(:data:`~repro.cluster.network.DROPPED`), which the paper's protocol
cannot distinguish from a failed server.  A :class:`RetryPolicy` makes
the client distinguish the two: after a pass that came up short it
re-contacts the servers that never answered — dropped contacts first,
since those servers are presumably alive — within a bounded backoff
budget measured in simulated time, instead of silently under-filling
the answer.  The result reports the retry count and an explicit
``degraded`` flag, so a short answer is always a *labelled* short
answer.

Observability: pass a :class:`~repro.obs.tracer.Tracer` (per call or
at construction) and every lookup emits one ``"lookup"`` span with a
``"contact"`` event per server tried (outcome: delivered / failed /
dropped) and a ``"retry"`` event per extra pass.  A
:class:`~repro.obs.metrics.MetricsRegistry` makes the client publish
per-lookup counters (``client.lookups``, ``client.retries``, ...).
Both are opt-in and cost nothing when absent — no RNG draws, no
behaviour change.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Set, Tuple, Union

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError, NoOperationalServerError
from repro.core.result import LookupResult
from repro.cluster.cluster import Cluster
from repro.cluster.messages import LookupRequest
from repro.cluster.network import DROPPED, is_undelivered

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry behaviour for lookups under lossy transport.

    Parameters
    ----------
    max_attempts:
        Total passes over unanswered servers, including the first; 1
        reproduces the paper's single-pass client exactly.
    base_backoff:
        Simulated-time delay before the first retry pass.
    backoff_multiplier:
        Exponential growth factor per retry pass.
    backoff_budget:
        Total simulated time one lookup may spend backing off.  A
        retry whose delay would exceed the remaining budget is not
        attempted — the lookup returns degraded instead of retrying
        forever.  Measured in the same virtual-time units as the
        :class:`~repro.simulation.engine.SimulationEngine` clock; the
        synchronous transport accounts the delay (see
        ``LookupResult.backoff``) rather than advancing the engine,
        matching the codebase's convention that asynchronous timing
        lives at the workload level.
    jitter:
        Each delay is scaled by ``1 + jitter * u`` with ``u`` uniform
        in [0, 1) from the client RNG (the cluster RNG by default), so
        seeded runs replay identical retry schedules.  Must lie in
        [0, 1]: a negative jitter would silently *shrink* backoffs
        below the exponential schedule, and anything above 1 would
        more than double a delay.
    """

    max_attempts: int = 3
    base_backoff: float = 1.0
    backoff_multiplier: float = 2.0
    backoff_budget: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff < 0 or self.backoff_budget < 0:
            raise InvalidParameterError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise InvalidParameterError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.jitter < 0.0:
            raise InvalidParameterError(
                f"jitter must not be negative (it would shrink backoffs), "
                f"got {self.jitter}"
            )
        if self.jitter > 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """The jittered backoff before retry pass ``retry_index`` (0-based)."""
        base = self.base_backoff * (self.backoff_multiplier ** retry_index)
        if self.jitter:
            base *= 1.0 + self.jitter * rng.random()
        return base


@dataclass(frozen=True)
class Stride:
    """Round-Robin contact order: random start, then ``+y`` steps mod n."""

    y: int

    def __post_init__(self) -> None:
        if self.y < 1:
            raise InvalidParameterError(f"stride must be >= 1, got {self.y}")

    def __str__(self) -> str:
        return f"stride({self.y})"


#: The ``order`` vocabulary: uniformly random, or a stride walk.
Order = Union[str, Stride]


@dataclass(frozen=True)
class LookupOptions:
    """Frozen per-lookup configuration for :meth:`Client.lookup`.

    Attributes
    ----------
    order:
        ``"random"`` (the default) or a :class:`Stride`.
    max_servers:
        Optional cap on operational servers contacted; used by
        strategies whose placement makes extra contacts useless
        (Fixed-x and full replication stop after one).
    per_server_target:
        How many entries to request from each server; defaults to the
        lookup target, the paper's per-server answer size.
    retry:
        Per-call :class:`RetryPolicy` override; ``None`` inherits the
        client's policy.  To force the paper's single-pass behaviour
        on a retrying client, pass ``RetryPolicy(max_attempts=1)``.
    tracer:
        Per-call :class:`~repro.obs.tracer.Tracer` override; ``None``
        inherits the client's tracer (usually none).
    """

    order: Order = "random"
    max_servers: Optional[int] = None
    per_server_target: Optional[int] = None
    retry: Optional[RetryPolicy] = None
    tracer: Optional["Tracer"] = None

    def __post_init__(self) -> None:
        if self.order != "random" and not isinstance(self.order, Stride):
            raise InvalidParameterError(
                f"order must be 'random' or a Stride, got {self.order!r}"
            )


class Client:
    """A lookup client bound to a cluster.

    Parameters
    ----------
    cluster:
        The cluster to issue lookups against.
    rng:
        Private randomness for server selection; defaults to the
        cluster RNG so a seeded cluster stays fully deterministic.
    retry_policy:
        Optional :class:`RetryPolicy`.  With the default ``None`` the
        client is the paper's single-pass client, bit-for-bit.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; when set, every
        lookup emits a span (see the module docstring).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        set, the client publishes per-lookup counters into it.
    """

    def __init__(
        self,
        cluster: Cluster,
        rng: Optional[random.Random] = None,
        retry_policy: Optional[RetryPolicy] = None,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self._cluster = cluster
        self._rng = rng if rng is not None else cluster.rng
        self.retry_policy = retry_policy
        self.tracer = tracer
        self.metrics = metrics

    # -- server orderings -----------------------------------------------------

    def random_order(self) -> List[int]:
        """All server ids in a fresh uniformly random order."""
        order = list(range(self._cluster.size))
        self._rng.shuffle(order)
        return order

    def stride_order(self, start: int, stride: int) -> List[int]:
        """The Round-Robin-y contact sequence ``start, start+stride, ...``.

        Walks all ``n`` servers modulo ``n``; when ``gcd(stride, n) > 1``
        the walk revisits ids, so remaining ids are appended in random
        order to preserve the "contact every server at most once"
        client behaviour.
        """
        n = self._cluster.size
        order: List[int] = []
        seen: Set[int] = set()
        current = start % n
        for _ in range(n):
            if current in seen:
                break
            order.append(current)
            seen.add(current)
            current = (current + stride) % n
        leftovers = [i for i in range(n) if i not in seen]
        self._rng.shuffle(leftovers)
        order.extend(leftovers)
        return order

    def _resolve_order(self, order: Order) -> Tuple[List[int], str]:
        """Materialize an :data:`Order` into server ids plus a trace label.

        The RNG draws are exactly those of the legacy methods —
        ``"random"`` is one shuffle, a :class:`Stride` is one
        ``random_server_id`` draw then the stride walk — so seeded
        runs are unchanged by the unified API.
        """
        if isinstance(order, Stride):
            start = self._cluster.random_server_id()
            return self.stride_order(start, order.y), str(order)
        return self.random_order(), "random"

    # -- the lookup skeleton -----------------------------------------------------

    def lookup(
        self,
        key: str,
        target: int,
        *,
        order: Order = "random",
        max_servers: Optional[int] = None,
        per_server_target: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        tracer: Optional["Tracer"] = None,
        options: Optional[LookupOptions] = None,
    ) -> LookupResult:
        """Look up ``target`` distinct entries for ``key``.

        The single lookup entry point: ``order`` selects the contact
        sequence (``"random"`` or ``Stride(y)``), everything else is
        keyword-only and inherits the client's defaults.  Pass a
        pre-built frozen :class:`LookupOptions` as ``options`` to
        reuse one configuration across calls (the individual keywords
        must then be left at their defaults).
        """
        if options is None:
            options = LookupOptions(
                order=order,
                max_servers=max_servers,
                per_server_target=per_server_target,
                retry=retry,
                tracer=tracer,
            )
        elif (
            order != "random"
            or max_servers is not None
            or per_server_target is not None
            or retry is not None
            or tracer is not None
        ):
            raise InvalidParameterError(
                "pass either individual lookup keywords or options=, not both"
            )
        order_ids, order_label = self._resolve_order(options.order)
        return self.collect(
            key,
            target,
            order_ids,
            max_servers=options.max_servers,
            per_server_target=options.per_server_target,
            retry=options.retry,
            tracer=options.tracer,
            trace_label=order_label,
        )

    def collect(
        self,
        key: str,
        target: int,
        order: Iterable[int],
        max_servers: Optional[int] = None,
        per_server_target: Optional[int] = None,
        *,
        retry: Optional[RetryPolicy] = None,
        tracer: Optional["Tracer"] = None,
        trace_label: Optional[str] = None,
    ) -> LookupResult:
        """Contact servers in ``order`` until ``target`` entries merge.

        Parameters
        ----------
        key:
            The key being looked up.
        target:
            Required number of distinct entries; ``0`` means "collect
            everything" (contact every server), used for traditional
            full lookups and coverage probes.
        order:
            Server ids to try, in order.  Failed servers are skipped
            (recorded in ``failed_contacts``) without counting toward
            the lookup cost, per Section 4.2's no-failure cost model.
        max_servers:
            Optional cap on operational servers contacted; used by
            strategies whose placement makes extra contacts useless
            (Fixed-x and full replication stop after one).
        per_server_target:
            How many entries to request from each server.  Defaults to
            ``target``, the paper's per-server answer size.
        retry:
            Per-call policy override; ``None`` inherits
            ``self.retry_policy``.
        tracer:
            Per-call tracer override; ``None`` inherits
            ``self.tracer``.
        trace_label:
            The ``order`` field on the emitted lookup span (set by
            :meth:`lookup`; explicit orders trace as ``"explicit"``).

        When a :class:`RetryPolicy` is in effect and the first pass
        comes up short with unanswered servers remaining, the client
        makes further passes over those servers (dropped contacts
        first) until the target is met, the attempts run out, or the
        backoff budget is exhausted.
        """
        if tracer is None:
            tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin_span(
                "lookup",
                key=key,
                target=target,
                order=trace_label if trace_label is not None else "explicit",
            )
        ask = target if per_server_target is None else per_server_target
        merged: List[Entry] = []
        merged_ids: Set[str] = set()
        contacted: List[int] = []
        failed: List[int] = []
        dropped: List[int] = []

        def run_pass(pass_order: Iterable[int]) -> None:
            for server_id in pass_order:
                if target > 0 and len(merged) >= target:
                    break
                if max_servers is not None and len(contacted) >= max_servers:
                    break
                reply = self._cluster.network.send(
                    server_id, key, LookupRequest(ask)
                )
                if is_undelivered(reply):
                    (dropped if reply is DROPPED else failed).append(server_id)
                    if span is not None:
                        tracer.event(
                            "contact",
                            parent=span,
                            server=server_id,
                            outcome="dropped" if reply is DROPPED else "failed",
                            returned=0,
                            fresh=0,
                        )
                    continue
                contacted.append(server_id)
                fresh = [e for e in reply if e.entry_id not in merged_ids]
                # The client wants exactly ``target`` entries; when the
                # final server's reply overshoots, keep a uniformly random
                # subset of its fresh contribution so no entry of that
                # server is privileged (this is what makes Round-Robin's
                # answers exactly fair, §4.5).
                if target > 0 and len(merged) + len(fresh) > target:
                    fresh = self._rng.sample(fresh, target - len(merged))
                if span is not None:
                    tracer.event(
                        "contact",
                        parent=span,
                        server=server_id,
                        outcome="delivered",
                        returned=len(reply),
                        fresh=len(fresh),
                    )
                merged.extend(fresh)
                merged_ids.update(e.entry_id for e in fresh)

        run_pass(order)

        retries = 0
        backoff = 0.0
        policy = self.retry_policy if retry is None else retry
        if policy is not None and target > 0:
            while (
                len(merged) < target
                and retries + 1 < policy.max_attempts
                and (dropped or failed)
                and (max_servers is None or len(contacted) < max_servers)
            ):
                delay = policy.delay(retries, self._rng)
                if backoff + delay > policy.backoff_budget:
                    break
                backoff += delay
                retries += 1
                # Dropped contacts are retried before failed ones: a
                # drop means the server is (probably) alive and the
                # message was lost, whereas a failed server stays
                # failed until something recovers it.
                retry_failed = list(failed)
                self._rng.shuffle(retry_failed)
                retry_order = dropped + retry_failed
                if span is not None:
                    tracer.event(
                        "retry",
                        parent=span,
                        attempt=retries,
                        delay=delay,
                        backoff=backoff,
                        pending=len(retry_order),
                    )
                dropped = []
                failed = []
                run_pass(retry_order)

        result = LookupResult(
            entries=tuple(merged),
            target=target,
            servers_contacted=tuple(contacted),
            failed_contacts=tuple(failed) + tuple(dropped),
            messages=len(contacted),
            retries=retries,
            backoff=backoff,
        )
        if span is not None:
            tracer.end_span(
                span,
                entries=len(result.entries),
                messages=result.messages,
                retries=result.retries,
                backoff=result.backoff,
                success=result.success,
                degraded=result.degraded,
            )
        if self.metrics is not None:
            self._publish(result)
        return result

    def _publish(self, result: LookupResult) -> None:
        """Publish one lookup's outcome into the metrics registry."""
        metrics = self.metrics
        metrics.counter("client.lookups").inc()
        metrics.histogram("client.lookup_cost").observe(result.lookup_cost)
        if result.retries:
            metrics.counter("client.retries").inc(result.retries)
            metrics.histogram("client.backoff").observe(result.backoff)
        if result.degraded:
            metrics.counter("client.degraded").inc()

    # -- deprecated shims -----------------------------------------------------

    def lookup_random(
        self,
        key: str,
        target: int,
        max_servers: Optional[int] = None,
    ) -> LookupResult:
        """Deprecated: use ``lookup(key, target, max_servers=...)``."""
        warnings.warn(
            "Client.lookup_random is deprecated; use "
            "Client.lookup(key, target, ...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.lookup(key, target, max_servers=max_servers)

    def lookup_stride(self, key: str, target: int, stride: int) -> LookupResult:
        """Deprecated: use ``lookup(key, target, order=Stride(y))``."""
        warnings.warn(
            "Client.lookup_stride is deprecated; use "
            "Client.lookup(key, target, order=Stride(y)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.lookup(key, target, order=Stride(stride))
