"""Figure 14: total update overhead, Fixed-x vs Hash-y.

Paper setup: target answer size 40, 10 servers, steady-state entry
count ``h`` swept 100..400 (so the ratio ``t/h`` spans 0.4 down to
0.1), Fixed-50 (cushion 10 over the target) against Hash-y with the
per-ratio optimal ``y = ⌈t·n/h⌉`` (4, 3, 2, 1 over the sweep); 20000
updates per run.  Measured: total messages processed by servers.

Expected shape: Fixed-50's cost falls smoothly as ``h`` grows (its
broadcast probability is ``x/h``); Hash-y's steps down at the ``y``
break points (h = 133, 200, 400); the curves cross near where
``(x/h)·n = 1 + y`` flips sign — several times, because of the
ceiling in the optimal ``y``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from repro.analysis.crossover import (
    expected_update_cost_fixed,
    expected_update_cost_hash,
    optimal_hash_y,
)
from repro.cluster.cluster import Cluster
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs_multi
from repro.simulation.replay import TraceReplayer
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.workload.generator import SteadyStateWorkload


@dataclass(frozen=True)
class Fig14Config:
    target: int = 40
    x: int = 50
    server_count: int = 10
    entry_counts: Tuple[int, ...] = (100, 133, 150, 200, 250, 300, 350, 400)
    #: Updates per run (paper: 20000).
    updates_per_run: int = 4000
    #: Runs per data point.
    runs: int = 5
    seed: int = 14


def measure_point(config: Fig14Config, entry_count: int, seed: int) -> Dict[str, float]:
    """One run: drive both schemes through the same update trace."""
    y = optimal_hash_y(config.target, entry_count, config.server_count)
    samples: Dict[str, float] = {}
    for label, build in (
        ("fixed", lambda c: FixedX(c, x=config.x)),
        ("hash", lambda c: HashY(c, y=y)),
    ):
        rng = random.Random(seed)
        workload = SteadyStateWorkload(entry_count, rng=rng)
        trace = workload.generate(config.updates_per_run)
        cluster = Cluster(config.server_count, seed=seed)
        strategy = build(cluster)
        strategy.place(trace.initial_entries)
        cluster.reset_stats()  # charge only the updates, not the placement
        replayer = TraceReplayer(strategy)
        stats = replayer.replay(trace.events)
        samples[label] = float(stats.update_messages)
    return samples


def run(
    config: Fig14Config = Fig14Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Figure 14: total update messages vs entry count."""
    result = ExperimentResult(
        name="Figure 14: update overhead, Fixed-x vs Hash-y",
        headers=[
            "entry_count",
            "hash_y",
            "fixed_measured",
            "hash_measured",
            "fixed_expected",
            "hash_expected",
        ],
        meta={
            "t": config.target,
            "x": config.x,
            "n": config.server_count,
            "updates_per_run": config.updates_per_run,
            "runs": config.runs,
        },
    )
    with make_executor(jobs) as executor:
        for entry_count in config.entry_counts:
            y = optimal_hash_y(config.target, entry_count, config.server_count)
            averaged = average_runs_multi(
                partial(measure_point, config, entry_count),
                master_seed=config.seed + entry_count,
                runs=config.runs,
                executor=executor,
            )
            updates = config.updates_per_run
            result.rows.append(
                {
                    "entry_count": entry_count,
                    "hash_y": y,
                    "fixed_measured": round(averaged["fixed"].mean, 1),
                    "hash_measured": round(averaged["hash"].mean, 1),
                    "fixed_expected": round(
                        expected_update_cost_fixed(
                            config.x, entry_count, config.server_count
                        )
                        * updates,
                        1,
                    ),
                    "hash_expected": round(
                        expected_update_cost_hash(y) * updates, 1
                    ),
                }
            )
    return result
