"""Unit tests for the Round-Robin-y strategy (§3.4, §5.4, Figures 10-11)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.core.exceptions import InvalidParameterError
from repro.strategies.round_robin import RoundRobinY


@pytest.fixture
def strategy(cluster):
    s = RoundRobinY(cluster, y=2)
    s.place(make_entries(100))
    return s


def _assert_replica_invariant(strategy, y):
    """Every live entry has exactly y copies on consecutive servers."""
    counts = strategy.cluster.replica_counts("k")
    assert counts, "no entries placed"
    for entry, count in counts.items():
        assert count == y, f"{entry} has {count} copies, expected {y}"


class TestPlacement:
    def test_entry_i_on_consecutive_servers(self, cluster):
        strategy = RoundRobinY(cluster, y=3)
        strategy.place(make_entries(10))
        placement = strategy.placement()
        # v1 is position 0: servers 0, 1, 2.
        for server_id in (0, 1, 2):
            assert Entry("v1") in placement[server_id]
        assert Entry("v1") not in placement[3]

    def test_every_entry_y_copies(self, strategy):
        _assert_replica_invariant(strategy, 2)

    def test_storage_cost_h_times_y(self, strategy):
        assert strategy.storage_cost() == 200

    def test_balanced_loads(self, strategy):
        sizes = strategy.cluster.store_sizes("k")
        assert max(sizes) - min(sizes) <= 2  # differ by at most y

    def test_complete_coverage(self, strategy):
        assert strategy.coverage() == 100

    def test_counters_initialized(self, strategy):
        assert strategy.head == 0
        assert strategy.tail == 100

    def test_y_bounds(self, cluster):
        with pytest.raises(InvalidParameterError):
            RoundRobinY(cluster, y=0)
        with pytest.raises(InvalidParameterError):
            RoundRobinY(cluster, y=11)

    def test_budgeted_placement_coverage(self, cluster):
        strategy = RoundRobinY.from_budget(cluster, storage_budget=60, entry_count=100)
        strategy.place(make_entries(100))
        assert strategy.storage_cost() == 60
        assert strategy.coverage() == 60  # round-major: subset once each

    def test_budgeted_partial_second_round(self, cluster):
        strategy = RoundRobinY(cluster, y=2, max_total_storage=150)
        strategy.place(make_entries(100))
        assert strategy.storage_cost() == 150
        assert strategy.coverage() == 100


class TestLookups:
    def test_stride_contacts_disjoint_servers(self, strategy):
        result = strategy.partial_lookup(40)
        assert result.success
        assert result.lookup_cost == 2
        a, b = result.servers_contacted
        assert (b - a) % 10 == 2  # stride y

    def test_step_costs(self, strategy):
        assert strategy.partial_lookup(20).lookup_cost == 1
        assert strategy.partial_lookup(21).lookup_cost == 2
        assert strategy.partial_lookup(40).lookup_cost == 2
        assert strategy.partial_lookup(41).lookup_cost == 3

    def test_full_collection_possible(self, strategy):
        assert len(strategy.partial_lookup(100)) == 100

    def test_failure_falls_back_to_other_servers(self, strategy):
        strategy.cluster.fail_many([0, 2, 4, 6, 8])
        result = strategy.partial_lookup(30)
        assert result.success
        assert all(sid % 2 == 1 for sid in result.servers_contacted)


class TestAdds:
    def test_add_appends_at_tail(self, strategy):
        strategy.add(Entry("new"))
        assert strategy.tail == 101
        placement = strategy.placement()
        # Position 100: servers 0 and 1.
        assert Entry("new") in placement[0]
        assert Entry("new") in placement[1]

    def test_add_maintains_invariant(self, strategy):
        for i in range(25):
            strategy.add(Entry(f"new{i}"))
        _assert_replica_invariant(strategy, 2)

    def test_add_cost_is_request_plus_y(self, strategy):
        result = strategy.add(Entry("new"))
        assert result.messages == 1 + 2

    def test_add_into_empty_service(self, cluster):
        strategy = RoundRobinY(cluster, y=2)
        strategy.add(Entry("only"))
        assert strategy.tail == 1
        assert strategy.coverage() == 1
        _assert_replica_invariant(strategy, 2)


class TestDeleteMigration:
    def test_delete_removes_entry(self, strategy):
        strategy.delete(Entry("v50"))
        assert Entry("v50") not in strategy.lookup_all()

    def test_delete_advances_head(self, strategy):
        strategy.delete(Entry("v50"))
        assert strategy.head == 1

    def test_delete_preserves_invariant(self, strategy):
        strategy.delete(Entry("v50"))
        _assert_replica_invariant(strategy, 2)
        assert strategy.coverage() == 99

    def test_head_entry_plugs_hole(self, strategy):
        # After deleting v50, the old head entry v1 should occupy
        # v50's sequence position (servers 49 % 10 = 9 and 0).
        strategy.delete(Entry("v50"))
        placement = strategy.placement()
        assert Entry("v1") in placement[9]
        assert Entry("v1") in placement[0]
        # v1's old copies (servers 0,1 at position 0) are retired: it
        # must have exactly 2 copies in total.
        holders = [sid for sid, p in placement.items() if Entry("v1") in p]
        assert sorted(holders) == [9, 0] or sorted(holders) == [0, 9]

    def test_deleting_head_entry_itself(self, strategy):
        strategy.delete(Entry("v1"))  # v1 IS the head entry
        _assert_replica_invariant(strategy, 2)
        assert Entry("v1") not in strategy.lookup_all()
        assert strategy.coverage() == 99
        assert strategy.head == 1

    def test_many_deletes_preserve_invariant(self, strategy):
        for i in range(30, 60):
            strategy.delete(Entry(f"v{i}"))
        _assert_replica_invariant(strategy, 2)
        assert strategy.coverage() == 70

    def test_interleaved_updates_preserve_invariant(self, strategy):
        for i in range(20):
            strategy.add(Entry(f"n{i}"))
            strategy.delete(Entry(f"v{i + 1}"))
        _assert_replica_invariant(strategy, 2)
        assert strategy.coverage() == 100

    def test_delete_until_empty(self, cluster):
        strategy = RoundRobinY(cluster, y=2)
        entries = make_entries(6)
        strategy.place(entries)
        for entry in entries:
            strategy.delete(entry)
        assert strategy.coverage() == 0
        assert strategy.storage_cost() == 0

    def test_delete_nonexistent_entry_is_harmless(self, strategy):
        before = strategy.coverage()
        strategy.delete(Entry("ghost"))
        # Head advances (a known cost of the counter protocol) but no
        # entry is lost and the invariant holds.
        assert strategy.coverage() == before
        _assert_replica_invariant(strategy, 2)

    def test_delete_broadcast_cost(self, strategy):
        result = strategy.delete(Entry("v50"))
        # 1 request + n broadcast + y migrates + y replacement removals.
        assert result.messages == 1 + 10 + 2 + 2

    def test_y3_migration(self):
        strategy = RoundRobinY(Cluster(7, seed=3), y=3)
        strategy.place(make_entries(20))
        for victim in ("v5", "v1", "v20", "v13"):
            strategy.delete(Entry(victim))
            _assert_replica_invariant(strategy, 3)
        assert strategy.coverage() == 16

    def test_y1_no_replication(self, cluster):
        strategy = RoundRobinY(cluster, y=1)
        strategy.place(make_entries(30))
        strategy.delete(Entry("v15"))
        _assert_replica_invariant(strategy, 1)
        assert strategy.coverage() == 29
