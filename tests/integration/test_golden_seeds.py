"""Golden-seed regression pins.

Seeded runs must replay bit-identically forever: these tests pin exact
outputs of seeded components so any accidental change to RNG draw
order, hash constants, or protocol sequencing fails loudly.  (CPython
guarantees ``random.Random``'s algorithms are stable across versions
for the methods used here.)

If a change legitimately alters draw order (e.g. a protocol now makes
one extra random choice), update the pinned values *in the same
commit* and call the behaviour change out in its message.
"""

import random

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.hashing.families import HashFamily, fnv1a_64
from repro.strategies.registry import create_strategy
from repro.workload.generator import SteadyStateWorkload


class TestHashGoldens:
    def test_fnv1a_pin(self):
        assert fnv1a_64("v1") == 634738200219259176

    def test_family_assignment_pin(self):
        family = HashFamily(2, 10, seed=12345)
        assignments = [family.assign(Entry(f"v{i}")) for i in range(1, 6)]
        assert assignments == [
            [5, 7], [6, 5], [6, 2], [6, 1], [6, 8],
        ]


class TestPlacementGoldens:
    def test_random_server_placement_pin(self):
        cluster = Cluster(4, seed=777)
        strategy = create_strategy("random_server", cluster, x=3)
        strategy.place(make_entries(8))
        placement = {
            sid: sorted(e.entry_id for e in entries)
            for sid, entries in strategy.placement().items()
        }
        assert placement == {
            0: ["v3", "v4", "v8"],
            1: ["v3", "v5", "v7"],
            2: ["v1", "v4", "v6"],
            3: ["v3", "v5", "v7"],
        }

    def test_round_robin_lookup_pin(self):
        cluster = Cluster(5, seed=99)
        strategy = create_strategy("round_robin", cluster, y=2)
        strategy.place(make_entries(10))
        result = strategy.partial_lookup(4)
        assert [e.entry_id for e in result.entries] == ["v4", "v9", "v3", "v8"]
        assert result.servers_contacted == (3,)


class TestWorkloadGoldens:
    def test_steady_state_trace_pin(self):
        workload = SteadyStateWorkload(10, rng=random.Random(2024))
        trace = workload.generate(20)
        head = [
            (type(e).__name__[0], round(e.time, 3), e.entry.entry_id)
            for e in trace.events[:8]
        ]
        assert head == [
            ("A", 5.376, "u1"),
            ("D", 28.126, "v8"),
            ("D", 30.819, "v7"),
            ("D", 36.205, "v3"),
            ("A", 38.412, "u2"),
            ("A", 50.588, "u3"),
            ("D", 52.778, "v5"),
            ("D", 63.505, "v1"),
        ]
