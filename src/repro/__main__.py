"""``python -m repro`` — the experiment command line.

See :mod:`repro.experiments.cli` for the commands.
"""

import sys

from repro.experiments.cli import main

sys.exit(main())
