"""Clients with preferences (§7.1): the t *best* entries, not any t.

The paper's first variation attaches a cost function to each client —
e.g. a downloader prefers low-latency, high-bandwidth peers.  This
example annotates entries with latency/bandwidth payloads, runs both
the exact (full-sweep) and the bounded-probing preference lookups, and
quantifies the probing tradeoff as regret vs servers contacted.

Run:  python examples/preferred_peers.py
"""

import random

from repro import Cluster
from repro.core.entry import Entry
from repro.experiments.report import render_table
from repro.extensions.preferences import (
    PreferenceClient,
    latency_bandwidth_cost,
)
from repro.strategies.round_robin import RoundRobinY

PEERS = 60
TARGET = 4


def annotated_peers(rng):
    peers = []
    for i in range(PEERS):
        peers.append(
            Entry(
                f"peer-{i:02d}",
                payload={
                    "latency_ms": round(rng.uniform(5, 300), 1),
                    "bandwidth_mbps": round(rng.uniform(1, 100), 1),
                },
            )
        )
    return peers


def main() -> None:
    rng = random.Random(99)
    cluster = Cluster(10, seed=99)
    strategy = RoundRobinY(cluster, y=2)
    peers = annotated_peers(rng)
    strategy.place(peers)

    client = PreferenceClient(
        strategy, latency_bandwidth_cost(latency_weight=1.0, bandwidth_weight=2.0)
    )

    # Ground truth: the 4 genuinely best peers (requires a full sweep).
    best = client.best_lookup(TARGET)
    print(f"true best {TARGET} peers (full sweep, "
          f"{best.lookup_cost} servers contacted):")
    for entry in best.entries:
        payload = entry.payload
        print(f"   {entry.entry_id}: {payload['latency_ms']}ms, "
              f"{payload['bandwidth_mbps']}Mbps")

    # The probing tradeoff: regret shrinks as the probe budget grows.
    rows = []
    for max_servers in (1, 2, 4, 6, 8, 10):
        regrets = []
        costs = []
        for _ in range(40):
            result = client.probing_lookup(TARGET, max_servers=max_servers)
            regrets.append(client.regret(result))
            costs.append(result.lookup_cost)
        rows.append(
            {
                "probe_budget": max_servers,
                "mean_servers": round(sum(costs) / len(costs), 2),
                "mean_regret": round(sum(regrets) / len(regrets), 1),
                "pct_optimal": round(
                    100 * sum(1 for r in regrets if r == 0) / len(regrets)
                ),
            }
        )
    print()
    print(render_table(
        ["probe_budget", "mean_servers", "mean_regret", "pct_optimal"],
        rows,
        title="§7.1 probing tradeoff: answer quality vs servers contacted",
    ))
    print(
        "\nWith Round-Robin-2 each server holds 1/5 of the peers, so a\n"
        "1-server probe misses the best peers 80% of the time; by 4-5\n"
        "probes the answer is almost always optimal - the quantitative\n"
        "version of §7.1's 'easy if the cost function is known'.\n"
    )


if __name__ == "__main__":
    main()
