"""The append-log journal and LogBackend: journaling, replay, compaction."""

import json
import random

import pytest

from repro.core.entry import Entry, make_entries
from repro.core.interning import EntryInterner
from repro.storage.appendlog import (
    AppendLogJournal,
    LogBackend,
    RecoveredImage,
    RecoveryError,
)


def _backend(journal, key="k", server_id=0, interner=None):
    return LogBackend(journal, key, server_id, interner=interner)


def _rebuild(tmp_path, key="k", server_id=0):
    """Cold-start replay: a fresh journal + backend built from disk."""
    journal = AppendLogJournal(tmp_path)
    image = journal.load()
    interner = EntryInterner()
    for entry_id, payload in image.interners.get(key, []):
        interner.intern(Entry(entry_id, payload))
    store = _backend(journal, key, server_id, interner)
    with journal.suspended():
        for entry_id, payload in image.stores.get(key, {}).get(server_id, []):
            store.add(Entry(entry_id, payload))
    return journal, store, image


class TestLogBackendJournaling:
    def test_mutations_replay_bit_identically(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        store = _backend(journal)
        for entry in make_entries(8):
            store.add(entry)
        store.discard(Entry("v3"))
        store.replace(Entry("v5"), Entry("w5"))
        store.add(Entry("v3"))  # re-add after drop: new list position
        journal.close()

        _, recovered, _ = _rebuild(tmp_path)
        assert recovered.as_list() == store.as_list()
        assert recovered.indices() == store.indices()
        assert recovered.mask == store.mask

    def test_pop_random_journals_the_outcome(self, tmp_path):
        # Replay must be RNG-free: the popped entry's id is recorded as
        # a plain drop, so recovery never consumes a random stream.
        journal = AppendLogJournal(tmp_path)
        store = _backend(journal)
        for entry in make_entries(6):
            store.add(entry)
        popped = store.pop_random(random.Random(42))
        journal.close()

        records = [
            json.loads(line)
            for line in (tmp_path / "journal.000001.log").read_text().splitlines()
        ]
        drops = [r for r in records if r["op"] == "drop"]
        assert drops == [{"op": "drop", "k": "k", "s": 0, "id": popped.entry_id}]
        _, recovered, _ = _rebuild(tmp_path)
        assert recovered.as_list() == store.as_list()

    def test_noop_mutations_are_not_journaled(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        store = _backend(journal)
        store.add(Entry("a"))
        before = journal.log_records
        store.add(Entry("a"))  # duplicate
        store.discard(Entry("absent"))
        store.replace(Entry("absent"), Entry("b"))
        store.clear()
        store.clear()  # already empty: nothing to journal
        assert journal.log_records == before + 1  # only the first clear

    def test_restore_is_one_reset_record(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        store = _backend(journal)
        for entry in make_entries(4):
            store.add(entry)
        before = journal.log_records
        store.restore([Entry("x1"), Entry("x2"), Entry("x3")])
        assert journal.log_records == before + 1
        journal.close()
        _, recovered, _ = _rebuild(tmp_path)
        assert recovered.as_list() == [Entry("x1"), Entry("x2"), Entry("x3")]

    def test_read_only_journal_never_writes(self, tmp_path):
        journal = AppendLogJournal(tmp_path, read_only=True)
        store = _backend(journal)
        store.add(Entry("a"))
        assert journal.log_records == 0
        assert not (tmp_path / "journal.000001.log").exists()

    def test_recovered_store_samples_byte_identically(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        store = _backend(journal)
        for entry in make_entries(10):
            store.add(entry)
        store.discard(Entry("v4"))
        journal.close()
        _, recovered, _ = _rebuild(tmp_path)
        assert recovered.sample(4, random.Random(9)) == store.sample(
            4, random.Random(9)
        )


class TestJournalRecords:
    def test_state_records_dedupe(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        journal.record_state("k", 0, {"head": 1})
        journal.record_state("k", 0, {"head": 1})  # unchanged: skipped
        journal.record_state("k", 0, {"head": 2})
        assert journal.log_records == 2

    def test_empty_never_seen_state_is_skipped(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        journal.record_state("k", 0, {})
        assert journal.log_records == 0

    def test_transient_state_keys_are_dropped(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        journal.record_state("k", 0, {"head": 1, "migrations": [1, 2]})
        journal.close()
        image = AppendLogJournal(tmp_path).load()
        assert image.states["k"][0] == {"head": 1}

    def test_rng_round_trips_exactly(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        rng = random.Random(123)
        rng.random()
        journal.record_rng(rng)
        journal.record_rng(rng)  # unchanged: deduped
        assert journal.log_records == 1
        journal.close()
        image = AppendLogJournal(tmp_path).load()
        twin = random.Random()
        twin.setstate((image.rng_state[0], tuple(image.rng_state[1]), image.rng_state[2]))
        assert twin.random() == rng.random()

    def test_epoch_records_keep_the_max(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        journal.record_epoch("k", 3)
        journal.record_epoch("k", 7)
        journal.record_epoch("k", 5)  # late duplicate delivery
        journal.close()
        image = AppendLogJournal(tmp_path).load()
        assert image.epochs == {"k": 7}

    def test_params_dedupe_and_replay(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        journal.record_params({"hash": {"y": 2, "hash_seed": 9}})
        journal.record_params({"hash": {"y": 2, "hash_seed": 9}})
        assert journal.log_records == 1
        journal.close()
        image = AppendLogJournal(tmp_path).load()
        assert image.params == {"hash": {"y": 2, "hash_seed": 9}}


class TestReplayRobustness:
    def test_torn_tail_is_dropped_silently(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        store = _backend(journal)
        for entry in make_entries(5):
            store.add(entry)
        journal.close()
        path = tmp_path / "journal.000001.log"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "add", "k": "k", "s": 0, "e": ["v9"')  # cut short
        _, recovered, _ = _rebuild(tmp_path)
        assert recovered.as_list() == make_entries(5)

    def test_index_mismatch_is_a_recovery_error(self, tmp_path):
        image = RecoveredImage()
        image.apply({"op": "add", "k": "k", "s": 0, "i": 0, "e": ["a", None]})
        with pytest.raises(RecoveryError):
            image.apply({"op": "add", "k": "k", "s": 1, "i": 5, "e": ["b", None]})

    def test_unknown_op_is_a_recovery_error(self):
        with pytest.raises(RecoveryError):
            RecoveredImage().apply({"op": "teleport"})

    def test_duplicate_add_replays_idempotently(self, tmp_path):
        # Journal-replay and delta-application can overlap after a
        # fleet recovery; the image absorbs the double delivery.
        image = RecoveredImage()
        record = {"op": "add", "k": "k", "s": 0, "i": 0, "e": ["a", None]}
        image.apply(record)
        image.apply(record)
        assert image.stores["k"][0] == [["a", None]]

    def test_has_data_ignores_an_empty_directory(self, tmp_path):
        assert not AppendLogJournal(tmp_path).has_data()


class TestCompaction:
    def _image_for(self, store):
        image = RecoveredImage()
        interner = store.interner
        image.interners["k"] = [
            [interner.entry_at(i).entry_id, interner.entry_at(i).payload]
            for i in range(len(interner))
        ]
        image._index_by_id["k"] = {
            pair[0]: i for i, pair in enumerate(image.interners["k"])
        }
        image.stores["k"] = {0: [[e.entry_id, e.payload] for e in store.as_list()]}
        return image

    def test_compaction_folds_logs_into_the_snapshot(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        store = _backend(journal)
        for entry in make_entries(6):
            store.add(entry)
        journal.compact(self._image_for(store), epoch=11)
        # folded logs gone, snapshot present, fresh serial open
        assert not (tmp_path / "journal.000001.log").exists()
        assert (tmp_path / "snapshot.json").exists()
        assert journal.log_records == 0
        assert journal.compactions == 1
        assert journal.last_compaction_epoch == 11

    def test_post_compaction_mutations_replay_on_top(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        store = _backend(journal)
        for entry in make_entries(6):
            store.add(entry)
        journal.compact(self._image_for(store))
        store.discard(Entry("v2"))
        store.add(Entry("w9"))
        journal.close()
        _, recovered, _ = _rebuild(tmp_path)
        assert recovered.as_list() == store.as_list()
        assert recovered.mask == store.mask

    def test_stale_lower_serial_logs_are_ignored(self, tmp_path):
        # A crash between snapshot publish and unlink leaves old logs
        # behind; replay must skip them (their serial < snapshot's).
        journal = AppendLogJournal(tmp_path)
        store = _backend(journal)
        for entry in make_entries(4):
            store.add(entry)
        journal.compact(self._image_for(store))
        journal.close()
        # resurrect a stale pre-compaction log with contradictory data
        with open(tmp_path / "journal.000001.log", "w", encoding="utf-8") as fh:
            fh.write('{"op": "clear", "k": "k", "s": 0}\n')
        _, recovered, _ = _rebuild(tmp_path)
        assert recovered.as_list() == store.as_list()

    def test_should_compact_honours_the_threshold(self, tmp_path):
        journal = AppendLogJournal(tmp_path, compact_every=3)
        store = _backend(journal)
        store.add(Entry("a"))
        store.add(Entry("b"))
        assert not journal.should_compact()
        store.add(Entry("c"))
        assert journal.should_compact()
        journal.compact(self._image_for(store))
        assert not journal.should_compact()

    def test_stats_reflect_the_journal(self, tmp_path):
        journal = AppendLogJournal(tmp_path)
        store = _backend(journal)
        store.add(Entry("a"))
        stats = journal.stats()
        assert stats["kind"] == "log"
        assert stats["log_records"] == 1
        assert stats["log_bytes"] > 0
        assert stats["read_only"] is False
