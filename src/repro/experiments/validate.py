"""Conformance harness: measured behaviour vs every closed form.

The paper states a dozen analytical facts (Table 1, the coverage and
fault-tolerance formulas, the lookup-cost steps, the §6.4 cost model).
``validate()`` sweeps a parameter grid, measures each fact against
live placements, and reports pass/fail per check — a one-command
answer to "is this reproduction still faithful after my change?".

Exposed on the CLI as ``python -m repro validate``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.analysis.crossover import (
    expected_update_cost_fixed,
    expected_update_cost_hash,
)
from repro.analysis.formulas import (
    expected_coverage_random_server,
    expected_storage,
    fault_tolerance_round_robin,
    lookup_cost_round_robin,
)
from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.experiments.runner import ExperimentResult
from repro.metrics.fault_tolerance import greedy_fault_tolerance
from repro.metrics.lookup_cost import estimate_lookup_cost
from repro.strategies.registry import create_strategy


@dataclass(frozen=True)
class ValidationConfig:
    """Grid sizes; kept small enough for an interactive run."""

    grid: Tuple[Tuple[int, int], ...] = ((50, 5), (100, 10), (200, 8))
    stochastic_runs: int = 25
    lookup_samples: int = 300
    tolerance: float = 0.08
    seed: int = 97


@dataclass
class _Check:
    name: str
    detail: str
    passed: bool
    worst_error: float


def _relative_error(measured: float, expected: float) -> float:
    if expected == 0:
        return abs(measured)
    return abs(measured - expected) / abs(expected)


def _check_deterministic_storage(config: ValidationConfig) -> _Check:
    """Table 1's exact rows must match measured storage exactly."""
    worst = 0.0
    for h, n in config.grid:
        x = max(1, (2 * h) // n)
        y = max(1, min(n, 2))
        for name, params in (
            ("full_replication", {}),
            ("fixed", {"x": x}),
            ("random_server", {"x": x}),
            ("round_robin", {"y": y}),
        ):
            strategy = create_strategy(name, Cluster(n, seed=config.seed), **params)
            strategy.place(make_entries(h))
            expected = expected_storage(name, h, n, x=x, y=y)
            worst = max(worst, _relative_error(strategy.storage_cost(), expected))
    return _Check(
        "table1_deterministic",
        "exact storage = closed form (full/fixed/random_server/round)",
        worst == 0.0,
        worst,
    )


def _check_hash_storage(config: ValidationConfig) -> _Check:
    """Hash-y's expected storage within tolerance over runs."""
    worst = 0.0
    for h, n in config.grid:
        y = 2
        total = 0
        for run_index in range(config.stochastic_runs):
            strategy = create_strategy(
                "hash", Cluster(n, seed=config.seed + run_index), y=y
            )
            strategy.place(make_entries(h))
            total += strategy.storage_cost()
        measured = total / config.stochastic_runs
        expected = expected_storage("hash", h, n, y=y)
        worst = max(worst, _relative_error(measured, expected))
    return _Check(
        "table1_hash_expected",
        "E[hash storage] = h·n·(1−(1−1/n)^y)",
        worst < config.tolerance,
        worst,
    )


def _check_random_server_coverage(config: ValidationConfig) -> _Check:
    worst = 0.0
    for h, n in config.grid:
        x = max(1, (2 * h) // n)
        total = 0
        for run_index in range(config.stochastic_runs):
            strategy = create_strategy(
                "random_server", Cluster(n, seed=config.seed + run_index), x=x
            )
            strategy.place(make_entries(h))
            total += strategy.coverage()
        measured = total / config.stochastic_runs
        expected = expected_coverage_random_server(h, n, x)
        worst = max(worst, _relative_error(measured, expected))
    return _Check(
        "coverage_random_server",
        "E[coverage] = h·(1−(1−x/h)^n)",
        worst < config.tolerance,
        worst,
    )


def _check_round_robin_lookup_steps(config: ValidationConfig) -> _Check:
    worst = 0.0
    for h, n in config.grid:
        y = max(1, min(n, 2))
        strategy = create_strategy(
            "round_robin", Cluster(n, seed=config.seed), y=y
        )
        strategy.place(make_entries(h))
        per_server = y * h / n
        for target in (
            max(1, int(per_server) - 1),
            max(1, int(per_server)),
            min(h, int(per_server) + 1),
        ):
            measured = estimate_lookup_cost(
                strategy, target, config.lookup_samples
            ).mean_cost
            expected = lookup_cost_round_robin(target, h, n, y)
            worst = max(worst, _relative_error(measured, expected))
    return _Check(
        "lookup_round_robin",
        "lookup cost = ⌈t·n/(y·h)⌉ around the step",
        worst < config.tolerance,
        worst,
    )


def _check_round_robin_fault_tolerance(config: ValidationConfig) -> _Check:
    worst = 0.0
    for h, n in config.grid:
        y = max(1, min(n, 2))
        strategy = create_strategy(
            "round_robin", Cluster(n, seed=config.seed), y=y
        )
        strategy.place(make_entries(h))
        for target in (max(1, h // 10), h // 2, h):
            measured = greedy_fault_tolerance(strategy, target)
            expected = fault_tolerance_round_robin(target, h, n, y)
            worst = max(worst, abs(measured - expected))
    return _Check(
        "fault_tolerance_round_robin",
        "greedy adversary = n − ⌈tn/h⌉ + y − 1",
        worst == 0.0,
        worst,
    )


def _check_update_cost_model(config: ValidationConfig) -> _Check:
    """§6.4: per-update messages match the closed forms."""
    worst = 0.0
    h, n = 100, 10
    # Fixed-x: drive deletes/adds and compare the long-run mean.
    cluster = Cluster(n, seed=config.seed)
    fixed = create_strategy("fixed", cluster, x=50)
    entries = make_entries(h)
    fixed.place(entries)
    total = 0
    operations = 0
    for index, victim in enumerate(entries):
        total += fixed.delete(victim).messages
        total += fixed.add(Entry(f"r{index}")).messages
        operations += 2
    measured = total / operations
    expected = expected_update_cost_fixed(50, h, n)
    worst = max(worst, _relative_error(measured, expected))

    hash_strategy = create_strategy("hash", Cluster(n, seed=config.seed), y=3)
    hash_strategy.place(entries)
    total = 0
    for index, victim in enumerate(entries[:50]):
        total += hash_strategy.delete(victim).messages
    measured = total / 50
    # Collisions only reduce the cost below 1 + y.
    if measured > expected_update_cost_hash(3) + 1e-9:
        worst = max(worst, 1.0)
    return _Check(
        "update_cost_model",
        "fixed = 1 + (x/h)·n on average; hash <= 1 + y",
        worst < config.tolerance,
        worst,
    )


def _check_exact_instances(config: ValidationConfig) -> _Check:
    """Enumeration agrees with Figure 8 and the closed forms."""
    from repro.analysis.instances import (
        enumerate_random_server_instances,
        expected_coverage_exact,
        strategy_unfairness_exact,
    )

    instances = enumerate_random_server_instances(2, 2, 1)
    figure8 = strategy_unfairness_exact(instances, 2, 1)
    worst = abs(figure8 - 0.5)
    for h, n, x in ((3, 2, 1), (4, 2, 2)):
        enumerated = enumerate_random_server_instances(h, n, x)
        exact = expected_coverage_exact(enumerated, h)
        closed = expected_coverage_random_server(h, n, x)
        worst = max(worst, _relative_error(exact, closed))
    return _Check(
        "exact_instances",
        "Figure 8 = 1/2; enumeration = closed-form coverage",
        worst < 1e-9,
        worst,
    )


_ALL_CHECKS: Tuple[Callable[[ValidationConfig], _Check], ...] = (
    _check_deterministic_storage,
    _check_hash_storage,
    _check_random_server_coverage,
    _check_round_robin_lookup_steps,
    _check_round_robin_fault_tolerance,
    _check_update_cost_model,
    _check_exact_instances,
)


def run(config: ValidationConfig = ValidationConfig()) -> ExperimentResult:
    """Run every conformance check; one row per check."""
    result = ExperimentResult(
        name="Validation: measured behaviour vs the paper's closed forms",
        headers=["check", "status", "worst_error", "what"],
        meta={"grid": list(config.grid), "runs": config.stochastic_runs},
    )
    for check in _ALL_CHECKS:
        outcome = check(config)
        result.rows.append(
            {
                "check": outcome.name,
                "status": "PASS" if outcome.passed else "FAIL",
                "worst_error": round(outcome.worst_error, 5),
                "what": outcome.detail,
            }
        )
    return result


def all_passed(result: ExperimentResult) -> bool:
    return all(row["status"] == "PASS" for row in result.rows)
