"""Placement repair: restore scheme invariants after failures.

Two repair modes:

- **naive**: collect the surviving coverage (union of all stores,
  including recovered-but-stale servers) and re-run ``place`` over it.
  Universally correct, costs a full placement.
- **targeted** (Hash-y only): the hash functions pinpoint where every
  entry *should* be, so repair sends exactly the missing copies and
  removes exactly the misplaced ones — point-to-point, proportional to
  the damage rather than to the key's size.

Both return a :class:`RepairReport` with the message cost and the
violation counts before/after, so the repair tradeoff is measurable
(see ``benchmarks/test_bench_repair.py``).

A note on deletes: repair cannot distinguish a stale copy of a
*deleted* entry from a healthy copy that other servers happened to
lose — the protocols keep no tombstones.  Naive repair therefore
*resurrects* entries deleted while their holder was down.  That is the
honest consequence of the paper's no-tombstone design, and the tests
pin it down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.messages import RemoveMessage, StoreMessage
from repro.core.entry import Entry
from repro.strategies.base import PlacementStrategy
from repro.strategies.hashing import HashY
from repro.maintenance.verify import verify_placement


@dataclass(frozen=True)
class RepairReport:
    """What a repair did and what it cost."""

    mode: str
    violations_before: int
    violations_after: int
    messages: int

    @property
    def clean(self) -> bool:
        return self.violations_after == 0


def _naive_repair(strategy: PlacementStrategy) -> RepairReport:
    before = len(verify_placement(strategy))
    coverage = sorted(
        strategy.cluster.coverage_set(strategy.key, alive_only=False),
        key=lambda entry: entry.entry_id,
    )
    stats = strategy.cluster.network.stats
    before_stats = stats.snapshot()
    strategy.place(coverage)
    messages = stats.diff(before_stats).total
    after = len(verify_placement(strategy))
    return RepairReport(
        mode="naive",
        violations_before=before,
        violations_after=after,
        messages=messages,
    )


def _targeted_hash_repair(strategy: HashY) -> RepairReport:
    """Fix exactly the misplaced/missing copies, point-to-point."""
    before = len(verify_placement(strategy))
    network = strategy.cluster.network
    before_stats = network.stats.snapshot()
    placement = strategy.placement()
    entries = set()
    for stored in placement.values():
        entries.update(stored)
    for entry in sorted(entries, key=lambda e: e.entry_id):
        targets = set(strategy.family.assign_distinct(entry))
        holders = {
            sid for sid, stored in placement.items() if entry in stored
        }
        for server_id in sorted(targets - holders):
            network.send(server_id, strategy.key, StoreMessage(entry))
        for server_id in sorted(holders - targets):
            network.send(server_id, strategy.key, RemoveMessage(entry))
    messages = network.stats.diff(before_stats).total
    after = len(verify_placement(strategy))
    return RepairReport(
        mode="targeted",
        violations_before=before,
        violations_after=after,
        messages=messages,
    )


def repair(strategy: PlacementStrategy, mode: str = "auto") -> RepairReport:
    """Restore ``strategy``'s placement invariants.

    Parameters
    ----------
    strategy:
        The strategy to repair.  All servers should be operational
        (recover them first); repairing around still-failed servers
        re-breaks as soon as they return.
    mode:
        ``"naive"``, ``"targeted"`` (Hash-y only), or ``"auto"`` —
        targeted where available, naive otherwise.
    """
    if mode not in ("auto", "naive", "targeted"):
        raise ValueError(f"unknown repair mode {mode!r}")
    if mode == "targeted" and not isinstance(strategy, HashY):
        raise ValueError("targeted repair is only defined for Hash-y")
    if mode == "naive":
        return _naive_repair(strategy)
    if isinstance(strategy, HashY):
        return _targeted_hash_repair(strategy)
    return _naive_repair(strategy)
