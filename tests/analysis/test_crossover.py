"""Unit tests for the §6.4 crossover analysis."""

import pytest

from repro.analysis.crossover import (
    expected_update_cost_fixed,
    expected_update_cost_hash,
    find_crossovers,
    optimal_hash_y,
)
from repro.core.exceptions import InvalidParameterError


class TestOptimalY:
    def test_paper_break_points(self):
        # t=40, n=10: y = 4 for h in [100,133), 3 for [134,200), etc.
        assert optimal_hash_y(40, 100, 10) == 4
        assert optimal_hash_y(40, 133, 10) == 4  # 400/133 = 3.007…
        assert optimal_hash_y(40, 134, 10) == 3
        assert optimal_hash_y(40, 200, 10) == 2
        assert optimal_hash_y(40, 400, 10) == 1

    def test_minimum_one(self):
        assert optimal_hash_y(1, 1000, 10) == 1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            optimal_hash_y(0, 100, 10)


class TestCostModels:
    def test_fixed_cost_formula(self):
        # 1 + (x/h)·n: x=50, h=100, n=10 -> 6.
        assert expected_update_cost_fixed(50, 100, 10) == pytest.approx(6.0)

    def test_fixed_cost_capped_probability(self):
        # x > h: every update broadcasts.
        assert expected_update_cost_fixed(200, 100, 10) == pytest.approx(11.0)

    def test_hash_cost_formula(self):
        assert expected_update_cost_hash(3) == 4.0

    def test_equality_condition(self):
        # (x/h)·n == y at the crossover: x=50, h=250, n=10 -> 2 = y.
        fixed = expected_update_cost_fixed(50, 250, 10)
        hashed = expected_update_cost_hash(2)
        assert fixed == pytest.approx(hashed)


class TestCrossoverScan:
    def test_paper_sweep_has_multiple_crossovers(self):
        crossovers = find_crossovers(
            x=50, target=40, server_count=10,
            entry_counts=list(range(100, 401, 10)),
        )
        assert len(crossovers) >= 2
        directions = [(c.cheaper_before, c.cheaper_after) for c in crossovers]
        assert ("hash", "fixed") in directions
        assert ("fixed", "hash") in directions

    def test_no_crossover_in_flat_region(self):
        crossovers = find_crossovers(
            x=50, target=40, server_count=10, entry_counts=[300, 310, 320]
        )
        assert crossovers == []
