"""Benchmark: conclusion robustness across cluster sizes.

The paper evaluates everything at n = 10; this bench checks that its
§4.2 lookup-cost and §4.4 fault-tolerance orderings — and Round-
Robin's closed form — hold at n = 5 and n = 20 too (with the storage
budget scaled to the same two-copies regime).
"""

from _bench_utils import render_and_print

from repro.experiments.sensitivity import SensitivityConfig, run


def test_bench_sensitivity(benchmark):
    config = SensitivityConfig(runs=10, lookups_per_run=300)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    for row in result.rows:
        assert row["holds_cost_order"], f"cost ordering broke at n={row['n']}"
        assert row["holds_ft_order"], f"ft ordering broke at n={row['n']}"
        # Round-Robin's closed form is n-independent in its derivation;
        # the greedy adversary must land on it at every n.
        assert row["round_robin_ft"] == row["rr_ft_formula"]
