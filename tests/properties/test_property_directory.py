"""Property-based model test for the multi-key directory.

Random multi-key operation sequences against the directory must agree
with a plain in-memory dict model — for the strategies that guarantee
complete coverage (full replication, round-robin, hash, key
partitioning), the retrievable set per key equals the model exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry
from repro.core.service import PartialLookupDirectory

COMPLETE_STRATEGIES = [
    ("full_replication", {}),
    ("round_robin", {"y": 2}),
    ("hash", {"y": 2}),
    ("key_partitioning", {}),
]

_KEYS = ("alpha", "beta", "gamma")


@st.composite
def op_sequences(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["place", "add", "delete", "lookup"]),
                st.sampled_from(_KEYS),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=40,
        )
    )
    strategy_index = draw(st.integers(0, len(COMPLETE_STRATEGIES) - 1))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return ops, strategy_index, seed


@given(op_sequences())
@settings(max_examples=50, deadline=None)
def test_directory_matches_dict_model(script):
    ops, strategy_index, seed = script
    name, params = COMPLETE_STRATEGIES[strategy_index]
    directory = PartialLookupDirectory(
        Cluster(6, seed=seed), default_strategy=name, default_params=params
    )
    model = {}

    for action, key, value in ops:
        if action == "place":
            batch = [Entry(f"{key}-p{value}-{i}") for i in range(value % 7)]
            directory.place(key, batch)
            model[key] = {e.entry_id for e in batch}
        elif action == "add":
            entry = Entry(f"{key}-e{value}")
            directory.add(key, entry)
            model.setdefault(key, set()).add(entry.entry_id)
        elif action == "delete":
            entry = Entry(f"{key}-e{value}")
            if key in model:
                directory.delete(key, entry)
                model[key].discard(entry.entry_id)
        else:  # lookup
            if key in model:
                want = min(value, len(model[key]))
                result = directory.partial_lookup(key, want)
                assert result.success
                assert {e.entry_id for e in result.entries} <= model[key]

    for key, expected in model.items():
        retrievable = {e.entry_id for e in directory.lookup(key)}
        assert retrievable == expected, (name, key)
