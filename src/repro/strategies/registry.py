"""Name-based strategy construction.

Experiments and the directory facade refer to strategies by short
names (``"fixed"``, ``"hash"``, ...); the registry maps those names to
classes and builds instances from keyword parameters, so experiment
configuration stays declarative.
"""

from __future__ import annotations

from typing import Any, Dict, List, Type

from repro.core.exceptions import InvalidParameterError, UnknownStrategyError
from repro.cluster.cluster import Cluster
from repro.strategies.base import PlacementStrategy
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY

#: Registry of all built-in strategies, keyed by their short names.
#: Includes the traditional key-partitioning baseline (Figure 1,
#: center) alongside the five partial lookup schemes.
STRATEGY_REGISTRY: Dict[str, Type[PlacementStrategy]] = {
    FullReplication.name: FullReplication,
    FixedX.name: FixedX,
    RandomServerX.name: RandomServerX,
    RoundRobinY.name: RoundRobinY,
    HashY.name: HashY,
}


def _register_baselines() -> None:
    # Imported lazily: baselines depend on the strategy base class, so
    # a module-level import here would be circular.
    from repro.baselines.key_partitioning import KeyPartitioning

    STRATEGY_REGISTRY.setdefault(KeyPartitioning.name, KeyPartitioning)


_register_baselines()


def available_strategies() -> List[str]:
    """Names of every registered strategy, sorted."""
    return sorted(STRATEGY_REGISTRY)


def create_strategy(
    name: str, cluster: Cluster, key: str = "k", **params: Any
) -> PlacementStrategy:
    """Build the named strategy on ``cluster`` with ``params``.

    >>> from repro.cluster import Cluster
    >>> create_strategy("fixed", Cluster(4, seed=1), x=3).params()
    {'x': 3}

    Raises
    ------
    UnknownStrategyError
        If ``name`` is not registered.
    InvalidParameterError
        If ``params`` does not match the strategy's constructor.
    """
    try:
        strategy_class = STRATEGY_REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown strategy {name!r}; available: {', '.join(available_strategies())}"
        ) from None
    try:
        return strategy_class(cluster, key=key, **params)
    except TypeError as error:
        raise InvalidParameterError(
            f"bad parameters for strategy {name!r}: {error}"
        ) from None
