"""Error taxonomy for the partial lookup service reproduction.

All library errors derive from :class:`ReproError` so that callers can
catch everything the library raises with a single except clause while
still distinguishing failure modes that the paper treats differently
(a failed lookup is an expected, measurable event; a bad parameter is a
programming error).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidParameterError(ReproError, ValueError):
    """A strategy or experiment parameter is out of its valid range.

    Examples: ``x <= 0`` for Fixed-x, ``y > n`` for Round-Robin-y, a
    negative storage budget, or a target answer size below one.
    """


class LookupFailedError(ReproError):
    """A partial lookup could not retrieve ``t`` distinct entries.

    The paper counts these events (e.g. Figure 12's cushion-factor
    failure rate) rather than treating them as fatal, so most callers
    should use :meth:`repro.strategies.base.PlacementStrategy.partial_lookup`
    which reports failure in the :class:`~repro.core.result.LookupResult`
    instead of raising.  This exception exists for strict callers that
    opt into raising semantics.
    """

    def __init__(self, target: int, retrieved: int, message: str = "") -> None:
        detail = message or (
            f"partial lookup wanted {target} distinct entries "
            f"but only {retrieved} were retrievable"
        )
        super().__init__(detail)
        self.target = target
        self.retrieved = retrieved


class CoverageExceededError(LookupFailedError):
    """The target answer size exceeds the placement's maximum coverage.

    Section 4.3: coverage is an upper bound on the largest supported
    target answer size.  Fixed-x, for example, can never answer a
    lookup for more than ``x`` entries.
    """


class NoOperationalServerError(ReproError):
    """Every server in the cluster is failed; no request can proceed."""


class UnknownKeyError(ReproError, KeyError):
    """The directory facade was asked about a key it does not manage."""


class UnknownStrategyError(ReproError, KeyError):
    """A strategy name did not resolve in the strategy registry."""
