"""Exporters: JSONL trace round-trip, schema validation, counter dumps."""

import json

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.obs import (
    RunManifest,
    Tracer,
    format_counters,
    read_trace,
    validate_trace_records,
    write_counters,
    write_trace,
)


def make_tracer():
    tracer = Tracer(run_id="unit")
    now = [0.0]
    tracer.bind_clock(lambda: now[0])
    span = tracer.begin_span("lookup", key="k", target=3)
    tracer.event("contact", parent=span, server=1, outcome="delivered")
    now[0] = 2.0
    tracer.end_span(span, entries=3, messages=1)
    tracer.event("update", server=4, outcome="delivered")
    return tracer


def test_write_read_round_trip(tmp_path):
    tracer = make_tracer()
    path = write_trace(tracer, tmp_path / "trace.jsonl")
    header, records = read_trace(path)
    assert header["run_id"] == "unit"
    assert header["records"] == len(records) == len(tracer)
    # Record payloads survive byte-exact through JSON.
    assert records == [r.as_dict() for r in tracer.records]


def test_trace_preserves_clock_and_run_id(tmp_path):
    tracer = make_tracer()
    _, records = read_trace(write_trace(tracer, tmp_path / "t.jsonl"))
    span = next(r for r in records if r["kind"] == "span")
    assert (span["start"], span["end"]) == (0.0, 2.0)
    assert all(r["run_id"] == "unit" for r in records)


def test_header_embeds_manifest(tmp_path):
    manifest = RunManifest.for_config(
        "chaos", {"seed": 3, "events": 100}
    )
    path = write_trace(make_tracer(), tmp_path / "t.jsonl", manifest=manifest)
    header, _ = read_trace(path)
    assert header["manifest"]["run_id"] == "chaos-seed3"
    assert header["manifest"]["config"]["events"] == 100


def test_validate_flags_schema_violations():
    tracer = make_tracer()
    good = [r.as_dict() for r in tracer.records]
    assert validate_trace_records(good, run_id="unit") == []

    missing = [dict(good[0])]
    del missing[0]["seq"]
    assert any("missing" in p for p in validate_trace_records(missing))

    bad_kind = [dict(good[0], kind="blob")]
    assert any("kind" in p for p in validate_trace_records(bad_kind))

    stretched_event = [dict(r) for r in good]
    event = next(r for r in stretched_event if r["kind"] == "event")
    event["end"] = event["start"] + 1.0
    assert any(
        "extent" in p for p in validate_trace_records(stretched_event)
    )

    out_of_order = [dict(good[1]), dict(good[0])]
    assert any(
        "increasing" in p
        for p in validate_trace_records(out_of_order)
    )

    wrong_run = [dict(good[0], run_id="other")]
    assert any(
        "run_id" in p for p in validate_trace_records(wrong_run, run_id="unit")
    )

    orphan_event = [dict(good[0], span_id=999)]
    assert any(
        "names no span" in p for p in validate_trace_records(orphan_event)
    )


def test_read_rejects_tampered_files(tmp_path):
    tracer = make_tracer()
    path = write_trace(tracer, tmp_path / "t.jsonl")

    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["format_version"] = 99
    (tmp_path / "bad_version.jsonl").write_text(
        "\n".join([json.dumps(header)] + lines[1:]) + "\n"
    )
    with pytest.raises(InvalidParameterError):
        read_trace(tmp_path / "bad_version.jsonl")

    (tmp_path / "truncated.jsonl").write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(InvalidParameterError):
        read_trace(tmp_path / "truncated.jsonl")

    (tmp_path / "no_header.jsonl").write_text(lines[1] + "\n")
    with pytest.raises(InvalidParameterError):
        read_trace(tmp_path / "no_header.jsonl")


def test_counters_dump_is_sorted_and_diffable(tmp_path):
    snapshot = {"b.count": 2.0, "a.total": 1.5, "c": 3.0}
    text = format_counters(snapshot)
    assert text.splitlines() == ["a.total 1.5", "b.count 2", "c 3"]
    path = write_counters(snapshot, tmp_path / "counters.txt")
    assert path.read_text() == text + "\n"


def test_manifest_is_deterministic():
    config = {"seed": 5, "events": 10}
    first = RunManifest.for_config("chaos", config)
    second = RunManifest.for_config("chaos", config)
    assert first == second
    assert first.run_id == "chaos-seed5"
    assert first.as_dict() == second.as_dict()
