"""Universal hash functions mapping entries to servers.

Hash-y (Section 3.5) needs ``y`` hash functions ``f_1 .. f_y`` that map
an entry to a server id, drawn so that different functions behave
independently.  We use the classic Carter–Wegman construction
``f(v) = ((a * H(v) + b) mod p) mod n`` over a 64-bit prime field,
seeded so experiments replay deterministically.

``H`` is FNV-1a on the entry identifier rather than Python's built-in
``hash`` because the latter is salted per process for strings, which
would make placements unreproducible across runs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError

#: A 64-bit Mersenne-adjacent prime (2^61 - 1), comfortably larger than
#: any FNV output we reduce modulo it and itself prime, as the
#: Carter-Wegman construction requires.
_PRIME = (1 << 61) - 1

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(data: Union[str, bytes]) -> int:
    """64-bit FNV-1a hash of ``data``; deterministic across processes."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


class HashFunction:
    """One member ``f(v) = ((a·H(v) + b) mod p) mod n`` of the family."""

    __slots__ = ("_a", "_b", "_buckets")

    def __init__(self, a: int, b: int, buckets: int) -> None:
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        if not 1 <= a < _PRIME:
            raise InvalidParameterError("coefficient a must be in [1, p)")
        if not 0 <= b < _PRIME:
            raise InvalidParameterError("coefficient b must be in [0, p)")
        self._a = a
        self._b = b
        self._buckets = buckets

    def __call__(self, entry: Union[Entry, str]) -> int:
        key = entry.entry_id if isinstance(entry, Entry) else str(entry)
        digest = fnv1a_64(key) % _PRIME
        return ((self._a * digest + self._b) % _PRIME) % self._buckets

    @property
    def buckets(self) -> int:
        return self._buckets


class HashFamily:
    """A seeded family of independent entry → server hash functions.

    Parameters
    ----------
    count:
        Number of functions ``y``.
    buckets:
        Number of servers ``n``.
    seed:
        Seed for drawing the Carter-Wegman coefficients; the same seed
        yields the same functions, making Hash-y placements replayable.
    """

    def __init__(self, count: int, buckets: int, seed: Optional[int] = None) -> None:
        if count < 1:
            raise InvalidParameterError(f"family size must be >= 1, got {count}")
        rng = random.Random(seed)
        self._functions = [
            HashFunction(rng.randrange(1, _PRIME), rng.randrange(_PRIME), buckets)
            for _ in range(count)
        ]

    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self):
        return iter(self._functions)

    def __getitem__(self, index: int) -> HashFunction:
        return self._functions[index]

    def assign(self, entry: Union[Entry, str]) -> List[int]:
        """Server ids for ``entry`` under every function, duplicates kept.

        Hash-y stores an entry once per *distinct* server in this list;
        collisions between functions are exactly why Hash-y's expected
        storage is ``h·n·(1 − (1 − 1/n)^y)`` rather than ``h·y``
        (Table 1), so callers that need distinct targets should
        deduplicate with :meth:`assign_distinct`.
        """
        return [f(entry) for f in self._functions]

    def assign_distinct(self, entry: Union[Entry, str]) -> List[int]:
        """Distinct server ids for ``entry``, in first-seen order."""
        seen: List[int] = []
        for server_id in self.assign(entry):
            if server_id not in seen:
                seen.append(server_id)
        return seen
