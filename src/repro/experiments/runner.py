"""Shared experiment machinery: seeded repetition and run averaging.

The paper averages each data point over many independent runs (5000 in
most experiments), each run being a fresh placement and measurement
with new randomness.  ``seeded_runs`` hands out derived seeds so runs
are independent yet the whole experiment replays from one master seed;
``average_runs`` aggregates with a confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
)

from repro.analysis.confidence import ConfidenceInterval, mean_confidence_interval
from repro.core.exceptions import InvalidParameterError
from repro.simulation.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import RunExecutor
    from repro.obs.manifest import RunManifest


@dataclass
class ExperimentResult:
    """The output of one experiment: labelled rows plus metadata.

    ``rows`` is a list of dicts with identical keys — one per table
    row or figure data point.  ``meta`` records the configuration that
    produced them, so EXPERIMENTS.md entries are self-describing.
    """

    name: str
    headers: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def column(self, header: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row[header] for row in self.rows]

    def row_for(self, **match: Any) -> Dict[str, Any]:
        """The first row whose fields equal ``match``; raises if absent."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match!r}")

    def attach_manifest(self, manifest: "RunManifest") -> "ExperimentResult":
        """Record the run's identity under ``meta["manifest"]``.

        The CLI attaches the manifest *after* rendering the table, so
        the printed output of a run is unchanged by manifests while
        every ``--json`` artifact gains the full provenance record.
        Returns ``self`` for chaining.
        """
        self.meta["manifest"] = manifest.as_dict()
        return self

    @property
    def manifest(self) -> Dict[str, Any]:
        """The attached manifest dict ({} before attachment)."""
        return self.meta.get("manifest", {})


def seeded_runs(master_seed: int, runs: int) -> Iterator[int]:
    """``runs`` independent derived seeds from one master seed."""
    if runs < 1:
        raise InvalidParameterError(f"runs must be >= 1, got {runs}")
    streams = RngStreams(master_seed)
    for index in range(runs):
        yield streams.spawn(index).seed


def _collect_samples(
    run_once: Callable[[int], Any],
    master_seed: int,
    runs: int,
    executor: Optional["RunExecutor"],
) -> List[Any]:
    """``run_once`` applied to every derived seed, in run-index order.

    With an executor the calls may land on worker processes in any
    order; :meth:`RunExecutor.ordered_samples` restores run-index order
    before aggregation, so the sample list — and everything computed
    from it — is identical to the serial loop.
    """
    if executor is None:
        return [run_once(seed) for seed in seeded_runs(master_seed, runs)]
    return executor.ordered_samples(
        run_once, list(seeded_runs(master_seed, runs))
    )


def average_runs(
    run_once: Callable[[int], float],
    master_seed: int,
    runs: int,
    level: float = 0.95,
    executor: Optional["RunExecutor"] = None,
) -> ConfidenceInterval:
    """Average ``run_once(seed)`` over independent seeded runs.

    ``run_once`` receives a derived seed and returns one sample of the
    quantity being measured; the result carries the mean and CI.  With
    an ``executor`` the runs fan out over worker processes (``run_once``
    must then be picklable and rebuild all state from the seed), and
    the result is bit-identical to the serial path.
    """
    samples = _collect_samples(run_once, master_seed, runs, executor)
    return mean_confidence_interval(samples, level=level)


def average_runs_multi(
    run_once: Callable[[int], Dict[str, float]],
    master_seed: int,
    runs: int,
    level: float = 0.95,
    executor: Optional["RunExecutor"] = None,
) -> Dict[str, ConfidenceInterval]:
    """Like :func:`average_runs` for run functions returning many values.

    Useful when one expensive run yields samples for several series at
    once (e.g. Figure 4 measures every strategy on the same placement
    seeds), keeping the series comparison paired.
    """
    collected: Dict[str, List[float]] = {}
    for sample in _collect_samples(run_once, master_seed, runs, executor):
        for name, value in sample.items():
            collected.setdefault(name, []).append(value)
    return {
        name: mean_confidence_interval(values, level=level)
        for name, values in collected.items()
    }
