"""Unit tests for the Figure 3 classifier and rules-of-thumb recommender."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.strategies.selector import (
    SchemeRecommendation,
    WorkloadProfile,
    classify,
    recommend,
    traits,
)


class TestClassify:
    """The Figure 3 decision tree, leaf by leaf."""

    def test_full_replication_leaf(self):
        assert classify(True) == "full_replication"

    def test_fixed_leaf(self):
        assert classify(False, False, False) == "fixed"

    def test_random_server_leaf(self):
        assert classify(False, False, True) == "random_server"

    def test_round_robin_leaf(self):
        assert classify(False, True, False) == "round_robin"

    def test_hash_leaf(self):
        assert classify(False, True, True) == "hash"


class TestTraits:
    def test_zero_unfairness_schemes(self):
        # §4.5: only full replication and round-robin are exactly fair.
        fair = [n for n in (
            "full_replication", "fixed", "random_server", "round_robin", "hash"
        ) if traits(n).zero_unfairness]
        assert fair == ["full_replication", "round_robin"]

    def test_constant_storage_schemes(self):
        assert traits("fixed").constant_storage
        assert traits("random_server").constant_storage
        assert not traits("round_robin").constant_storage

    def test_broadcast_free_is_hash_only(self):
        assert traits("hash").broadcast_free_updates
        assert not traits("fixed").broadcast_free_updates

    def test_unknown_scheme(self):
        with pytest.raises(InvalidParameterError):
            traits("nope")


class TestProfileValidation:
    def test_target_exceeding_entries_rejected(self):
        with pytest.raises(InvalidParameterError):
            WorkloadProfile(entry_count=10, server_count=5, target_answer_size=11)

    def test_negative_update_rate_rejected(self):
        with pytest.raises(InvalidParameterError):
            WorkloadProfile(100, 10, 5, update_rate=-1)

    def test_target_ratio(self):
        profile = WorkloadProfile(200, 10, 20)
        assert profile.target_ratio == 0.1


class TestRecommend:
    def _top(self, **kwargs):
        return recommend(WorkloadProfile(**kwargs))[0].name

    def test_static_fair_complete_coverage_prefers_round_robin(self):
        # §4.5 + §4.3 + §6.3: the static showcase for Round-y.
        assert self._top(
            entry_count=100,
            server_count=10,
            target_answer_size=5,
            needs_complete_coverage=True,
            needs_fairness=True,
        ) == "round_robin"

    def test_high_churn_small_ratio_prefers_fixed(self):
        # §6.4: t/h < 1/n with updates — Fixed-x's regime.
        assert self._top(
            entry_count=500,
            server_count=10,
            target_answer_size=10,
            update_rate=5.0,
            storage_is_fixed=True,
        ) == "fixed"

    def test_high_churn_large_ratio_with_coverage_prefers_hash(self):
        # §6.3/§6.4: dynamic + complete coverage — Hash-y's regime.
        assert self._top(
            entry_count=100,
            server_count=10,
            target_answer_size=40,
            update_rate=5.0,
            needs_complete_coverage=True,
        ) == "hash"

    def test_full_replication_penalized_for_many_entries(self):
        ranked = recommend(
            WorkloadProfile(entry_count=1000, server_count=10, target_answer_size=3)
        )
        names = [r.name for r in ranked]
        assert names.index("full_replication") > 1

    def test_every_recommendation_has_reasons(self):
        for rec in recommend(WorkloadProfile(100, 10, 10, update_rate=1.0)):
            assert isinstance(rec, SchemeRecommendation)
            if rec.score != 0:
                assert rec.reasons

    def test_ranking_is_sorted(self):
        ranked = recommend(WorkloadProfile(100, 10, 10))
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic(self):
        profile = WorkloadProfile(100, 10, 10, update_rate=2.0)
        assert [r.name for r in recommend(profile)] == [
            r.name for r in recommend(profile)
        ]
