"""Persistence: experiment results and workload traces on disk.

Lets experiments be re-analyzed without re-running and workload traces
be shared between processes/machines — the paper's own methodology
("create update events with timestamps in advance and replay") applied
across process boundaries.
"""

from repro.io.results import (
    load_result,
    result_to_csv,
    save_result,
)
from repro.io.traces import load_trace, save_trace

__all__ = [
    "save_result",
    "load_result",
    "result_to_csv",
    "save_trace",
    "load_trace",
]
