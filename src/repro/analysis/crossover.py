"""Fixed-x vs Hash-y update-overhead crossover analysis (paper §6.4).

Under the processed-message cost model:

- Fixed-x: each update costs 1 (the initial server checks locally)
  plus ``n`` with probability ``x/h`` (the selective broadcast), so
  ``(1 + (x/h)·n)`` expected messages per update.
- Hash-y: each update costs ``1 + y`` (the initial server plus the
  ``y`` hash targets), barring hash collisions.

With Hash-y sized per target ratio — the optimal ``y = ⌈t·n/h⌉`` that
keeps its lookup cost near 1 — equating the two costs gives the
crossover condition ``(x/h)·n = ⌈t·n/h⌉``, whose ceiling makes the
cost curves step and cross multiple times as ``h`` grows (Figure 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.exceptions import InvalidParameterError


def optimal_hash_y(target: int, entry_count: int, server_count: int) -> int:
    """The smallest ``y`` giving ``>= target`` expected entries/server.

    Each Hash-y server stores about ``h·y/n`` entries, so
    ``y = ⌈t·n/h⌉`` is the paper's per-ratio choice ("the optimal is
    when the expected number of entries per server is at least the
    target answer size"), capped below at 1.
    """
    if min(target, entry_count, server_count) < 1:
        raise InvalidParameterError("target, entry_count, server_count must be >= 1")
    return max(1, math.ceil(target * server_count / entry_count))


def expected_update_cost_fixed(
    x: int, entry_count: int, server_count: int
) -> float:
    """Expected messages per update for Fixed-x: ``1 + (x/h)·n``.

    The broadcast probability is ``x/h``: a delete hits one of the
    tracked ``x`` of ``h`` entries with that probability, and each
    such delete induces one refilling add broadcast.
    """
    if min(x, entry_count, server_count) < 1:
        raise InvalidParameterError("x, entry_count, server_count must be >= 1")
    probability = min(1.0, x / entry_count)
    return 1.0 + probability * server_count


def expected_update_cost_hash(y: int) -> float:
    """Expected messages per update for Hash-y: ``1 + y`` (no collisions)."""
    if y < 1:
        raise InvalidParameterError("y must be >= 1")
    return 1.0 + y


@dataclass(frozen=True)
class CrossoverPoint:
    """An entry count where the cheaper scheme flips."""

    entry_count: int
    cheaper_before: str
    cheaper_after: str


def find_crossovers(
    x: int,
    target: int,
    server_count: int,
    entry_counts: List[int],
) -> List[CrossoverPoint]:
    """Scan ``entry_counts`` for Fixed-x / Hash-y cost flips.

    At each ``h`` the Hash scheme uses its per-ratio optimal ``y``;
    a crossover is recorded whenever the cheaper scheme differs from
    the previous ``h``'s.  (Figure 14's discussion: the ceiling in
    ``y = ⌈t·n/h⌉`` creates several crossover points.)
    """
    crossovers: List[CrossoverPoint] = []
    previous_winner = None
    for h in sorted(entry_counts):
        fixed_cost = expected_update_cost_fixed(x, h, server_count)
        hash_cost = expected_update_cost_hash(optimal_hash_y(target, h, server_count))
        winner = "fixed" if fixed_cost < hash_cost else "hash"
        if previous_winner is not None and winner != previous_winner:
            crossovers.append(
                CrossoverPoint(
                    entry_count=h,
                    cheaper_before=previous_winner,
                    cheaper_after=winner,
                )
            )
        previous_winner = winner
    return crossovers
