"""The storage backend interface: contract, alias, factory threading."""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.core.entry import Entry, make_entries
from repro.core.interning import EntryInterner
from repro.core.storage import EntryStore, MemoryBackend, StorageBackend


class TestInterface:
    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            StorageBackend()

    def test_entrystore_is_the_memory_backend(self):
        # A real alias, not a subclass: pre-split instance checks and
        # constructed objects must be indistinguishable.
        assert EntryStore is MemoryBackend

    def test_memory_backend_satisfies_the_contract(self):
        assert issubclass(MemoryBackend, StorageBackend)
        store = MemoryBackend(make_entries(3))
        assert isinstance(store, StorageBackend)

    def test_three_views_stay_in_lockstep(self):
        interner = EntryInterner()
        store = MemoryBackend(interner=interner)
        entries = make_entries(5)
        for entry in entries:
            store.add(entry)
        assert store.as_list() == entries
        assert store.indices() == [interner.index_of(e.entry_id) for e in entries]
        assert store.mask == sum(1 << i for i in store.indices())
        store.discard(entries[2])
        assert store.as_list() == entries[:2] + entries[3:]
        assert store.mask == sum(1 << i for i in store.indices())

    def test_default_restore_is_clear_then_add(self):
        store = MemoryBackend(make_entries(4))
        replacement = [Entry("x1"), Entry("x2")]
        store.restore(replacement)
        assert store.as_list() == replacement
        assert len(store) == 2
        assert store.mask.bit_count() == 2

    def test_restore_preserves_insertion_order_and_indices(self):
        interner = EntryInterner()
        a = MemoryBackend(make_entries(6), interner=interner)
        b = MemoryBackend(interner=interner)
        b.restore(a.as_list())
        assert b.as_list() == a.as_list()
        assert b.indices() == a.indices()
        assert b.mask == a.mask
        # and a restored store samples identically under an equal RNG
        assert b.sample(3, random.Random(7)) == a.sample(3, random.Random(7))


class _RecordingBackend(MemoryBackend):
    """A backend that records construction, to observe factory calls."""

    __slots__ = ("created_for",)

    def __init__(self, key, server_id, interner):
        self.created_for = (key, server_id)
        super().__init__(interner=interner)


class TestStoreFactory:
    def test_server_uses_the_factory_per_key(self):
        interners = {}
        server = Server(
            3,
            interners=interners,
            store_factory=lambda k, s, i: _RecordingBackend(k, s, i),
        )
        store = server.store("hash")
        assert isinstance(store, _RecordingBackend)
        assert store.created_for == ("hash", 3)
        assert store is server.store("hash")  # one store per key, cached

    def test_factory_stores_share_the_cluster_interner(self):
        cluster = Cluster(
            4, seed=1, store_factory=lambda k, s, i: _RecordingBackend(k, s, i)
        )
        for server in cluster.servers:
            assert server.store("k").interner is cluster.interner("k")

    def test_default_factory_is_the_memory_backend(self):
        cluster = Cluster(2, seed=1)
        store = cluster.server(0).store("k")
        assert type(store) is MemoryBackend

    def test_cluster_interner_is_lazy_and_stable(self):
        cluster = Cluster(2, seed=1)
        interner = cluster.interner("fresh-key")
        assert cluster.interner("fresh-key") is interner
        assert cluster.server(1).store("fresh-key").interner is interner
