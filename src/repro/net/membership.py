"""The asyncio driver for the shard membership plane.

:class:`MembershipPump` is to :class:`~repro.protocol.membership.
MembershipProtocol` what the asyncio client is to the lookup session:
a thin pump that feeds the sans-IO machine real events and enacts its
effects over real sockets.  All policy — who is alive, when silence
becomes suspicion, how rejoin probation works — lives in the machine;
this module only

- ticks the machine with the injected clock (twice per heartbeat
  interval, so due heartbeats and timeout edges are observed with
  bounded lag),
- enacts :class:`~repro.protocol.effects.SendHeartbeat` by one
  ``heartbeat`` envelope round-trip per peer on a *fresh* connection
  (heartbeats are tiny and rare; a connection per beat avoids framing
  entanglement with the data path and makes peer death indistinguishable
  from peer unreachability, which is exactly the semantics we want),
- feeds the peer's reply heartbeat back in as
  :class:`~repro.protocol.events.HeartbeatSeen` — the exchange is
  symmetric, so one round-trip refreshes the failure detectors on
  both ends,
- forwards :class:`~repro.protocol.effects.PeerTransition` effects to
  the optional :class:`~repro.obs.membership.MembershipObserver` and
  refreshes its per-state gauges.

The pump also serves as the :class:`~repro.net.service.LookupService`'s
membership attachment: the service's ``heartbeat`` envelope op calls
:meth:`on_wire_heartbeat` (absorb, reply with our own heartbeat) and
its ``membership`` op calls :meth:`view_wire`.  Both are synchronous
pure-state calls, so envelope handling stays socket-free and testable.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.cluster.messages import Heartbeat
from repro.net.codec import decode_heartbeat, heartbeat_envelope, read_frame, write_frame
from repro.obs.membership import MembershipObserver
from repro.protocol.effects import Effect, PeerTransition, SendHeartbeat
from repro.protocol.events import ClockTick, HeartbeatSeen
from repro.protocol.membership import MembershipConfig, MembershipProtocol


class MembershipPump:
    """Drive one shard's failure detector over real sockets.

    Parameters
    ----------
    self_name:
        This shard's name (``service.shard_name``).
    peers:
        ``name -> (host, port)`` for the *other* shards.
    config:
        Failure-detection timing; defaults per
        :class:`~repro.protocol.membership.MembershipConfig`.
    incarnation:
        This boot's incarnation; must exceed any earlier boot of the
        same shard (the serve CLI passes wall-clock seconds).
    observer:
        Optional :class:`~repro.obs.membership.MembershipObserver`.
    clock:
        Injected monotonic clock; tests pass a fake and never sleep.
    rng:
        Optional randomness for heartbeat fan-out order.
    timeout:
        Per-heartbeat round-trip timeout.  Kept well under
        ``dead_after`` so a black-holed peer cannot stall detection.
    """

    def __init__(
        self,
        self_name: str,
        peers: Mapping[str, Tuple[str, int]],
        *,
        config: Optional[MembershipConfig] = None,
        incarnation: int = 0,
        observer: Optional[MembershipObserver] = None,
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
        timeout: float = 1.0,
    ) -> None:
        self._clock = clock
        self._addresses = dict(peers)
        self.observer = observer
        self.timeout = timeout
        self.protocol = MembershipProtocol(
            self_name,
            list(peers),
            config,
            incarnation=incarnation,
            now=clock(),
            rng=rng,
        )
        self._task: Optional[asyncio.Task] = None

    # -- the synchronous face (called from envelope dispatch and tests) ------

    def local_heartbeat(self) -> Heartbeat:
        """This shard's current beacon, view included."""
        return Heartbeat(
            sender=self.protocol.self_name,
            incarnation=self.protocol.incarnation,
            view=self.protocol.wire_view(),
        )

    def on_wire_heartbeat(self, heartbeat: Heartbeat) -> Heartbeat:
        """Absorb a peer's heartbeat; returns ours to reply with."""
        effects = self.protocol.on_event(
            HeartbeatSeen(
                heartbeat.sender,
                heartbeat.incarnation,
                heartbeat.view,
                now=self._clock(),
            )
        )
        self._enact_transitions(effects)
        return self.local_heartbeat()

    def view_wire(self) -> Dict[str, object]:
        """The ``membership`` op payload."""
        return {
            "name": self.protocol.self_name,
            "incarnation": self.protocol.incarnation,
            "view": [list(row) for row in self.protocol.wire_view()],
        }

    def tick(self, now: Optional[float] = None) -> List[str]:
        """Feed one clock tick; returns peers owed a heartbeat.

        Transitions are observed as a side effect.  Split from the
        socket work so tests (and the run loop) can drive detection
        without awaiting anything.
        """
        effects = self.protocol.on_event(
            ClockTick(self._clock() if now is None else now)
        )
        due = [e.peer for e in effects if isinstance(e, SendHeartbeat)]
        self._enact_transitions(effects)
        return due

    def _enact_transitions(self, effects: Iterable[Effect]) -> None:
        saw_transition = False
        for effect in effects:
            if isinstance(effect, PeerTransition):
                saw_transition = True
                if self.observer is not None:
                    self.observer.transition(effect)
        if saw_transition and self.observer is not None:
            self.observer.publish_counts(self.protocol.counts())

    # -- the socket side ------------------------------------------------------

    async def exchange_heartbeat(self, peer: str) -> bool:
        """One heartbeat round-trip with ``peer``; True if it answered.

        Failure (refused, timed out, malformed) is not an error — it
        is the *absence of evidence* the failure detector runs on, so
        it is swallowed and silence does the talking.
        """
        address = self._addresses.get(peer)
        if address is None:
            return False
        try:
            return await asyncio.wait_for(
                self._exchange(address), self.timeout
            )
        except (asyncio.TimeoutError, ConnectionError, OSError, ValueError):
            return False

    async def _exchange(self, address: Tuple[str, int]) -> bool:
        reader, writer = await asyncio.open_connection(*address)
        try:
            await write_frame(writer, heartbeat_envelope(self.local_heartbeat()))
            reply = await read_frame(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if reply is None or not reply.get("ok"):
            return False
        theirs = decode_heartbeat(reply["value"])
        effects = self.protocol.on_event(
            HeartbeatSeen(
                theirs.sender, theirs.incarnation, theirs.view, now=self._clock()
            )
        )
        self._enact_transitions(effects)
        return True

    async def run(self) -> None:
        """Tick forever: detection plus heartbeat fan-out."""
        interval = self.protocol.config.heartbeat_interval / 2
        while True:
            due = self.tick()
            if due:
                await asyncio.gather(
                    *(self.exchange_heartbeat(peer) for peer in due)
                )
            await asyncio.sleep(interval)

    def start(self) -> None:
        """Begin pumping on the running event loop."""
        if self._task is None:
            self._task = asyncio.ensure_future(self.run())

    async def stop(self) -> None:
        task, self._task = self._task, None
        if task is None:
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass


__all__ = ["MembershipPump"]
