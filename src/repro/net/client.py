"""The asyncio lookup client: real timeouts driving the sans-IO session.

:class:`AsyncLookupClient` is the network twin of the simulated
:class:`~repro.cluster.client.Client`.  Both pump the same
:class:`~repro.protocol.lookup.LookupSession`; the differences are
purely in how effects are enacted:

- ``SendRequest`` becomes a framed envelope over the socket, awaited
  with a real timeout.  A timed-out request is reported to the session
  as ``ContactFailed(dropped=True)`` — from the protocol's viewpoint a
  timeout *is* a lost message, worth retrying — while an
  ``"unavailable"`` error reply (the addressed server is failed) is
  ``ContactFailed(dropped=False)``, matching the simulated transport's
  :data:`~repro.cluster.network.DROPPED` / UNDELIVERED distinction.
- ``Sleep`` becomes a real ``asyncio.sleep``, so a
  :class:`~repro.cluster.client.RetryPolicy`'s backoff schedule is
  enacted in wall-clock time instead of merely accounted.

After a timeout the connection is re-established: the stale reply may
still arrive on the old stream, and reconnecting is the simplest way
to keep request/reply framing in lockstep (the single-request wire
path carries no request ids — one in-flight request per connection;
only ``batch`` envelopes correlate by id).

Typed surface: :meth:`~AsyncLookupClient.lookup` and
:meth:`~AsyncLookupClient.lookup_many` return the frozen
:class:`repro.net.results.LookupResult` / ``LookupReport``;
``ping``/``info``/``verify``/``capabilities``/``membership``/``batch``
cover the control ops.  Raw envelopes are a private escape hatch
(:meth:`~AsyncLookupClient._request`); the old public ``request()``
shim is gone — calling it raises :class:`AttributeError` with a
migration hint.

Codec: ``codec="json"`` (the default) speaks exactly the legacy wire
— no hello, byte-identical frames.  ``codec="binary"`` or ``"auto"``
negotiates per connection via the ``hello`` op, falling back to JSON
(and, for batches, to sequential lookups) when the peer predates the
negotiation.

Determinism: the session's RNG is supplied by the caller, so a seeded
run contacts servers in a reproducible order even over real sockets;
only timing (and therefore timeout-induced retries) is environmental.
``lookup_many`` draws every session's contact order up front, in
request order, so a seeded batch is as reproducible as a seeded loop
of single lookups.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.client import RetryPolicy
from repro.net.codec import (
    CODEC_JSON,
    SUPPORTED_CODECS,
    decode_value,
    encode_frame_fragments,
    encode_message,
    pack_send_envelope,
    read_frame,
    write_frames,
)
from repro.cluster.messages import Message
from repro.net.results import LookupReport, LookupResult
from repro.protocol.effects import Complete, SendRequest, Sleep
from repro.protocol.events import SLEPT, ContactFailed, Event, ReplyReceived
from repro.protocol.lookup import LookupSession, random_order, stride_order


class ServiceError(ConnectionError):
    """The service rejected a request or broke the envelope protocol."""


@dataclass(frozen=True)
class SchemeInfo:
    """One hosted scheme, as reported by the ``info`` op."""

    name: str
    params: dict[str, Any]
    order: Any  # "random" | {"stride": y}
    max_servers: Optional[int]


@dataclass(frozen=True)
class ServiceInfo:
    """Topology summary from the ``info`` op."""

    servers: int
    entries: int
    seed: int
    schemes: dict[str, SchemeInfo]


class _Conn:
    """One pooled connection: streams plus negotiated wire state.

    ``codec`` is what *we send* on this connection (the peer's replies
    are sniffed per frame regardless).  ``caps`` is the peer's hello
    answer — ``None`` until negotiation ran, ``{}`` for a legacy peer
    that rejected the hello.
    """

    __slots__ = ("reader", "writer", "codec", "caps", "lock")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.codec: str = CODEC_JSON
        self.caps: Optional[dict[str, Any]] = None
        self.lock = asyncio.Lock()


class AsyncLookupClient:
    """An async client for one :class:`~repro.net.service.LookupService`.

    Parameters
    ----------
    host, port:
        The service's listening address.
    rng:
        Injected randomness for contact orders and the session's
        draws; defaults to a fresh unseeded generator.
    timeout:
        Per-request reply timeout in seconds.  Timeouts surface as
        dropped contacts (retryable under a retry policy), not
        exceptions.
    retry_policy:
        Optional :class:`~repro.cluster.client.RetryPolicy` applied to
        every lookup; backoffs are real sleeps.
    codec:
        ``"json"`` (default: legacy wire, no negotiation),
        ``"binary"`` or ``"auto"`` (negotiate per connection, JSON
        fallback).  ``"auto"`` and ``"binary"`` behave identically
        today — both prefer binary and degrade gracefully.
    pool_size:
        Connections ``lookup_many`` may fan batches over.  Control
        ops and single lookups always use the first connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        rng: Optional[random.Random] = None,
        timeout: float = 5.0,
        retry_policy: Optional[RetryPolicy] = None,
        codec: str = "json",
        pool_size: int = 1,
    ) -> None:
        if codec not in ("json", "binary", "auto"):
            raise ValueError(f"codec must be json, binary, or auto: {codec!r}")
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_policy = retry_policy
        self.codec = codec
        self.pool_size = pool_size
        self._rng = rng if rng is not None else random.Random()
        self._pool: Dict[int, _Conn] = {}
        self._info: Optional[ServiceInfo] = None

    # -- connection management ----------------------------------------------

    @property
    def _reader(self) -> Optional[asyncio.StreamReader]:
        conn = self._pool.get(0)
        return None if conn is None else conn.reader

    @property
    def _writer(self) -> Optional[asyncio.StreamWriter]:
        conn = self._pool.get(0)
        return None if conn is None else conn.writer

    async def connect(self) -> None:
        await self._conn(0)

    async def _conn(self, index: int) -> _Conn:
        conn = self._pool.get(index)
        if conn is None:
            reader, writer = await asyncio.open_connection(self.host, self.port)
            conn = _Conn(reader, writer)
            self._pool[index] = conn
        return conn

    async def close(self) -> None:
        pool, self._pool = self._pool, {}
        for conn in pool.values():
            conn.writer.close()
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncLookupClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def _drop_conn(self, index: int) -> None:
        conn = self._pool.pop(index, None)
        if conn is None:
            return
        conn.writer.close()
        try:
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _reconnect(self, index: int = 0) -> None:
        await self._drop_conn(index)
        await self._conn(index)

    # -- raw envelope round-trips --------------------------------------------

    def __getattr__(self, name: str) -> Any:
        if name == "request":
            raise AttributeError(
                "AsyncLookupClient.request() was removed; use the typed "
                "methods (ping/info/verify/capabilities/membership/batch/"
                "lookup/lookup_many) or the private _request() escape hatch"
            )
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    async def _request(self, envelope: dict[str, Any]) -> dict[str, Any]:
        """One envelope round-trip on the first connection, no timeout.

        Raises :class:`ServiceError` if the connection drops before
        the reply arrives.  Used for the control ops; data-path sends
        go through the timeout-aware path inside :meth:`lookup`.
        """
        conn = await self._conn(0)
        if self.codec != "json" and conn.caps is None and envelope.get("op") != "hello":
            await self._negotiate(conn)
        return await self._request_on(conn, envelope)

    async def _request_on(self, conn: _Conn, envelope: dict[str, Any]) -> dict[str, Any]:
        try:
            async with conn.lock:
                # Vectorized sender: the binary codec emits a fragment
                # list (prepacked sub-envelopes spliced by reference)
                # through one writelines(); JSON stays byte-identical.
                await write_frames(
                    conn.writer, (encode_frame_fragments(envelope, conn.codec),)
                )
                reply = await read_frame(conn.reader)
        except (ConnectionError, OSError):
            # A cached connection may be stale (peer restarted); drop
            # it so the next request dials fresh instead of failing
            # against the same dead stream forever.
            await self.close()
            raise
        if reply is None:
            await self.close()
            raise ServiceError("service closed the connection mid-request")
        return reply

    async def _negotiate(self, conn: _Conn) -> None:
        """Run the hello exchange on ``conn`` (idempotent).

        A peer that answers ``bad-request`` predates negotiation:
        record empty capabilities and keep speaking JSON — the
        mandatory fallback — so old servers keep working unchanged.
        """
        if conn.caps is not None:
            return
        offered = (
            list(SUPPORTED_CODECS) if self.codec in ("binary", "auto") else ["json"]
        )
        reply = await self._request_on(
            conn, {"op": "hello", "codecs": offered, "batch": True}
        )
        if reply.get("ok"):
            value = reply.get("value") or {}
            conn.caps = dict(value)
            chosen = value.get("codec")
            if chosen in offered and chosen in SUPPORTED_CODECS:
                conn.codec = chosen
        elif reply.get("error") == "bad-request":
            conn.caps = {}
        else:
            raise ServiceError(
                f"hello failed: {reply.get('error')}: {reply.get('detail')}"
            )

    # -- typed control ops ----------------------------------------------------

    async def ping(self) -> bool:
        reply = await self._request({"op": "ping"})
        return bool(reply.get("ok"))

    async def capabilities(self) -> dict[str, Any]:
        """The service's live capability block (codecs, cache, workers).

        Fetched fresh on every call — the ``cache`` sub-dict carries
        live hit/miss counters and the ``workers`` sub-dict identifies
        which fleet process answered this connection, both of which go
        stale the moment they are read.
        """
        reply = await self._request({"op": "info"})
        if not reply.get("ok"):
            raise ServiceError(f"info failed: {reply.get('detail')}")
        return dict(reply["value"].get("capabilities") or {})

    async def info(self, refresh: bool = False) -> ServiceInfo:
        """Fetch (and cache) the service topology."""
        if self._info is not None and not refresh:
            return self._info
        reply = await self._request({"op": "info"})
        if not reply.get("ok"):
            raise ServiceError(f"info failed: {reply.get('detail')}")
        value = reply["value"]
        schemes = {
            name: SchemeInfo(
                name=name,
                params=dict(spec["params"]),
                order=spec["profile"]["order"],
                max_servers=spec["profile"]["max_servers"],
            )
            for name, spec in value["schemes"].items()
        }
        self._info = ServiceInfo(
            servers=value["servers"],
            entries=value["entries"],
            seed=value["seed"],
            schemes=schemes,
        )
        return self._info

    async def verify(self, scheme: str) -> dict[str, Any]:
        """The service's coverage/storage invariant report for ``scheme``."""
        reply = await self._request({"op": "verify", "key": scheme})
        if not reply.get("ok"):
            raise ServiceError(f"verify failed: {reply.get('detail')}")
        return reply["value"]

    async def membership(self) -> dict[str, Any]:
        """The peer's membership view (``membership`` op)."""
        reply = await self._request({"op": "membership"})
        if not reply.get("ok"):
            raise ServiceError(f"membership failed: {reply.get('detail')}")
        return reply["value"]

    async def batch(
        self, envelopes: Sequence[dict[str, Any]]
    ) -> List[dict[str, Any]]:
        """Submit many envelopes in one ``batch`` frame; replies in order.

        The typed face of pipelining for callers composing their own
        envelopes.  Requires a batch-capable peer (negotiated via
        ``hello``); raises :class:`ServiceError` otherwise.
        """
        conn = await self._conn(0)
        await self._negotiate(conn)
        if not (conn.caps or {}).get("batch"):
            raise ServiceError("peer does not support batch envelopes")
        reply = await self._request_on(
            conn, {"op": "batch", "requests": list(envelopes)}
        )
        if not reply.get("ok"):
            raise ServiceError(
                f"batch failed: {reply.get('error')}: {reply.get('detail')}"
            )
        return reply["value"]

    # -- the lookup driver ----------------------------------------------------

    def _contact_order(self, scheme: SchemeInfo, servers: int) -> List[int]:
        """Materialize the scheme's declared contact order locally.

        Mirrors ``Client._resolve_order``: a stride draws its start
        first, then builds the walk, so seeded async and simulated
        clients agree on draw order.
        """
        order = scheme.order
        if isinstance(order, dict) and "stride" in order:
            start = self._rng.randrange(servers)
            return stride_order(servers, start, order["stride"], self._rng)
        return random_order(servers, self._rng)

    async def _scheme_spec(self, scheme: str) -> tuple[SchemeInfo, int]:
        info = await self.info()
        spec = info.schemes.get(scheme)
        if spec is None:
            raise ServiceError(
                f"service does not host scheme {scheme!r} "
                f"(hosts: {', '.join(sorted(info.schemes))})"
            )
        return spec, info.servers

    def _session(
        self,
        scheme: str,
        target: int,
        spec: SchemeInfo,
        servers: int,
        retry: Optional[RetryPolicy],
    ) -> LookupSession:
        return LookupSession(
            scheme,
            target,
            self._contact_order(spec, servers),
            max_servers=spec.max_servers,
            retry_policy=self.retry_policy if retry is None else retry,
            rng=self._rng,
        )

    async def lookup(
        self,
        scheme: str,
        target: int,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> LookupResult:
        """One partial lookup for ``target`` entries under ``scheme``.

        Contacts real sockets but never raises on shortfall — like the
        simulated client, a short answer comes back as a labelled
        degraded :class:`~repro.net.results.LookupResult`.
        """
        spec, servers = await self._scheme_spec(scheme)
        session = self._session(scheme, target, spec, servers, retry)
        effects = session.start()
        while True:
            event: Optional[Event] = None
            for effect in effects:
                if isinstance(effect, SendRequest):
                    event = await self._contact(effect)
                elif isinstance(effect, Sleep):
                    await asyncio.sleep(effect.delay)
                    event = SLEPT
                elif isinstance(effect, Complete):
                    conn = self._pool.get(0)
                    return LookupResult.from_core(
                        scheme,
                        effect.result,
                        codec=conn.codec if conn is not None else CODEC_JSON,
                    )
            effects = session.on_event(event)

    async def _contact(self, effect: SendRequest) -> Event:
        """Enact one ``SendRequest`` over the socket."""
        return await self.contact_server(
            effect.server_id, effect.key, effect.request
        )

    async def contact_server(
        self,
        server: int,
        key: str,
        request: Any,
        *,
        event_server_id: Optional[int] = None,
    ) -> Event:
        """One timeout-bounded ``send`` to ``server``, as a session event.

        The public face of the data path, also pumped by the
        :class:`~repro.net.router.ShardRouter` whose sessions span
        several shards: ``event_server_id`` lets the caller stamp the
        returned event with the *session's* contact index when it
        differs from the wire-level server id.
        """
        sid = server if event_server_id is None else event_server_id
        envelope = {
            "op": "send",
            "server": server,
            "key": key,
            "message": encode_message(request),
        }
        try:
            reply = await asyncio.wait_for(self._request(envelope), self.timeout)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            # A late reply on the old stream would desync framing;
            # start the next request on a fresh connection.
            try:
                await self._reconnect()
            except OSError:
                await self.close()
            return ContactFailed(sid, dropped=True)
        return self._reply_event(sid, reply)

    def _reply_event(
        self, sid: int, reply: dict[str, Any], *, decoded: bool = False
    ) -> Event:
        """Map a ``send`` reply envelope to a session event.

        ``decoded=True`` promises the reply came off a binary frame,
        whose unpacker already yields live entries/messages — the
        JSON-tag decode pass is skipped entirely.
        """
        if reply.get("ok"):
            value = reply["value"]
            if not decoded and not isinstance(value, Message):
                value = decode_value(value)
            return ReplyReceived(sid, value)
        error = reply.get("error")
        if error == "unavailable":
            return ContactFailed(sid, dropped=False)
        if error == "dropped":
            return ContactFailed(sid, dropped=True)
        raise ServiceError(f"lookup send failed: {error}: {reply.get('detail')}")

    # -- batched lookups -------------------------------------------------------

    async def lookup_many(
        self,
        scheme: str,
        targets: Sequence[int],
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> LookupReport:
        """Many partial lookups under ``scheme``, pipelined per round.

        Every live session's next ``send`` is packed into one
        ``batch`` frame per pooled connection and the replies are
        correlated back by request id — so a round costs one round
        trip per connection regardless of how many lookups ride it,
        and a stalled or reordering peer cannot mismatch replies.
        Results come back in request order inside a
        :class:`~repro.net.results.LookupReport`.

        Against a peer without batch support (pre-negotiation server)
        this transparently degrades to sequential single lookups.
        """
        spec, servers = await self._scheme_spec(scheme)
        conn = await self._conn(0)
        await self._negotiate(conn)
        if not (conn.caps or {}).get("batch"):
            results = [
                await self.lookup(scheme, target, retry=retry) for target in targets
            ]
            return LookupReport(results=tuple(results))
        max_batch = int((conn.caps or {}).get("max_batch") or 1024)

        sessions = [
            self._session(scheme, target, spec, servers, retry)
            for target in targets
        ]
        results: List[Optional[LookupResult]] = [None] * len(sessions)
        # Per-session pending state: "send" effects waiting for this
        # round's batch, "sleep" delays waiting for the shared timer.
        sends: Dict[int, SendRequest] = {}
        sleeps: Dict[int, float] = {}
        next_id = 0

        def absorb(index: int, effects: Sequence[Any]) -> None:
            for effect in effects:
                if isinstance(effect, SendRequest):
                    sends[index] = effect
                elif isinstance(effect, Sleep):
                    sleeps[index] = effect.delay
                elif isinstance(effect, Complete):
                    results[index] = LookupResult.from_core(
                        scheme, effect.result, codec=conn.codec
                    )

        for index, session in enumerate(sessions):
            absorb(index, session.start())

        while sends or sleeps:
            if sends:
                # Spread this round's sends across the pool, then run
                # the per-connection batches concurrently.
                per_conn: Dict[int, List[tuple[int, int, SendRequest]]] = {}
                for index, effect in sends.items():
                    request_id = next_id
                    next_id += 1
                    per_conn.setdefault(index % self.pool_size, []).append(
                        (request_id, index, effect)
                    )
                sends = {}
                rounds = await asyncio.gather(
                    *(
                        self._batch_round(conn_index, chunk, scheme, max_batch)
                        for conn_index, chunk in per_conn.items()
                    )
                )
                for events in rounds:
                    for index, event in events:
                        absorb(index, sessions[index].on_event(event))
            else:
                # Nothing on the wire: let the nearest backoff expire,
                # crediting the wait to every other sleeper.
                delay = min(sleeps.values())
                await asyncio.sleep(delay)
                due = [i for i, left in sleeps.items() if left <= delay]
                for index in sleeps:
                    sleeps[index] -= delay
                for index in due:
                    del sleeps[index]
                    absorb(index, sessions[index].on_event(SLEPT))

        return LookupReport(results=tuple(results))  # type: ignore[arg-type]

    async def _batch_round(
        self,
        conn_index: int,
        chunk: List[tuple[int, int, SendRequest]],
        scheme: str,
        max_batch: int,
    ) -> List[tuple[int, Event]]:
        """One batch frame round trip on one pooled connection.

        Returns ``(session_index, event)`` pairs.  A timeout or broken
        connection fails every ride-along send as dropped (the exact
        semantics one timed-out single request has) and redials.
        """
        events: List[tuple[int, Event]] = []
        for start in range(0, len(chunk), max_batch):
            window = chunk[start : start + max_batch]
            by_id = {
                request_id: (index, effect)
                for request_id, index, effect in window
            }
            try:
                conn = await self._conn(conn_index)
                if conn_index != 0:
                    await self._negotiate(conn)
                # A binary connection packs live Message objects
                # natively — skip the JSON tagging round trip.
                binary = conn.codec != CODEC_JSON
                if binary:
                    # Prepacked sub-envelopes: the generic encoding walk
                    # runs once per distinct request message, not once
                    # per (message, server) pair.
                    requests: List[Any] = [
                        pack_send_envelope(
                            request_id, effect.server_id, effect.key, effect.request
                        )
                        for request_id, _, effect in window
                    ]
                else:
                    requests = [
                        {
                            "op": "send",
                            "id": request_id,
                            "server": effect.server_id,
                            "key": effect.key,
                            "message": encode_message(effect.request),
                        }
                        for request_id, _, effect in window
                    ]
                reply = await asyncio.wait_for(
                    self._request_on(conn, {"op": "batch", "requests": requests}),
                    self.timeout,
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                try:
                    await self._reconnect(conn_index)
                except OSError:
                    await self._drop_conn(conn_index)
                for request_id, index, effect in window:
                    events.append(
                        (index, ContactFailed(effect.server_id, dropped=True))
                    )
                continue
            if not reply.get("ok"):
                raise ServiceError(
                    f"batch failed: {reply.get('error')}: {reply.get('detail')}"
                )
            answered = set()
            for sub in reply["value"]:
                request_id = sub.get("id") if isinstance(sub, dict) else None
                matched = by_id.get(request_id)
                if matched is None or request_id in answered:
                    continue
                answered.add(request_id)
                index, effect = matched
                events.append(
                    (
                        index,
                        self._reply_event(effect.server_id, sub, decoded=binary),
                    )
                )
            for request_id, index, effect in window:
                if request_id not in answered:
                    events.append(
                        (index, ContactFailed(effect.server_id, dropped=True))
                    )
        return events


__all__ = [
    "AsyncLookupClient",
    "SchemeInfo",
    "ServiceError",
    "ServiceInfo",
]
