"""Benchmark: targeted vs naive placement repair after failures.

Hash-y's structure lets repair touch exactly the damaged copies; the
naive alternative re-places the whole key.  This bench damages a
placement with degraded-mode churn and compares the repair cost — the
operational payoff of a scheme whose placement is *computable*.
"""

from _bench_utils import render_and_print

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.experiments.runner import ExperimentResult
from repro.maintenance.repair import repair
from repro.maintenance.verify import verify_placement
from repro.strategies.hashing import HashY


def _damaged_strategy(entry_count: int, seed: int) -> HashY:
    strategy = HashY(Cluster(10, seed=seed), y=2)
    strategy.place(make_entries(entry_count))
    cluster = strategy.cluster
    cluster.fail(0)
    cluster.fail(4)
    for i in range(8):
        strategy.add(Entry(f"n{i}"))
    for i in range(1, 9):
        strategy.delete(Entry(f"v{i}"))
    cluster.recover_all()
    return strategy


def _run_comparison() -> ExperimentResult:
    result = ExperimentResult(
        name="Repair after degraded churn: targeted vs naive (Hash-2)",
        headers=["entry_count", "violations", "targeted_msgs", "naive_msgs",
                 "ratio"],
    )
    for entry_count in (50, 100, 200, 400):
        damaged = _damaged_strategy(entry_count, seed=entry_count)
        violations = len(verify_placement(damaged))
        targeted = repair(damaged, mode="targeted")
        assert targeted.clean

        damaged2 = _damaged_strategy(entry_count, seed=entry_count)
        naive = repair(damaged2, mode="naive")
        assert naive.clean

        result.rows.append(
            {
                "entry_count": entry_count,
                "violations": violations,
                "targeted_msgs": targeted.messages,
                "naive_msgs": naive.messages,
                "ratio": round(naive.messages / max(1, targeted.messages), 1),
            }
        )
    return result


def test_bench_repair(benchmark):
    result = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    render_and_print(result)
    for row in result.rows:
        # Targeted repair scales with the damage (bounded by the
        # degraded-churn volume), naive with the key size.
        assert row["targeted_msgs"] < row["naive_msgs"]
    ratios = result.column("ratio")
    # The gap widens with entry count (naive scales with h, targeted
    # with the damage); exact per-point ordering wobbles with the
    # random damage volume, so compare the ends.
    assert ratios[-1] > 2 * ratios[0]
    assert ratios[0] >= 5
