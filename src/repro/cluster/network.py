"""Message transport with the paper's processed-message cost model.

Section 6.4 defines update overhead as "the total number of messages
received and processed by all the servers": a broadcast costs ``n``
(every server processes it) and a point-to-point message costs 1.  The
:class:`Network` enforces exactly that accounting, keeping separate
counters for update and lookup traffic and per message type, so every
overhead number in the reproduction comes from one place.

Delivery to a failed server is suppressed and *not* counted as
processed (the server never received it); the send is recorded in the
``undelivered`` counter so clients can observe the failure and retry,
as the paper's lookup protocol requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.cluster.messages import Message, MessageCategory
from repro.cluster.server import Server

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.faults import FaultInjector, FaultPlan
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


class _Undelivered:
    """Sentinel reply for deliveries that never reached a handler.

    Two singletons exist: :data:`UNDELIVERED` (the destination server
    is failed — retrying the same server cannot help until it
    recovers) and :data:`DROPPED` (the message was lost in transit by
    an installed fault plan — the server is presumably alive, so
    re-contacting it is worthwhile).  Use :func:`is_undelivered` to
    test for either.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.reason

    def __bool__(self) -> bool:
        return False


UNDELIVERED = _Undelivered("UNDELIVERED")
DROPPED = _Undelivered("DROPPED")


def is_undelivered(reply: Any) -> bool:
    """True for any non-delivery sentinel (failed server or lost message)."""
    return isinstance(reply, _Undelivered)


@dataclass
class MessageStats:
    """Counters for processed messages, by category, type, and server."""

    total: int = 0
    by_category: Dict[MessageCategory, int] = field(default_factory=dict)
    by_type: Dict[str, int] = field(default_factory=dict)
    per_server: Dict[int, int] = field(default_factory=dict)
    undelivered: int = 0
    broadcasts: int = 0
    #: Total entries shipped inside processed messages — the
    #: second-order cost separating schemes with equal message counts
    #: (a one-entry store broadcast vs an h-entry re-place broadcast).
    payload_entries: int = 0

    def record(self, server_id: int, message: Message) -> None:
        self.total += 1
        category = message.category
        self.by_category[category] = self.by_category.get(category, 0) + 1
        type_name = type(message).__name__
        self.by_type[type_name] = self.by_type.get(type_name, 0) + 1
        self.per_server[server_id] = self.per_server.get(server_id, 0) + 1
        self.payload_entries += message.payload_entries

    @property
    def update_messages(self) -> int:
        """Messages counted by the Figure 14 update-overhead metric."""
        return self.by_category.get(MessageCategory.UPDATE, 0)

    @property
    def lookup_messages(self) -> int:
        """Messages counted by the Figure 4 lookup-cost metric."""
        return self.by_category.get(MessageCategory.LOOKUP, 0)

    def reset(self) -> None:
        self.total = 0
        self.by_category.clear()
        self.by_type.clear()
        self.per_server.clear()
        self.undelivered = 0
        self.broadcasts = 0
        self.payload_entries = 0

    def snapshot(self) -> "MessageStats":
        """An independent copy, for before/after differencing."""
        return MessageStats(
            total=self.total,
            by_category=dict(self.by_category),
            by_type=dict(self.by_type),
            per_server=dict(self.per_server),
            undelivered=self.undelivered,
            broadcasts=self.broadcasts,
            payload_entries=self.payload_entries,
        )

    def diff(self, other: "MessageStats") -> "MessageStats":
        """The counter delta ``self - other`` as a new MessageStats.

        ``other`` is typically an earlier :meth:`snapshot` of the same
        live stats, so callers can attribute traffic to one operation
        (``stats.diff(before).update_messages``) without manually
        differencing each field.  Dict entries that net to zero are
        omitted so an empty diff compares equal to a fresh instance.
        """

        def diff_counts(now: Dict, then: Dict) -> Dict:
            return {
                key: now.get(key, 0) - then.get(key, 0)
                for key in set(now) | set(then)
                if now.get(key, 0) != then.get(key, 0)
            }

        return MessageStats(
            total=self.total - other.total,
            by_category=diff_counts(self.by_category, other.by_category),
            by_type=diff_counts(self.by_type, other.by_type),
            per_server=diff_counts(self.per_server, other.per_server),
            undelivered=self.undelivered - other.undelivered,
            broadcasts=self.broadcasts - other.broadcasts,
            payload_entries=self.payload_entries - other.payload_entries,
        )

    @property
    def balanced(self) -> bool:
        """Whether the per-type/category/server books agree with total."""
        return (
            self.total == sum(self.by_category.values())
            == sum(self.by_type.values())
            == sum(self.per_server.values())
        )

    def publish(self, metrics: "MetricsRegistry", prefix: str = "net") -> None:
        """Publish the current counters into a metrics registry.

        Uses ``Counter.set_to`` (ledger semantics): re-publishing the
        same stats is idempotent, and the registry rejects a publish
        that would move a counter backwards — which catches the
        classic bug of publishing after a ``reset()``.
        """
        metrics.counter(f"{prefix}.messages.total").set_to(self.total)
        metrics.counter(f"{prefix}.messages.update").set_to(self.update_messages)
        metrics.counter(f"{prefix}.messages.lookup").set_to(self.lookup_messages)
        metrics.counter(f"{prefix}.messages.undelivered").set_to(self.undelivered)
        metrics.counter(f"{prefix}.broadcasts").set_to(self.broadcasts)
        metrics.counter(f"{prefix}.payload_entries").set_to(self.payload_entries)
        for type_name, count in self.by_type.items():
            metrics.counter(f"{prefix}.messages.type.{type_name}").set_to(count)


class Network:
    """Synchronous message transport between clients and servers.

    All messaging in the paper is logically synchronous request/reply
    (a server broadcasts and the protocol proceeds), so ``send`` and
    ``broadcast`` deliver immediately and return the handlers' replies.
    Asynchronous timing effects are modelled at the workload level by
    the discrete-event engine, not inside the transport.
    """

    def __init__(self, servers: Sequence[Server]) -> None:
        self._servers = list(servers)
        self.stats = MessageStats()
        self._message_log: Optional[List[Tuple[int, str]]] = None
        self._faults: Optional["FaultInjector"] = None
        self._delivery_sequence = 0
        self._tracer: Optional["Tracer"] = None

    def enable_message_log(self) -> List[Tuple[int, str]]:
        """Record (destination id, message type) for every delivery.

        A protocol-debugging aid: tests assert the exact choreography
        of multi-step protocols (e.g. the Round-Robin delete's
        broadcast → migrate → remove_replacement sequence) against
        this log.  Returns the live list; call again to reset.
        """
        self._message_log = []
        return self._message_log

    @property
    def servers(self) -> List[Server]:
        return self._servers

    @property
    def size(self) -> int:
        return len(self._servers)

    def server(self, server_id: int) -> Server:
        """The server with ``server_id``.

        Raises
        ------
        InvalidParameterError
            If the id is outside ``[0, n)``.  The transport used to
            wrap ids modulo ``n``, which silently masked out-of-range
            destination bugs in protocol code; every legitimate caller
            computes its own modulus (positions and counters live in
            an unbounded sequence space, server ids do not).
        """
        if not 0 <= server_id < len(self._servers):
            raise InvalidParameterError(
                f"server id {server_id} outside [0, {len(self._servers)})"
            )
        return self._servers[server_id]

    # -- fault injection --------------------------------------------------------

    @property
    def fault_injector(self) -> Optional["FaultInjector"]:
        """The live injector for the installed plan, or None."""
        return self._faults

    def install_fault_plan(self, plan: "FaultPlan") -> "FaultInjector":
        """Route all subsequent deliveries through ``plan``.

        Returns the :class:`~repro.cluster.faults.FaultInjector`
        holding the plan's runtime state and fault accounting.  With
        no plan installed the transport is bit-identical to the
        fault-free implementation — no RNG draws, no extra counters.
        """
        from repro.cluster.faults import FaultInjector

        self._faults = FaultInjector(plan)
        return self._faults

    def uninstall_fault_plan(self) -> None:
        """Return to perfect delivery; the injector's stats survive."""
        self._faults = None

    # -- structured tracing -----------------------------------------------------

    def install_tracer(self, tracer: "Tracer") -> None:
        """Emit an ``"update"`` trace event per update-category delivery.

        Lookup traffic is deliberately *not* traced here — the client
        traces its own contacts with span linkage; tracing them again
        at the transport would double-count every lookup message.
        With no tracer installed (the default) delivery is
        byte-identical to the untraced implementation.
        """
        self._tracer = tracer

    def uninstall_tracer(self) -> None:
        self._tracer = None

    def _trace_update(self, dest_id: int, message: Message, outcome: str) -> None:
        """Record one update-propagation delivery attempt (tracer installed)."""
        if message.category is MessageCategory.LOOKUP:
            return
        self._tracer.event(
            "update",
            server=dest_id,
            type=type(message).__name__,
            outcome=outcome,
            payload_entries=message.payload_entries,
        )

    def send(self, dest_id: int, key: str, message: Message) -> Any:
        """Deliver ``message`` about ``key`` to one server.

        Returns the handler's reply; :data:`UNDELIVERED` if the
        destination is failed; :data:`DROPPED` if an installed fault
        plan lost the message.  A processed message costs 1.
        """
        if self._faults is not None:
            return self._faulty_send(dest_id, key, message)
        server = self.server(dest_id)
        if not server.alive:
            self.stats.undelivered += 1
            if self._tracer is not None:
                self._trace_update(server.server_id, message, "undelivered")
            return UNDELIVERED
        self.stats.record(server.server_id, message)
        if self._message_log is not None:
            self._message_log.append((server.server_id, type(message).__name__))
        if self._tracer is not None:
            self._trace_update(server.server_id, message, "delivered")
        return server.receive(key, message, self)

    def broadcast(self, key: str, message: Message) -> Dict[int, Any]:
        """Deliver ``message`` to every operational server.

        Costs one processed message per operational server — ``n``
        when nothing is failed, matching the Section 6.4 model.
        Returns a map from server id to handler reply; under a fault
        plan, dropped deliveries are simply absent from the map, like
        deliveries to failed servers.
        """
        self.stats.broadcasts += 1
        if self._faults is not None:
            replies: Dict[int, Any] = {}
            for server in self._servers:
                reply = self._faulty_send(server.server_id, key, message)
                if not is_undelivered(reply):
                    replies[server.server_id] = reply
            return replies
        replies = {}
        for server in self._servers:
            if not server.alive:
                self.stats.undelivered += 1
                if self._tracer is not None:
                    self._trace_update(server.server_id, message, "undelivered")
                continue
            self.stats.record(server.server_id, message)
            if self._message_log is not None:
                self._message_log.append(
                    (server.server_id, type(message).__name__)
                )
            if self._tracer is not None:
                self._trace_update(server.server_id, message, "delivered")
            replies[server.server_id] = server.receive(key, message, self)
        return replies

    def _faulty_send(self, dest_id: int, key: str, message: Message) -> Any:
        """One delivery attempt under the installed fault plan.

        Fault order per attempt: destination failed → blackout → drop
        coin → duplicate coin → deliver (dedupe-aware) → crash point.
        The logical message is recorded in the §6.4 counters exactly
        once even when duplicated — the duplicate shows up only in the
        fault accounting, keeping the paper's cost model untouched.
        """
        faults = self._faults
        assert faults is not None
        server = self.server(dest_id)
        attempt = faults.next_attempt(server.server_id)
        if not server.alive:
            self.stats.undelivered += 1
            faults.stats.suppressed += 1
            if self._tracer is not None:
                self._trace_update(server.server_id, message, "undelivered")
            return UNDELIVERED
        if faults.blacked_out(server.server_id, attempt) or faults.drops():
            if self._tracer is not None:
                self._trace_update(server.server_id, message, "dropped")
            return DROPPED
        duplicated = faults.duplicates()
        self.stats.record(server.server_id, message)
        if self._message_log is not None:
            self._message_log.append((server.server_id, type(message).__name__))
        if self._tracer is not None:
            self._trace_update(server.server_id, message, "delivered")
        self._delivery_sequence += 1
        delivery_id = self._delivery_sequence
        faults.stats.delivered += 1
        reply = server.receive_dedup(key, message, self, delivery_id)
        if duplicated and server.alive:
            # At-least-once delivery: the same delivery id arrives
            # again and the server-side dedupe answers from cache
            # without re-running the handler.
            server.receive_dedup(key, message, self, delivery_id)
        faults.note_processed(server, message)
        return reply

    def reset_stats(self) -> None:
        self.stats.reset()
