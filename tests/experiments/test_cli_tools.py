"""Unit tests for the validate and trace CLI commands."""

import pytest

from repro.experiments.cli import main
from repro.io.traces import load_trace


class TestValidateCommand:
    def test_validate_passes(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out
        assert "PASS" in out


class TestCsvOutput:
    def test_run_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "t1.csv"
        assert main([
            "run", "table1", "--set", "runs=2", "--csv", str(out),
        ]) == 0
        text = out.read_text()
        assert text.splitlines()[0].startswith("strategy,")
        assert "full_replication" in text


class TestPlanCommand:
    def test_plan_prints_all_schemes(self, capsys):
        assert main([
            "plan", "--entries", "150", "--servers", "10",
            "--budget", "300", "--target", "20",
        ]) == 0
        out = capsys.readouterr().out
        for scheme in ("full_replication", "fixed", "random_server",
                       "round_robin", "hash"):
            assert scheme in out
        assert "cheapest for updates" in out

    def test_plan_rejects_bad_spec(self, capsys):
        assert main([
            "plan", "--entries", "0", "--servers", "10",
            "--budget", "300", "--target", "20",
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestTraceCommands:
    def test_generate_then_replay(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        assert main([
            "trace", "generate",
            "--entries", "50", "--updates", "400",
            "--seed", "3", "--out", str(trace_path),
        ]) == 0
        assert "400 updates" in capsys.readouterr().out

        trace = load_trace(trace_path)
        assert len(trace.initial_entries) == 50
        assert trace.update_count == 400

        assert main([
            "trace", "replay", str(trace_path),
            "--strategy", "round_robin", "--param", "y=2",
            "--monitor-target", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "adds" in out and "update_messages" in out
        assert "pct_time_below_t=10" in out

    def test_generate_zipf(self, tmp_path, capsys):
        trace_path = tmp_path / "z.jsonl"
        assert main([
            "trace", "generate", "--entries", "30", "--updates", "100",
            "--lifetime", "zipf", "--seed", "1", "--out", str(trace_path),
        ]) == 0
        assert "zipf" in capsys.readouterr().out

    def test_replay_same_seed_is_deterministic(self, tmp_path, capsys):
        trace_path = tmp_path / "d.jsonl"
        main([
            "trace", "generate", "--entries", "40", "--updates", "200",
            "--seed", "9", "--out", str(trace_path),
        ])
        capsys.readouterr()
        outputs = []
        for _ in range(2):
            main([
                "trace", "replay", str(trace_path),
                "--strategy", "hash", "--param", "y=2", "--seed", "5",
            ])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_replay_unknown_strategy_clean_error(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        main([
            "trace", "generate", "--entries", "10", "--updates", "20",
            "--out", str(trace_path),
        ])
        capsys.readouterr()
        assert main([
            "trace", "replay", str(trace_path), "--strategy", "nope",
        ]) == 2
        assert "error:" in capsys.readouterr().err
