#!/usr/bin/env python
"""Kill-a-shard smoke: boot a 3-shard fleet, murder one, watch it heal.

CI's shard-chaos job runs this script.  It spawns three
``repro serve --shard i/3`` subprocesses wired to each other with the
fast failure-detection timings, then runs the
:func:`repro.chaos.shards.run_kill_shard_scenario` cycle:

1. healthy sweep — every scheme key returns its full target;
2. SIGKILL the busiest primary shard; survivors detect it dead;
3. outage sweep — the victim's keys come back *degraded* (short,
   non-empty, labelled) while every other key is untouched;
4. restart the shard with a new incarnation; it passes through
   quarantine and is re-admitted;
5. recovered sweep — full answers for every key again.

It then attacks the *multi-core* deployment the same way: a fresh
single-shard ``serve --workers 3`` fleet goes through
:func:`repro.chaos.shards.run_kill_worker_scenario` —

6. healthy sweep through the worker fleet, then a mutation on one
   connection proven visible on fresh connections (the single-writer
   delta fan-out, end to end);
7. SIGKILL a reader worker: lookups stay full throughout and the
   supervisor respawns it (watched via the pid manifest);
8. SIGKILL the writer worker: the whole ``serve`` process exits
   non-zero — a fleet that cannot apply mutations fails loud rather
   than serving quietly stale answers.

Finally it attacks *durability*: a fresh single-shard
``serve --workers 3 --store log`` fleet goes through
:func:`repro.chaos.shards.run_fleet_restart_scenario` —

9. a post-boot mutation lands and fans out, then the full-store reply
   of every (scheme, server) pair is captured as the uncrashed
   control;
10. the parent *and* every worker are SIGKILLed simultaneously —
    nothing survives but the append-log journal on disk;
11. the fleet restarts on the same data directory, reports
    ``storage.recovered``, and serves reply values identical to the
    control, mutation included.

Any invariant violation, unclean shard exit, or overall-deadline
overrun fails the script.  The report (and each shard's output) is
printed so a CI failure is diagnosable from the log alone.

Usage: ``PYTHONPATH=src python scripts/shard_chaos_smoke.py [--timeout 120]``
(the ``--timeout`` budget applies to each scenario separately).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.chaos.shards import (
    ScenarioError,
    ShardFleet,
    run_fleet_restart_scenario,
    run_kill_shard_scenario,
    run_kill_worker_scenario,
)

SHARDS = 3
SERVERS = 12
ENTRIES = 30
SEED = 5
#: Per-key lookup target.  Chosen so every scheme can meet it when
#: healthy (fixed-x hosts x=10) while a lone backup replica
#: (``round(0.25 * 30) = 8`` entries) cannot — the outage sweep is
#: then *provably* degraded rather than accidentally full.
TARGET = 10


#: Worker processes in the kill-a-worker fleet: one writer plus two
#: readers, so killing a reader leaves a second one serving.
WORKERS = 3


def _dump_fleet_output(fleet: ShardFleet) -> None:
    for name, process in fleet.processes.items():
        if process.poll() is None:
            continue
        output = process.stdout.read() if process.stdout else ""
        print(f"--- {name} (exited {process.returncode}) ---\n{output}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()

    fleet = ShardFleet(
        shard_count=SHARDS, servers=SERVERS, entries=ENTRIES, seed=SEED
    )
    try:
        fleet.start()
        print(f"fleet up: {fleet.addresses}")
        report = asyncio.run(
            asyncio.wait_for(
                run_kill_shard_scenario(fleet, target=TARGET),
                timeout=args.timeout,
            )
        )
    except (ScenarioError, asyncio.TimeoutError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        _dump_fleet_output(fleet)
        fleet.stop_all()
        return 1
    fleet.stop_all()
    print(json.dumps(report, indent=2, sort_keys=True))
    print(
        f"shard chaos smoke passed: killed {report['victim']} "
        f"(primary for {', '.join(report['victim_keys'])}), lookups degraded "
        f"gracefully, fleet recovered after rejoin"
    )

    worker_fleet = ShardFleet(
        shard_count=1,
        servers=SERVERS,
        entries=ENTRIES,
        seed=SEED,
        workers=WORKERS,
    )
    try:
        worker_fleet.start()
        print(f"worker fleet up: {worker_fleet.addresses} ({WORKERS} workers)")
        worker_report = asyncio.run(
            asyncio.wait_for(
                run_kill_worker_scenario(worker_fleet, target=TARGET),
                timeout=args.timeout,
            )
        )
    except (ScenarioError, asyncio.TimeoutError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        _dump_fleet_output(worker_fleet)
        worker_fleet.stop_all()
        return 1
    worker_fleet.stop_all()
    print(json.dumps(worker_report, indent=2, sort_keys=True))
    respawn = worker_report["reader_respawn"]
    print(
        f"worker chaos smoke passed: mutation fanned out to every worker, "
        f"reader {respawn['index']} (pid {respawn['killed_pid']}) respawned "
        f"as pid {respawn['respawned_pid']} with lookups full throughout, "
        f"writer kill exited the fleet with code "
        f"{worker_report['writer_kill']['parent_exit']}"
    )

    durable_fleet = ShardFleet(
        shard_count=1,
        servers=SERVERS,
        entries=ENTRIES,
        seed=SEED,
        workers=WORKERS,
        store="log",
    )
    try:
        durable_fleet.start()
        print(
            f"durable fleet up: {durable_fleet.addresses} "
            f"({WORKERS} workers, log store)"
        )
        durable_report = asyncio.run(
            asyncio.wait_for(
                run_fleet_restart_scenario(durable_fleet),
                timeout=args.timeout,
            )
        )
    except (ScenarioError, asyncio.TimeoutError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        _dump_fleet_output(durable_fleet)
        durable_fleet.stop_all()
        return 1
    durable_fleet.stop_all()
    print(json.dumps(durable_report, indent=2, sort_keys=True))
    print(
        f"fleet restart smoke passed: SIGKILLed the whole fleet "
        f"(parent + {len(durable_report['killed']['workers'])} workers), "
        f"restart replayed the journal "
        f"({durable_report['storage'].get('log_records')} records) and all "
        f"{durable_report['control_replies']} (scheme, server) replies came "
        f"back identical, mutation intact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
