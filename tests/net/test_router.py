"""ShardRouter tests: an in-process fleet on real sockets.

These cover the routing layer's contract — membership-aware candidate
selection, failover to partial backups, degraded-never-raised results
— against live :class:`LookupService` instances.  The full
subprocess + SIGKILL story lives in ``scripts/shard_chaos_smoke.py``.
"""

import asyncio
import random

import pytest

from repro.net.client import ServiceError
from repro.net.membership import MembershipPump
from repro.net.router import ShardRouter
from repro.net.service import LookupService, ServiceConfig
from repro.net.sharding import ShardMap, partial_replica
from repro.core.entry import make_entries
from repro.protocol.membership import MembershipConfig

ENTRIES = 30
SERVERS = 12
REPLICAS = 2
TARGET = 10

FAST = MembershipConfig(
    heartbeat_interval=0.05, suspect_after=0.3, dead_after=0.6, quarantine=0.4
)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


class Fleet:
    """Three in-process shard services with membership pumps."""

    def __init__(self):
        self.services = {}
        self.pumps = {}
        self.addresses = {}

    async def start(self, shard_count=3, with_pumps=True):
        for i in range(shard_count):
            service = LookupService(
                ServiceConfig(
                    server_count=SERVERS,
                    entry_count=ENTRIES,
                    seed=5,
                    shard_index=i,
                    shard_count=shard_count,
                    replicas=REPLICAS,
                )
            )
            host, port = await service.start(port=0)
            self.services[service.shard_name] = service
            self.addresses[service.shard_name] = (host, port)
        if with_pumps:
            for name, service in self.services.items():
                pump = MembershipPump(
                    name,
                    {n: a for n, a in self.addresses.items() if n != name},
                    config=FAST,
                    incarnation=1,
                    rng=random.Random(0),
                )
                service.membership = pump
                pump.start()
                self.pumps[name] = pump

    async def stop_shard(self, name):
        if name in self.pumps:
            await self.pumps.pop(name).stop()
        await self.services[name].stop()

    async def stop(self):
        for name in list(self.pumps):
            await self.pumps.pop(name).stop()
        for service in self.services.values():
            await service.stop()

    def router(self, **kwargs):
        kwargs.setdefault("rng", random.Random(7))
        kwargs.setdefault("timeout", 1.0)
        kwargs.setdefault("view_ttl", 0.1)
        return ShardRouter(self.addresses, replicas=REPLICAS, **kwargs)

    async def wait_view(self, router, shard, want, budget=10.0):
        deadline = asyncio.get_running_loop().time() + budget
        while asyncio.get_running_loop().time() < deadline:
            view = await router.membership_view(refresh=True)
            if view.get(shard) == want:
                return view
            await asyncio.sleep(0.05)
        raise AssertionError(f"{shard} never became {want}")


class TestHealthyRouting:
    def test_every_key_meets_target_with_attribution(self):
        async def scenario():
            fleet = Fleet()
            await fleet.start()
            router = fleet.router()
            try:
                shard_map = ShardMap(list(fleet.addresses))
                for key in sorted(fleet.services["s0"].strategies):
                    routed = await router.lookup(key, TARGET)
                    assert routed.success, (key, routed)
                    assert list(routed.home) == shard_map.home(key, REPLICAS)
                    assert routed.routed == routed.home
                    # Attribution is over home shards only.
                    assert {s for s, _ in routed.contacts} <= set(routed.home)
            finally:
                await router.close()
                await fleet.stop()

        run(scenario())

    def test_healthy_primary_answers_without_failover(self):
        async def scenario():
            fleet = Fleet()
            await fleet.start()
            router = fleet.router()
            try:
                routed = await router.lookup("full_replication", TARGET)
                assert not routed.failover
                assert {s for s, _ in routed.contacts} == {routed.home[0]}
            finally:
                await router.close()
                await fleet.stop()

        run(scenario())

    def test_single_unsharded_service_is_routable(self):
        async def scenario():
            service = LookupService(
                ServiceConfig(server_count=SERVERS, entry_count=ENTRIES, seed=5)
            )
            host, port = await service.start(port=0)
            router = ShardRouter(
                {"s0": (host, port)},
                replicas=1,
                rng=random.Random(7),
                timeout=1.0,
            )
            try:
                view = await router.membership_view()
                assert view == {"s0": "alive"}
                routed = await router.lookup("hash", TARGET)
                assert routed.success
            finally:
                await router.close()
                await service.stop()

        run(scenario())

    def test_unknown_key_raises_service_error(self):
        async def scenario():
            fleet = Fleet()
            await fleet.start(with_pumps=False)
            router = fleet.router()
            try:
                with pytest.raises(ServiceError):
                    await router.lookup("no-such-key", TARGET)
            finally:
                await router.close()
                await fleet.stop()

        run(scenario())


class TestFailover:
    def test_dead_primary_degrades_and_skips_corpse(self):
        async def scenario():
            fleet = Fleet()
            await fleet.start()
            router = fleet.router()
            try:
                shard_map = ShardMap(list(fleet.addresses))
                key = "full_replication"
                primary, backup = shard_map.home(key, REPLICAS)
                await fleet.stop_shard(primary)
                await fleet.wait_view(router, primary, "dead")
                routed = await router.lookup(key, TARGET)
                assert primary not in routed.routed
                assert routed.failover
                assert not routed.success
                assert routed.degraded
                # The backup's partial replica answers, short but real.
                expected = len(
                    partial_replica(key, make_entries(ENTRIES), 1, 0.25)
                )
                assert len(routed.entries) == expected
                placed = {e.entry_id for e in make_entries(ENTRIES)}
                assert {e.entry_id for e in routed.entries} <= placed
            finally:
                await router.close()
                await fleet.stop()

        run(scenario())

    def test_other_keys_unaffected_by_shard_death(self):
        async def scenario():
            fleet = Fleet()
            await fleet.start()
            router = fleet.router()
            try:
                shard_map = ShardMap(list(fleet.addresses))
                keys = sorted(fleet.services["s0"].strategies)
                victim = shard_map.home("full_replication", REPLICAS)[0]
                spared = [
                    k for k in keys
                    if victim not in shard_map.home(k, REPLICAS)
                ]
                assert spared, "need at least one key not homed on the victim"
                await fleet.stop_shard(victim)
                await fleet.wait_view(router, victim, "dead")
                for key in spared:
                    routed = await router.lookup(key, TARGET)
                    assert routed.success, (key, routed)
            finally:
                await router.close()
                await fleet.stop()

        run(scenario())

    def test_whole_fleet_down_degrades_to_empty_not_error(self):
        async def scenario():
            fleet = Fleet()
            await fleet.start(with_pumps=False)
            router = fleet.router(timeout=0.5)
            try:
                await router.lookup("hash", TARGET)  # cache fleet info
                for name in list(fleet.services):
                    await fleet.stop_shard(name)
                routed = await router.lookup("hash", TARGET)
                assert len(routed.entries) == 0
                assert not routed.success
                assert routed.degraded
            finally:
                await router.close()
                await fleet.stop()

        run(scenario())

    def test_stale_all_dead_view_still_tries_home_shards(self):
        async def scenario():
            fleet = Fleet()
            await fleet.start(with_pumps=False)
            router = fleet.router()
            try:
                # Poison the cached view: everyone condemned.
                router._view = {name: "dead" for name in fleet.addresses}
                router._view_at = router._clock()
                routed = await router.lookup("hash", TARGET)
                # A wrong "dead" verdict costs contacts, not data.
                assert routed.success
            finally:
                await router.close()
                await fleet.stop()

        run(scenario())

    def test_verify_falls_over_to_surviving_home_shard(self):
        async def scenario():
            fleet = Fleet()
            await fleet.start(with_pumps=False)
            router = fleet.router()
            try:
                key = "round_robin"
                shard_map = ShardMap(list(fleet.addresses))
                primary = shard_map.home(key, REPLICAS)[0]
                await fleet.stop_shard(primary)
                report = await router.verify(key)
                assert "coverage" in report
            finally:
                await router.close()
                await fleet.stop()

        run(scenario())
