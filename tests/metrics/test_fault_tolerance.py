"""Unit tests for the fault-tolerance heuristic (§4.4, Appendix A)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.metrics.fault_tolerance import (
    exact_fault_tolerance,
    greedy_fault_tolerance,
    server_importance,
)
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.round_robin import RoundRobinY


class TestServerImportance:
    def test_unique_entry_scores_one(self):
        placement = {0: {Entry("a")}, 1: {Entry("b")}}
        scores = server_importance(placement)
        assert scores == {0: 1.0, 1: 1.0}

    def test_shared_entries_dilute(self):
        placement = {0: {Entry("a")}, 1: {Entry("a")}, 2: {Entry("a")}}
        scores = server_importance(placement)
        assert all(score == pytest.approx(1 / 3) for score in scores.values())

    def test_rare_entry_raises_importance(self):
        shared = {Entry("s1"), Entry("s2")}
        placement = {
            0: shared | {Entry("unique")},
            1: set(shared),
        }
        scores = server_importance(placement)
        assert scores[0] > scores[1]

    def test_empty_server_scores_zero(self):
        placement = {0: {Entry("a")}, 1: set()}
        assert server_importance(placement)[1] == 0.0


class TestGreedyOnKnownPlacements:
    def test_full_replication_tolerates_n_minus_1(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(50))
        assert greedy_fault_tolerance(strategy, 10) == 9

    def test_fixed_tolerates_n_minus_1_within_x(self, cluster):
        strategy = FixedX(cluster, x=20)
        strategy.place(make_entries(100))
        assert greedy_fault_tolerance(strategy, 20) == 9

    def test_fixed_zero_beyond_coverage(self, cluster):
        strategy = FixedX(cluster, x=20)
        strategy.place(make_entries(100))
        # A target above coverage fails even with zero failures.
        assert greedy_fault_tolerance(strategy, 25) == 0

    @pytest.mark.parametrize(
        "target,expected", [(10, 9), (20, 9), (30, 8), (50, 6), (100, 1)]
    )
    def test_round_robin_matches_closed_form(self, target, expected):
        # n − ⌈tn/h⌉ + y − 1 with n=10, h=100, y=2.
        strategy = RoundRobinY(Cluster(10, seed=1), y=2)
        strategy.place(make_entries(100))
        assert greedy_fault_tolerance(strategy, target) == expected

    def test_target_zero_capped_at_n_minus_1(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(5))
        assert greedy_fault_tolerance(strategy, 0) == 9

    def test_failure_order_returned(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(5))
        tolerated, order = greedy_fault_tolerance(strategy, 1, return_order=True)
        assert tolerated == 9
        assert len(order) == 9
        assert len(set(order)) == 9

    def test_already_failed_servers_excluded(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(5))
        cluster.fail_many([0, 1, 2])
        assert greedy_fault_tolerance(strategy, 1) == 6


class TestGreedyVsExact:
    def test_exact_matches_greedy_on_uniform_placements(self, small_cluster):
        strategy = FullReplication(small_cluster)
        strategy.place(make_entries(6))
        assert exact_fault_tolerance(strategy, 3) == greedy_fault_tolerance(
            strategy, 3
        )

    def test_greedy_never_below_exact(self):
        # The adversary seeks the *minimum* breaking failure set; the
        # greedy heuristic may miss it and report a larger tolerated
        # count, so greedy is an optimistic (upper) estimate: it can
        # never fall below the true worst case.
        from repro.strategies.random_server import RandomServerX

        mismatches = 0
        for seed in range(15):
            strategy = RandomServerX(Cluster(5, seed=seed), x=3)
            strategy.place(make_entries(10))
            greedy = greedy_fault_tolerance(strategy, 5)
            exact = exact_fault_tolerance(strategy, 5)
            assert greedy >= exact
            if greedy != exact:
                mismatches += 1
        # The heuristic is good: it should agree most of the time.
        assert mismatches <= 5

    def test_round_robin_exact_small(self):
        strategy = RoundRobinY(Cluster(5, seed=2), y=2)
        strategy.place(make_entries(10))
        assert exact_fault_tolerance(strategy, 4) == greedy_fault_tolerance(
            strategy, 4
        )
