"""Micro-benchmarks: raw operation throughput per scheme.

Unlike the experiment benches (which regenerate paper artifacts once),
these time the core operations with pytest-benchmark's statistics —
useful for catching performance regressions in the simulator itself.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.strategies.registry import create_strategy

PARAMS = {
    "full_replication": {},
    "fixed": {"x": 20},
    "random_server": {"x": 20},
    "round_robin": {"y": 2},
    "hash": {"y": 2},
}


def _placed(name):
    strategy = create_strategy(name, Cluster(10, seed=8), **PARAMS[name])
    strategy.place(make_entries(100))
    return strategy


@pytest.mark.parametrize("name", sorted(PARAMS))
def test_bench_micro_lookup(benchmark, name):
    strategy = _placed(name)
    result = benchmark(lambda: strategy.partial_lookup(15))
    assert result.success or name == "fixed"


@pytest.mark.parametrize("name", sorted(PARAMS))
def test_bench_micro_update_cycle(benchmark, name):
    strategy = _placed(name)
    counter = iter(range(10**9))

    def add_delete():
        entry = Entry(f"m{next(counter)}")
        strategy.add(entry)
        strategy.delete(entry)

    benchmark(add_delete)


def test_bench_micro_place(benchmark):
    entries = make_entries(100)

    def place_fresh():
        strategy = create_strategy("round_robin", Cluster(10, seed=9), y=2)
        strategy.place(entries)
        return strategy

    strategy = benchmark(place_fresh)
    assert strategy.storage_cost() == 200


def test_bench_micro_retrieval_probabilities(benchmark):
    from repro.metrics.unfairness import retrieval_probabilities

    strategy = _placed("random_server")
    universe = make_entries(100)
    probabilities = benchmark(
        lambda: retrieval_probabilities(strategy, 15, universe, lookups=200)
    )
    assert len(probabilities) == 100
    assert all(0.0 <= p <= 1.0 for p in probabilities.values())


def test_bench_micro_fault_tolerance_heuristic(benchmark):
    from repro.metrics.fault_tolerance import greedy_fault_tolerance

    strategy = _placed("random_server")
    tolerated = benchmark(lambda: greedy_fault_tolerance(strategy, 20))
    assert tolerated >= 7


def test_bench_micro_mc_kernel_speedup(benchmark, bench_json_record):
    """Bitset kernel vs the real lookup path on the same MC estimate.

    Both sides run the identical seeded workload (the kernel is
    bit-identical, so the comparison is pure overhead); the ratio is
    the PR-4 tentpole speedup, recorded for the CI baseline.
    """
    import time

    from repro.metrics.unfairness import retrieval_probabilities

    universe = make_entries(100)

    def measure(disable_kernel):
        strategy = _placed("random_server")
        if disable_kernel:
            strategy.lookup_profile = lambda: None
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            retrieval_probabilities(strategy, 15, universe, lookups=2000)
            best = min(best, time.perf_counter() - started)
        return best

    slow = measure(disable_kernel=True)
    fast = benchmark.pedantic(
        lambda: measure(disable_kernel=False), rounds=1, iterations=1
    )
    speedup = slow / fast
    bench_json_record("mc_kernel_speedup", round(speedup, 2))
    print(f"\nMC kernel speedup: {speedup:.2f}x ({slow:.3f}s -> {fast:.3f}s)")
    assert speedup >= 3.0
