"""Core types and interfaces for the partial lookup service.

This package contains the paper's Section 2 formalization: the entry
value type, the traditional and partial lookup service interfaces, the
lookup result type, the error taxonomy, and the multi-key directory
facade that composes single-key placement strategies.
"""

from repro.core.entry import Entry, make_entries
from repro.core.exceptions import (
    CoverageExceededError,
    InvalidParameterError,
    LookupFailedError,
    NoOperationalServerError,
    ReproError,
    UnknownKeyError,
    UnknownStrategyError,
)
from repro.core.interface import PartialLookupService, TraditionalLookupService
from repro.core.result import LookupResult, UpdateResult
from repro.core.service import PartialLookupDirectory

__all__ = [
    "Entry",
    "make_entries",
    "ReproError",
    "LookupFailedError",
    "CoverageExceededError",
    "NoOperationalServerError",
    "InvalidParameterError",
    "UnknownKeyError",
    "UnknownStrategyError",
    "TraditionalLookupService",
    "PartialLookupService",
    "LookupResult",
    "UpdateResult",
    "PartialLookupDirectory",
]
