"""Durable storage backends for the lookup service.

The in-memory default lives in :mod:`repro.core.storage`; this package
holds the backends that persist entries across a process crash.  Today
that is the append-log backend (:mod:`repro.storage.appendlog`): every
mutation is journaled to a JSON-lines log, periodically folded into a
snapshot, and replayed on cold start to rebuild the stores
bit-identically to a never-crashed service.
"""

from repro.storage.appendlog import (
    AppendLogJournal,
    LogBackend,
    RecoveredImage,
    RecoveryError,
)

__all__ = [
    "AppendLogJournal",
    "LogBackend",
    "RecoveredImage",
    "RecoveryError",
]
