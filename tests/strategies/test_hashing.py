"""Unit tests for the Hash-y strategy (§3.5, §5.5)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.strategies.hashing import HashY


@pytest.fixture
def strategy(cluster):
    s = HashY(cluster, y=2, hash_seed=424242)
    s.place(make_entries(100))
    return s


class TestPlacement:
    def test_entries_at_their_hash_targets(self, strategy):
        placement = strategy.placement()
        for entry in make_entries(100):
            targets = set(strategy.family.assign_distinct(entry))
            holders = {sid for sid, p in placement.items() if entry in p}
            assert holders == targets

    def test_storage_between_h_and_h_times_y(self, strategy):
        assert 100 <= strategy.storage_cost() <= 200

    def test_expected_storage_over_runs(self):
        total = 0
        runs = 40
        for seed in range(runs):
            strategy = HashY(Cluster(10, seed=seed), y=2)
            strategy.place(make_entries(100))
            total += strategy.storage_cost()
        # Table 1: E = 100·10·(1 − 0.9²) = 190.
        assert abs(total / runs - 190) < 5

    def test_complete_coverage(self, strategy):
        assert strategy.coverage() == 100

    def test_uneven_loads_possible(self, strategy):
        sizes = strategy.cluster.store_sizes("k")
        assert max(sizes) > min(sizes)  # no balancing guarantee

    def test_same_seed_same_placement(self):
        placements = []
        for _ in range(2):
            strategy = HashY(Cluster(10, seed=5), y=2, hash_seed=99)
            strategy.place(make_entries(50))
            placements.append(strategy.placement())
        assert placements[0] == placements[1]

    def test_budgeted_placement(self, cluster):
        strategy = HashY.from_budget(cluster, storage_budget=50, entry_count=100)
        strategy.place(make_entries(100))
        assert strategy.storage_cost() == 50
        assert strategy.coverage() == 50


class TestLookups:
    def test_lookup_succeeds(self, strategy):
        assert strategy.partial_lookup(15).success

    def test_lookup_may_need_multiple_servers(self, strategy):
        # Pick the target so the largest server can satisfy a lookup
        # alone (cost 1 possible) while the smallest cannot (cost > 1
        # occurs) — Hash-y gives no per-server size guarantee (§3.5).
        sizes = strategy.cluster.store_sizes("k")
        target = max(sizes)
        assert min(sizes) < target
        costs = {strategy.partial_lookup(target).lookup_cost for _ in range(200)}
        assert 1 in costs
        assert any(cost > 1 for cost in costs)

    def test_large_target_satisfiable(self, strategy):
        assert strategy.partial_lookup(80).success


class TestUpdates:
    def test_add_goes_to_hash_targets_only(self, strategy):
        entry = Entry("brand-new")
        strategy.add(entry)
        targets = set(strategy.family.assign_distinct(entry))
        holders = {
            sid for sid, p in strategy.placement().items() if entry in p
        }
        assert holders == targets

    def test_add_cost_point_to_point(self, strategy):
        entry = Entry("brand-new")
        distinct = len(strategy.family.assign_distinct(entry))
        result = strategy.add(entry)
        assert result.messages == 1 + distinct
        assert not result.broadcast

    def test_delete_removes_from_targets(self, strategy):
        strategy.delete(Entry("v10"))
        assert Entry("v10") not in strategy.lookup_all()

    def test_delete_cost_point_to_point(self, strategy):
        distinct = len(strategy.family.assign_distinct(Entry("v10")))
        result = strategy.delete(Entry("v10"))
        assert result.messages == 1 + distinct
        assert not result.broadcast

    def test_no_broadcast_ever(self, strategy):
        before = strategy.cluster.network.stats.broadcasts
        strategy.add(Entry("a1"))
        strategy.delete(Entry("v1"))
        assert strategy.cluster.network.stats.broadcasts == before

    def test_update_cost_at_most_1_plus_y(self, strategy):
        for i in range(20):
            assert strategy.add(Entry(f"n{i}")).messages <= 1 + 2

    def test_collisions_store_once(self):
        # With 1 bucket every function collides; entry stored once.
        strategy = HashY(Cluster(1, seed=1), y=5)
        strategy.place(make_entries(10))
        assert strategy.storage_cost() == 10
