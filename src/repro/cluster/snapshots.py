"""Placement snapshots: dump and restore a cluster's stored state.

An operator debugging a placement (or a test pinning one down) wants
to freeze exactly what every server holds for every key and bring it
back later — possibly on a fresh cluster.  Snapshots capture stores
only; strategy scratch state (counters, reservoir h estimates,
positions) is intentionally included too, since protocols like
Round-Robin cannot resume without it.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.cluster.cluster import Cluster

PathLike = Union[str, pathlib.Path]

FORMAT_VERSION = 1


def snapshot_cluster(cluster: Cluster) -> Dict[str, Any]:
    """A JSON-serializable dump of every server's stores and state."""
    servers = []
    for server in cluster.servers:
        stores = {
            key: [entry.entry_id for entry in server.store(key)]
            for key in server.keys()
        }
        # State values are assumed JSON-representable; the built-in
        # strategies only keep ints and {str: int} maps there, plus
        # Round-Robin's migrations map which is transient and empty
        # between operations.
        state = {key: dict(server.state(key)) for key in server.keys()}
        servers.append(
            {
                "server_id": server.server_id,
                "alive": server.alive,
                "stores": stores,
                "state": _jsonable_state(state),
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "size": cluster.size,
        "servers": servers,
    }


def _jsonable_state(state: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    cleaned: Dict[str, Dict[str, Any]] = {}
    for key, values in state.items():
        cleaned[key] = {}
        for name, value in values.items():
            if name == "migrations":
                continue  # transient; always empty between operations
            cleaned[key][name] = value
    return cleaned


def restore_cluster(snapshot: Dict[str, Any], cluster: Cluster) -> Cluster:
    """Load a snapshot into ``cluster`` (which must match in size).

    Existing stores/state are wiped first.  Strategy logics are NOT
    restored — reattach strategies by constructing them against the
    cluster with the same parameters before issuing operations.
    """
    version = snapshot.get("format_version")
    if version != FORMAT_VERSION:
        raise InvalidParameterError(
            f"snapshot has format version {version!r}; expected {FORMAT_VERSION}"
        )
    if snapshot.get("size") != cluster.size:
        raise InvalidParameterError(
            f"snapshot is for {snapshot.get('size')} servers; "
            f"cluster has {cluster.size}"
        )
    cluster.wipe()
    for record in snapshot["servers"]:
        server = cluster.server(record["server_id"])
        if record["alive"]:
            server.recover()
        else:
            server.fail()
        for key, entry_ids in record["stores"].items():
            store = server.store(key)
            for entry_id in entry_ids:
                store.add(Entry(entry_id))
        for key, values in record.get("state", {}).items():
            server.state(key).update(values)
    return cluster


def save_snapshot(cluster: Cluster, path: PathLike) -> pathlib.Path:
    """Snapshot to a JSON file."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(snapshot_cluster(cluster), indent=2) + "\n")
    return target


def load_snapshot(path: PathLike, cluster: Cluster) -> Cluster:
    """Restore a JSON snapshot file into ``cluster``."""
    return restore_cluster(
        json.loads(pathlib.Path(path).read_text()), cluster
    )
