"""Config profiles: paper-scale and CI-smoke settings by field name.

Every experiment config ships with downscaled defaults so the serial
path stays interactive; the paper's own scale (5000 runs, 10000
lookups per instance, 20000 updates per run) lives here instead of in
code edits.  A profile is a map from *field name* to value — applying
one touches only the fields the target config class actually declares,
so ``--profile paper`` means the same thing for every experiment
without per-experiment tables.

Explicit ``--set`` overrides always win over the profile.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.core.exceptions import InvalidParameterError

#: Field-name -> value maps.  ``paper`` restores the scale quoted in
#: the paper's §6 setup; ``smoke`` shrinks every knob for CI.
PROFILES: Dict[str, Dict[str, Any]] = {
    "paper": {
        "runs": 5000,
        "lookups_per_run": 5000,
        "lookups_per_instance": 10000,
        "lookups": 10000,
        "updates_per_run": 20000,
    },
    "smoke": {
        "runs": 2,
        "lookups_per_run": 50,
        "lookups_per_instance": 100,
        "lookups": 100,
        "updates_per_run": 200,
        "churn_updates": 100,
        "update_trace_length": 100,
        "events": 300,
        "audit_lookups": 10,
        "small_lookups": 50,
        "crawler_lookups": 10,
    },
}


def profile_overrides(config_class: type, profile: str) -> Dict[str, Any]:
    """The profile's overrides restricted to ``config_class``'s fields."""
    try:
        values = PROFILES[profile]
    except KeyError:
        raise InvalidParameterError(
            f"unknown profile {profile!r}; "
            f"available: {', '.join(sorted(PROFILES))}"
        ) from None
    names = {f.name for f in dataclasses.fields(config_class)}
    return {name: value for name, value in values.items() if name in names}
