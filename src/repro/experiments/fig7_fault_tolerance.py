"""Figure 7: worst-case fault tolerance vs target answer size.

Paper setup: 100 entries, 10 servers, 200-entry budget
(RandomServer-20, Hash-2, Round-2), targets 10..50, fault tolerance
computed with the Appendix A greedy adversary, averaged over 5000
placements.

Expected shape: Round-2 loses one tolerable failure per 10 of target
(the ``n − ⌈tn/h⌉ + y − 1`` closed form); RandomServer-20 sits above
it (random overlaps provide accidental redundancy); Hash-2 declines in
an S-shape and is the worst through mid targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from repro.analysis.formulas import (
    fault_tolerance_round_robin,
    solve_x_from_budget,
    solve_y_from_budget,
)
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs_multi
from repro.metrics.fault_tolerance import greedy_fault_tolerance
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class Fig7Config:
    entry_count: int = 100
    server_count: int = 10
    storage_budget: int = 200
    targets: Tuple[int, ...] = (10, 15, 20, 25, 30, 35, 40, 45, 50)
    #: Placements per data point (paper: 5000).
    runs: int = 50
    seed: int = 7


def measure_point(config: Fig7Config, target: int, seed: int) -> Dict[str, float]:
    """One placement of each scheme; greedy fault tolerance at ``target``."""
    x = solve_x_from_budget(config.storage_budget, config.server_count)
    y = solve_y_from_budget(config.storage_budget, config.entry_count)
    cluster = Cluster(config.server_count, seed=seed)
    entries = make_entries(config.entry_count)
    strategies = {
        f"random_server_{x}": RandomServerX(cluster, x=x, key="rs"),
        f"hash_{y}": HashY(cluster, y=y, key="h"),
        f"round_robin_{y}": RoundRobinY(cluster, y=y, key="rr"),
    }
    samples: Dict[str, float] = {}
    for label, strategy in strategies.items():
        strategy.place(entries)
        samples[label] = float(greedy_fault_tolerance(strategy, target))
    return samples


def run(
    config: Fig7Config = Fig7Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Figure 7's fault-tolerance series."""
    x = solve_x_from_budget(config.storage_budget, config.server_count)
    y = solve_y_from_budget(config.storage_budget, config.entry_count)
    labels = [f"random_server_{x}", f"hash_{y}", f"round_robin_{y}"]
    result = ExperimentResult(
        name="Figure 7: fault tolerance vs target answer size",
        headers=["target"] + labels + ["round_robin_formula"],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "budget": config.storage_budget,
            "runs": config.runs,
        },
    )
    with make_executor(jobs) as executor:
        for target in config.targets:
            averaged = average_runs_multi(
                partial(measure_point, config, target),
                master_seed=config.seed + target,
                runs=config.runs,
                executor=executor,
            )
            row: Dict[str, object] = {"target": target}
            for label in labels:
                row[label] = round(averaged[label].mean, 3)
            row["round_robin_formula"] = fault_tolerance_round_robin(
                target, config.entry_count, config.server_count, y
            )
            result.rows.append(row)
    return result
