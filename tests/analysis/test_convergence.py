"""Unit tests for the run-count convergence planner."""

import random

import pytest

from repro.analysis.convergence import plan_runs
from repro.core.exceptions import InvalidParameterError


class TestPlanRuns:
    def test_loose_target_already_converged(self):
        plan = plan_runs([10.0, 10.1, 9.9, 10.0], 0.10)
        assert plan.already_converged
        assert plan.additional_runs == 0

    def test_tight_target_needs_more_runs(self):
        plan = plan_runs([10.0, 12.0, 8.0, 11.0, 9.0], 0.001)
        assert not plan.already_converged
        assert plan.required_runs > plan.pilot_samples
        assert plan.additional_runs == plan.required_runs - 5

    def test_required_runs_scale_inverse_square(self):
        pilot = [10.0, 12.0, 8.0, 11.0, 9.0, 10.5]
        loose = plan_runs(pilot, 0.02).required_runs
        tight = plan_runs(pilot, 0.01).required_runs
        assert tight == pytest.approx(4 * loose, rel=0.1)

    def test_zero_variance_pilot(self):
        plan = plan_runs([5.0, 5.0, 5.0], 0.01)
        assert plan.required_runs == 2  # nothing to average away
        assert plan.already_converged

    def test_prediction_is_roughly_right(self):
        """Follow the plan; the achieved CI should be near target."""
        rng = random.Random(1)

        def sample():
            return rng.gauss(100.0, 10.0)

        pilot = [sample() for _ in range(30)]
        plan = plan_runs(pilot, target_relative_half_width=0.01)
        full = [sample() for _ in range(plan.required_runs)]
        from repro.analysis.confidence import mean_confidence_interval

        achieved = mean_confidence_interval(full).relative_half_width
        assert achieved < 0.02  # within 2x of the 1% target

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            plan_runs([1.0], 0.01)
        with pytest.raises(InvalidParameterError):
            plan_runs([1.0, 2.0], 0.0)
        with pytest.raises(InvalidParameterError):
            plan_runs([1.0, -1.0], 0.01)  # mean zero
        with pytest.raises(InvalidParameterError):
            plan_runs([1.0, 2.0], 0.01, level=0.5)
