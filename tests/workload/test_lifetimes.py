"""Unit tests for the lifetime distributions (§6.1)."""

import math
import random
import statistics

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.workload.lifetimes import (
    ExponentialLifetime,
    FixedLifetime,
    ZipfLifetime,
)


class TestExponential:
    def test_mean_property(self):
        assert ExponentialLifetime(1000.0).mean == 1000.0

    def test_sample_mean_converges(self):
        dist = ExponentialLifetime(1000.0)
        rng = random.Random(1)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert abs(statistics.mean(samples) - 1000.0) < 30.0

    def test_samples_positive(self):
        dist = ExponentialLifetime(10.0)
        rng = random.Random(2)
        assert all(dist.sample(rng) > 0 for _ in range(1000))

    def test_invalid_mean(self):
        with pytest.raises(InvalidParameterError):
            ExponentialLifetime(0.0)


class TestZipf:
    def test_scaled_cutoff_gives_target_mean(self):
        dist = ZipfLifetime(1000.0)
        assert dist.mean == pytest.approx(1000.0, rel=1e-6)
        # Solved cutoff is much larger than the naive C = mean.
        assert dist.cutoff > 5000

    def test_paper_literal_mode(self):
        dist = ZipfLifetime(1000.0, paper_literal=True)
        assert dist.cutoff == 1000.0
        # The paper's C = λh gives mean (C-1)/ln(C) ≈ 144.6, not 1000.
        assert dist.mean == pytest.approx((1000 - 1) / math.log(1000), rel=1e-9)

    def test_samples_within_support(self):
        dist = ZipfLifetime(1000.0)
        rng = random.Random(3)
        for _ in range(2000):
            sample = dist.sample(rng)
            assert 1.0 <= sample <= dist.cutoff

    def test_sample_mean_converges(self):
        dist = ZipfLifetime(1000.0)
        rng = random.Random(4)
        samples = [dist.sample(rng) for _ in range(60000)]
        assert abs(statistics.mean(samples) - 1000.0) / 1000.0 < 0.05

    def test_heavier_tail_than_exponential(self):
        # P(lifetime < mean/10) is much larger for the Zipf-like
        # distribution: most entries are short-lived, a few enormous.
        zipf = ZipfLifetime(1000.0)
        expo = ExponentialLifetime(1000.0)
        rng = random.Random(5)
        zipf_short = sum(zipf.sample(rng) < 100 for _ in range(5000)) / 5000
        expo_short = sum(expo.sample(rng) < 100 for _ in range(5000)) / 5000
        assert zipf_short > expo_short + 0.2

    def test_inverse_cdf_shape(self):
        # F(t) = ln t / ln C: the median sample should be sqrt(C).
        dist = ZipfLifetime(1000.0)
        rng = random.Random(6)
        samples = sorted(dist.sample(rng) for _ in range(20001))
        median = samples[10000]
        assert median == pytest.approx(math.sqrt(dist.cutoff), rel=0.15)

    def test_mean_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            ZipfLifetime(1.0)


class TestFixed:
    def test_constant(self):
        dist = FixedLifetime(42.0)
        rng = random.Random(1)
        assert {dist.sample(rng) for _ in range(10)} == {42.0}
        assert dist.mean == 42.0

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            FixedLifetime(-1.0)
