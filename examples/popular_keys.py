"""Popular keys: a multi-key directory under Zipf-skewed traffic.

The single-key experiments isolate scheme behaviour; a deployed
directory serves many keys whose popularity follows the classic Zipf
skew (the paper's "popular song").  This example drives one directory
through a skewed multi-key workload and shows two things:

1. per-key traffic concentrates massively on the head keys, and
2. per-*server* load nonetheless stays even, because every key's
   partial lookups spread over all servers — the conclusion's
   hot-spot insensitivity, now at directory scale.

Run:  python examples/popular_keys.py
"""

import random

from repro import Cluster, PartialLookupDirectory
from repro.experiments.report import render_table
from repro.workload.keys import MultiKeyWorkloadGenerator, apply_workload

KEYS = 20
OPERATIONS = 3000


def main() -> None:
    generator = MultiKeyWorkloadGenerator(
        key_count=KEYS,
        entries_per_key=40,
        popularity_skew=1.0,
        lookup_target=3,
        update_fraction=0.05,
        rng=random.Random(123),
    )
    workload = generator.generate(OPERATIONS)

    cluster = Cluster(10, seed=123)
    directory = PartialLookupDirectory(
        cluster, default_strategy="round_robin", default_params={"y": 2}
    )
    failures = apply_workload(directory, workload)

    # Per-key traffic: the Zipf head dominates.
    counts = workload.per_key_counts()
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    rows = [
        {
            "key": key,
            "operations": count,
            "share_pct": round(100 * count / len(workload.operations), 1),
        }
        for key, count in top
    ]
    print(render_table(
        ["key", "operations", "share_pct"], rows,
        title=f"Traffic concentration over {KEYS} keys (Zipf s=1.0)",
    ))

    # Per-server load: still flat.
    per_server = cluster.network.stats.per_server
    total = sum(per_server.values())
    rows = [
        {
            "server": sid,
            "messages": per_server.get(sid, 0),
            "share_pct": round(100 * per_server.get(sid, 0) / total, 1),
        }
        for sid in range(cluster.size)
    ]
    print()
    print(render_table(
        ["server", "messages", "share_pct"], rows,
        title="Per-server load under the same workload (ideal 10%)",
    ))
    print(f"\nlookup failures across all keys: {sum(failures.values())}")
    print(
        "\nThe head key takes ~25% of directory traffic, yet no server\n"
        "takes much more than 1/n of the message load - partial lookup\n"
        "spreads every key's reads across the whole cluster, so key\n"
        "popularity never becomes server load (paper conclusion).\n"
    )


if __name__ == "__main__":
    main()
