"""Sans-IO protocol cores shared by the simulator and the network service.

The paper's ``partial_lookup(k, t)`` protocol is a pure state machine:
a client contacts servers in some order, merges distinct entries from
each reply, stops once the target is met, and (in this reproduction)
makes bounded retry passes over unanswered servers.  None of that
depends on *how* messages move.  This package isolates the protocol
from transport, following the sans-IO pattern:

- :class:`~repro.protocol.lookup.LookupSession` — the client-side
  walk.  It consumes :mod:`events <repro.protocol.events>` (a reply
  arrived, a contact failed, a backoff elapsed) and emits
  :mod:`effects <repro.protocol.effects>` (send this request, sleep
  this long, record this trace event, complete with this result).
- :class:`~repro.protocol.server.ServerProtocol` — the server-side
  request core: idempotent delivery dedupe plus dispatch of
  lookup/update/verify messages to the installed per-key logic.

Drivers pump the machines:

- the simulated path (:class:`repro.cluster.client.Client` over
  :class:`repro.cluster.network.Network`) enacts effects synchronously
  and *accounts* sleeps without enacting them;
- the asyncio path (:mod:`repro.net`) enacts the same effects over
  real sockets with real timeouts as the backoff clock.

All randomness is injected (``rng`` parameters), so a seeded session
replays bit-for-bit regardless of the driver.
"""

from repro.protocol.effects import (
    Complete,
    Effect,
    Reply,
    SendRequest,
    Sleep,
    SpanEnd,
    SpanEvent,
    SpanStart,
)
from repro.protocol.events import (
    SLEPT,
    ContactFailed,
    Event,
    MessageReceived,
    ReplyReceived,
    Slept,
)
from repro.protocol.lookup import (
    LookupSession,
    ProtocolStateError,
    random_order,
    stride_order,
)
from repro.protocol.server import ServerProtocol, answer_lookup

__all__ = [
    "Complete",
    "ContactFailed",
    "Effect",
    "Event",
    "LookupSession",
    "MessageReceived",
    "ProtocolStateError",
    "Reply",
    "ReplyReceived",
    "SLEPT",
    "SendRequest",
    "ServerProtocol",
    "Sleep",
    "Slept",
    "SpanEnd",
    "SpanEvent",
    "SpanStart",
    "answer_lookup",
    "random_order",
    "stride_order",
]
