"""Discrete-event simulation substrate (paper §6.1).

The paper studies dynamic behaviour by generating timestamped add and
delete events in advance and replaying them.  This package provides the
event types, a heap-based engine with a virtual clock, and the trace
replay driver used by every dynamic experiment.
"""

from repro.simulation.engine import SimulationEngine
from repro.simulation.events import (
    AddEvent,
    DeleteEvent,
    Event,
    FailureEvent,
    LookupEvent,
    ProbeEvent,
    RecoveryEvent,
)
from repro.simulation.replay import TraceReplayer, TraceStats
from repro.simulation.rng import RngStreams

__all__ = [
    "SimulationEngine",
    "Event",
    "AddEvent",
    "DeleteEvent",
    "LookupEvent",
    "FailureEvent",
    "RecoveryEvent",
    "ProbeEvent",
    "TraceReplayer",
    "TraceStats",
    "RngStreams",
]
