"""One module per table/figure of the paper's evaluation.

Every experiment module exposes:

- a ``*Config`` dataclass with the paper's parameters as defaults
  (scaled-down run counts so the suite completes in minutes; pass the
  paper's counts for full-fidelity runs), and
- a ``run(config) -> ExperimentResult`` function that regenerates the
  table's rows / figure's series, plus helpers the benchmarks reuse.

The mapping to the paper (see DESIGN.md §3 for the full index):

=========================================  =====================
Module                                     Paper artifact
=========================================  =====================
:mod:`~repro.experiments.table1_storage`   Table 1
:mod:`~repro.experiments.fig4_lookup_cost` Figure 4
:mod:`~repro.experiments.fig6_coverage`    Figure 6
:mod:`~repro.experiments.fig7_fault_tolerance`  Figure 7
:mod:`~repro.experiments.fig9_unfairness`  Figure 9
:mod:`~repro.experiments.fig12_cushion`    Figure 12
:mod:`~repro.experiments.fig13_dynamic_unfairness`  Figure 13
:mod:`~repro.experiments.fig14_update_overhead`  Figure 14
:mod:`~repro.experiments.table2_summary`   Table 2
=========================================  =====================
"""

from repro.experiments.runner import ExperimentResult, average_runs, seeded_runs
from repro.experiments.report import render_series, render_table

__all__ = [
    "ExperimentResult",
    "average_runs",
    "seeded_runs",
    "render_table",
    "render_series",
]
