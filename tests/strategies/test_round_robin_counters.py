"""Tests for the §5.4-footnote replicated head/tail counters."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.core.exceptions import (
    InvalidParameterError,
    NoOperationalServerError,
)
from repro.strategies.round_robin import RoundRobinY


def _replica_invariant(strategy, y):
    counts = strategy.cluster.replica_counts("k")
    assert all(count == y for count in counts.values())


@pytest.fixture
def strategy():
    s = RoundRobinY(Cluster(10, seed=21), y=2, counter_replicas=3)
    s.place(make_entries(30))
    return s


class TestMirroring:
    def test_counters_on_every_replica_after_place(self, strategy):
        for replica in range(3):
            state = strategy.cluster.server(replica).state("k")
            assert state.get("head") == 0
            assert state.get("tail") == 30

    def test_add_mirrors_tail(self, strategy):
        strategy.add(Entry("new"))
        for replica in range(3):
            assert strategy.cluster.server(replica).state("k")["tail"] == 31

    def test_delete_mirrors_head(self, strategy):
        strategy.delete(Entry("v10"))
        for replica in range(3):
            assert strategy.cluster.server(replica).state("k")["head"] == 1

    def test_non_replica_servers_hold_no_counters(self, strategy):
        strategy.add(Entry("new"))
        assert "tail" not in strategy.cluster.server(5).state("k")

    def test_mirroring_costs_messages(self):
        single = RoundRobinY(Cluster(10, seed=1), y=2, key="a")
        triple = RoundRobinY(
            Cluster(10, seed=1), y=2, key="b", counter_replicas=3
        )
        single.place(make_entries(10))
        triple.place(make_entries(10))
        cheap = single.add(Entry("n")).messages
        mirrored = triple.add(Entry("n")).messages
        # Two counter queries (pre-sequencing sync) plus two mirror
        # updates — the consistency overhead the paper's footnote
        # warns about.
        assert mirrored == cheap + 4


class TestFailover:
    def test_updates_survive_counter_host_failure(self, strategy):
        strategy.cluster.fail(0)
        strategy.add(Entry("after-failure"))
        assert Entry("after-failure") in strategy.lookup_all()
        assert strategy.tail == 31  # read from replica 1
        # Note: the copy destined for the failed server is lost until
        # some repair process runs — the paper's protocols do not
        # replicate stores on failure, only the counters.

    def test_deletes_survive_counter_host_failure(self, strategy):
        # Fail the primary before the delete; replica 1 sequences it.
        strategy.cluster.fail(0)
        victim = Entry("v20")
        strategy.delete(victim)
        assert victim not in strategy.lookup_all()

    def test_unreplicated_counters_are_a_single_point_of_failure(self):
        plain = RoundRobinY(Cluster(10, seed=22), y=2)
        plain.place(make_entries(10))
        plain.cluster.fail(0)
        with pytest.raises(NoOperationalServerError):
            plain.add(Entry("lost"))

    def test_all_replicas_down_raises(self, strategy):
        strategy.cluster.fail_many([0, 1, 2])
        with pytest.raises(NoOperationalServerError):
            strategy.add(Entry("lost"))

    def test_recovered_primary_catches_up_on_next_update(self, strategy):
        strategy.cluster.fail(0)
        strategy.add(Entry("a"))   # sequenced by replica 1
        strategy.cluster.recover(0)
        strategy.add(Entry("b"))   # replica 0 is stale...
        # ...but the mirror-on-update repropagates authoritative
        # values, so reads through the primary converge.
        assert strategy.cluster.server(1).state("k")["tail"] == 32


class TestValidation:
    def test_replica_bounds(self):
        with pytest.raises(InvalidParameterError):
            RoundRobinY(Cluster(5, seed=1), y=1, counter_replicas=0)
        with pytest.raises(InvalidParameterError):
            RoundRobinY(Cluster(5, seed=1), y=1, counter_replicas=6)

    def test_params_reports_replicas(self):
        strategy = RoundRobinY(Cluster(5, seed=1), y=1, counter_replicas=2)
        assert strategy.params()["counter_replicas"] == 2
