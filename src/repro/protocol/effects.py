"""Output effects emitted by the sans-IO protocol state machines.

Effects are what a state machine asks its driver to *do*: send a
request, sleep for a backoff, record a trace event, finish with a
result.  A machine never performs I/O itself; it returns a batch of
effects and waits for the next :mod:`event <repro.protocol.events>`.

Within one batch, at most one effect requires a response from the
driver (:class:`SendRequest` or :class:`Sleep`) and it is always the
last element, so drivers can process a batch front to back and then
wait for exactly one outcome.  :class:`Complete` and :class:`Reply`
are terminal — no further events are expected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.result import LookupResult
    from repro.cluster.messages import LookupRequest


class Effect:
    """Base class for protocol output effects."""

    __slots__ = ()


class SendRequest(Effect):
    """Deliver ``request`` about ``key`` to server ``server_id``.

    The driver must answer with a
    :class:`~repro.protocol.events.ReplyReceived` or
    :class:`~repro.protocol.events.ContactFailed` event.
    """

    __slots__ = ("server_id", "key", "request")

    def __init__(self, server_id: int, key: str, request: "LookupRequest") -> None:
        self.server_id = server_id
        self.key = key
        self.request = request

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SendRequest(server={self.server_id}, key={self.key!r})"


class Sleep(Effect):
    """Wait ``delay`` time units before the next retry pass.

    The asyncio driver enacts this with a real ``asyncio.sleep``; the
    simulated driver only accounts it (the session tracks the running
    backoff total itself).  The driver must answer with
    :data:`~repro.protocol.events.SLEPT`.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sleep({self.delay!r})"


class SpanStart(Effect):
    """Open the session's tracing span (emitted only when tracing)."""

    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: Dict[str, Any]) -> None:
        self.name = name
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanStart({self.name!r}, {self.fields!r})"


class SpanEvent(Effect):
    """Record an instantaneous event inside the session's span."""

    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: Dict[str, Any]) -> None:
        self.name = name
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, {self.fields!r})"


class SpanEnd(Effect):
    """Close the session's tracing span with summary ``fields``."""

    __slots__ = ("fields",)

    def __init__(self, fields: Dict[str, Any]) -> None:
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEnd({self.fields!r})"


class SendHeartbeat(Effect):
    """Exchange a heartbeat with ``peer``.

    The driver sends this node's heartbeat (obtained from the
    membership machine's ``wire_view()`` / incarnation) to the named
    peer and, if the peer answers with its own heartbeat, feeds it
    back as a :class:`~repro.protocol.events.HeartbeatSeen` event.
    No response is *required* — silence is itself the signal the
    failure detector consumes.
    """

    __slots__ = ("peer",)

    def __init__(self, peer: str) -> None:
        self.peer = peer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SendHeartbeat({self.peer!r})"


class PeerTransition(Effect):
    """A peer changed membership state at time ``at``.

    ``old_state`` is ``None`` when the peer was just discovered.  The
    driver forwards these to the observability layer
    (:class:`~repro.obs.membership.MembershipObserver`) and the
    router's view cache; the machine itself has already recorded the
    new state.
    """

    __slots__ = ("peer", "old_state", "new_state", "incarnation", "at")

    def __init__(
        self,
        peer: str,
        old_state: "str | None",
        new_state: str,
        incarnation: int,
        at: float,
    ) -> None:
        self.peer = peer
        self.old_state = old_state
        self.new_state = new_state
        self.incarnation = incarnation
        self.at = at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeerTransition({self.peer!r}, {self.old_state!r} -> "
            f"{self.new_state!r}, inc={self.incarnation}, at={self.at!r})"
        )


class Complete(Effect):
    """The lookup finished; ``result`` is the final LookupResult."""

    __slots__ = ("result",)

    def __init__(self, result: "LookupResult") -> None:
        self.result = result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Complete({self.result!r})"


class Reply(Effect):
    """The server protocol's answer to one received message."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Reply({self.value!r})"
