"""Run-averaged means with confidence intervals (paper §6.1).

The paper averages 5000 runs per data point and notes the 95% CI is
always under 0.1% of the mean.  Experiments here run fewer repetitions
by default, so we *report* the interval instead of hiding it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.exceptions import InvalidParameterError

#: Two-sided z critical values for common confidence levels; a normal
#: approximation is appropriate at the paper's run counts and keeps
#: scipy optional.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with its two-sided confidence half-width."""

    mean: float
    half_width: float
    level: float
    samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (paper: < 0.001)."""
        if self.mean == 0:
            return 0.0 if self.half_width == 0 else math.inf
        return abs(self.half_width / self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.half_width:.3g} ({self.level:.0%} CI)"


def mean_confidence_interval(
    samples: Sequence[float], level: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation CI for the mean of ``samples``.

    >>> ci = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
    >>> ci.mean
    2.5
    >>> ci.low < 2.5 < ci.high
    True
    """
    if not samples:
        raise InvalidParameterError("need at least one sample")
    if level not in _Z_VALUES:
        raise InvalidParameterError(
            f"supported levels: {sorted(_Z_VALUES)}; got {level}"
        )
    count = len(samples)
    mean = sum(samples) / count
    if count == 1:
        return ConfidenceInterval(mean, 0.0, level, 1)
    variance = sum((s - mean) ** 2 for s in samples) / (count - 1)
    half_width = _Z_VALUES[level] * math.sqrt(variance / count)
    return ConfidenceInterval(mean, half_width, level, count)
