"""CLI faces for the network service: ``repro serve`` and ``repro call``.

``serve`` runs a :class:`~repro.net.service.LookupService` in the
foreground until interrupted; ``call`` connects an
:class:`~repro.net.client.AsyncLookupClient` and issues partial
lookups.  Both are registered as subcommands of the main ``repro``
parser (see :mod:`repro.experiments.cli`); the handlers here follow
the same convention — take the parsed namespace, return an exit code.

The ``--ready-file`` flag makes ``serve`` write ``host port\\n`` once
the socket is bound.  With ``--port 0`` (an ephemeral port) this is
the only way a supervisor can learn the address; the CI smoke job and
``scripts/net_smoke.py`` rely on it.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import random
import signal
import sys
from typing import Optional

from repro.cluster.client import RetryPolicy
from repro.net.client import AsyncLookupClient, ServiceError
from repro.net.service import DEFAULT_SCHEMES, LookupService, ServiceConfig


def add_serve_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run the asyncio lookup service on a socket",
        description=(
            "Host all five paper schemes behind one listening socket. "
            "Runs until interrupted (SIGINT/SIGTERM)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7421, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--servers", type=int, default=16, help="cluster size n"
    )
    parser.add_argument(
        "--entries", type=int, default=40, help="entries placed per scheme"
    )
    parser.add_argument("--seed", type=int, default=0, help="cluster RNG seed")
    parser.add_argument(
        "--ready-file",
        default=None,
        help="write 'host port' here once the socket is bound",
    )
    parser.set_defaults(handler=cmd_serve)


def add_call_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "call",
        help="issue partial lookups against a running service",
        description=(
            "Connect to a repro serve instance and run partial lookups "
            "under one scheme, printing a JSON summary."
        ),
    )
    parser.add_argument(
        "scheme",
        choices=sorted(DEFAULT_SCHEMES),
        help="which hosted scheme to look up under",
    )
    parser.add_argument("--host", default="127.0.0.1", help="service address")
    parser.add_argument("--port", type=int, default=7421, help="service port")
    parser.add_argument(
        "--target", type=int, default=10, help="entries to retrieve per lookup"
    )
    parser.add_argument(
        "--count", type=int, default=1, help="number of lookups to run"
    )
    parser.add_argument("--seed", type=int, default=None, help="client RNG seed")
    parser.add_argument(
        "--timeout", type=float, default=5.0, help="per-request reply timeout (s)"
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="max lookup attempts (1 = the paper's single pass)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also fetch the service's coverage/storage invariants",
    )
    parser.set_defaults(handler=cmd_call)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the service until SIGINT/SIGTERM."""
    return asyncio.run(_serve_async(args))


async def _serve_async(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        server_count=args.servers,
        entry_count=args.entries,
        seed=args.seed,
    )
    service = LookupService(config)
    host, port = await service.start(host=args.host, port=args.port)
    if args.ready_file:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(f"{host} {port}\n")
    print(
        f"[serve] {len(service.strategies)} schemes on {config.server_count} "
        f"servers, listening on {host}:{port}",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signame in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signame, stop.set)
    try:
        await stop.wait()
    finally:
        await service.stop()
        print("[serve] stopped", flush=True)
    return 0


def cmd_call(args: argparse.Namespace) -> int:
    try:
        return asyncio.run(_call_async(args))
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach service: {exc}", file=sys.stderr)
        return 1


async def _call_async(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed) if args.seed is not None else None
    policy: Optional[RetryPolicy] = None
    if args.retries > 1:
        policy = RetryPolicy(max_attempts=args.retries)
    client = AsyncLookupClient(
        args.host,
        args.port,
        rng=rng,
        timeout=args.timeout,
        retry_policy=policy,
    )
    async with client:
        try:
            info = await client.info()
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        lookups = []
        for _ in range(args.count):
            result = await client.lookup(args.scheme, args.target)
            lookups.append(
                {
                    "entries": sorted(e.entry_id for e in result.entries),
                    "found": len(result.entries),
                    "target": result.target,
                    "success": result.success,
                    "degraded": result.degraded,
                    "messages": result.messages,
                    "retries": result.retries,
                    "servers_contacted": list(result.servers_contacted),
                }
            )
        summary = {
            "scheme": args.scheme,
            "service": {"servers": info.servers, "entries": info.entries},
            "lookups": lookups,
            "all_success": all(l["success"] for l in lookups),
        }
        if args.verify:
            summary["verify"] = await client.verify(args.scheme)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if summary["all_success"] else 2


__all__ = ["add_call_parser", "add_serve_parser", "cmd_call", "cmd_serve"]
