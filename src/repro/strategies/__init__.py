"""The paper's five placement strategies plus the scheme selector.

Each strategy manages the entries of a *single* key on a
:class:`~repro.cluster.cluster.Cluster` (Section 2: "we focus here on
strategies that manage only one key"); the multi-key facade in
:mod:`repro.core.service` composes them.
"""

from repro.strategies.base import PlacementStrategy, StrategyLogic
from repro.strategies.full_replication import FullReplication
from repro.strategies.fixed import FixedX
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY
from repro.strategies.hashing import HashY
from repro.strategies.registry import (
    STRATEGY_REGISTRY,
    available_strategies,
    create_strategy,
)
from repro.strategies.selector import (
    SchemeRecommendation,
    WorkloadProfile,
    classify,
    recommend,
)

__all__ = [
    "PlacementStrategy",
    "StrategyLogic",
    "FullReplication",
    "FixedX",
    "RandomServerX",
    "RoundRobinY",
    "HashY",
    "STRATEGY_REGISTRY",
    "available_strategies",
    "create_strategy",
    "WorkloadProfile",
    "SchemeRecommendation",
    "classify",
    "recommend",
]
