"""The exact estimators against Monte-Carlo, across the fig9 grid.

The closed forms in :mod:`repro.analysis.exact` claim to be the exact
probability law of ``partial_lookup(target)`` — not an approximation —
so each one is held against a large-sample MC estimate of the same
instance and must agree within sampling tolerance.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.exact import (
    exact_lookup_cost,
    exact_retrieval_probabilities,
)
from repro.analysis.formulas import solve_x_from_budget, solve_y_from_budget
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.metrics.lookup_cost import estimate_lookup_cost
from repro.metrics.unfairness import (
    estimate_unfairness,
    exact_unfairness_uniform_subset,
    retrieval_probabilities,
)
from repro.strategies.base import LookupProfile
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY

H, N, TARGET = 100, 10, 35
FIG9_BUDGETS = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
MC_LOOKUPS = 10000
#: ~5 sigma on a Bernoulli probability at 10k samples.
TOLERANCE = 0.025


def _placed(build, seed=77):
    cluster = Cluster(N, seed=seed)
    strategy = build(cluster)
    entries = make_entries(H)
    strategy.place(entries)
    return strategy, entries


def _assert_exact_matches_mc(strategy, entries, target=TARGET):
    exact = exact_retrieval_probabilities(strategy, target, entries)
    assert exact is not None, "expected an exact form for this instance"
    mc = retrieval_probabilities(strategy, target, entries, MC_LOOKUPS)
    worst = max(abs(exact[e] - mc[e]) for e in entries)
    assert worst < TOLERANCE, f"exact vs MC diverge by {worst:.4f}"


@pytest.mark.parametrize("budget", FIG9_BUDGETS)
def test_fixed_exact_matches_mc_across_fig9_grid(budget):
    x = solve_x_from_budget(budget, N)
    strategy, entries = _placed(lambda c: FixedX(c, x=x))
    _assert_exact_matches_mc(strategy, entries)


@pytest.mark.parametrize("budget", FIG9_BUDGETS)
def test_round_robin_exact_matches_mc_across_fig9_grid(budget):
    y = solve_y_from_budget(budget, H)
    strategy, entries = _placed(lambda c: RoundRobinY(c, y=y))
    _assert_exact_matches_mc(strategy, entries)


def test_full_replication_exact_matches_mc():
    strategy, entries = _placed(FullReplication)
    _assert_exact_matches_mc(strategy, entries)


def test_exact_probabilities_sum_to_expected_answer_size():
    # With disjoint stores covering everything and t reachable, the
    # answer always has exactly t entries, so sum(p) == t.
    strategy, entries = _placed(lambda c: RoundRobinY(c, y=1))
    exact = exact_retrieval_probabilities(strategy, TARGET, entries)
    assert math.isclose(sum(exact.values()), TARGET, abs_tol=1e-9)


class _RandomWalkRoundRobin(RoundRobinY):
    """Round-robin placement, but a random full-walk lookup.

    Exercises the exchangeability DP regime (random order, no cap,
    pairwise-disjoint stores) against a real skeleton lookup.
    """

    def partial_lookup(self, target):
        return self.client.lookup(self.key, target, order="random")

    def lookup_profile(self):
        return LookupProfile(order="random")


@pytest.mark.parametrize("target", [5, 15, 35, 95])
def test_random_walk_dp_matches_mc(target):
    strategy, entries = _placed(lambda c: _RandomWalkRoundRobin(c, y=1))
    _assert_exact_matches_mc(strategy, entries, target)


def test_random_walk_dp_refuses_overlapping_stores():
    # y=2 makes adjacent stores share entries; the DP must decline.
    strategy, entries = _placed(lambda c: _RandomWalkRoundRobin(c, y=2))
    assert exact_retrieval_probabilities(strategy, TARGET, entries) is None


def test_stochastic_strategies_have_no_exact_form():
    for build in (lambda c: RandomServerX(c, x=20), lambda c: HashY(c, y=2)):
        strategy, entries = _placed(build)
        assert exact_retrieval_probabilities(strategy, TARGET, entries) is None
        with pytest.raises(InvalidParameterError):
            estimate_unfairness(strategy, TARGET, entries, estimator="exact")


def test_estimate_unfairness_estimator_knob():
    strategy, entries = _placed(lambda c: FixedX(c, x=20))
    mc = estimate_unfairness(strategy, TARGET, entries, lookups=MC_LOOKUPS)
    strategy, entries = _placed(lambda c: FixedX(c, x=20))
    exact = estimate_unfairness(strategy, TARGET, entries, estimator="exact")
    assert exact.lookups == 0  # closed form: no MC lookups issued
    assert mc.lookups == MC_LOOKUPS
    assert abs(exact.unfairness - mc.unfairness) < TOLERANCE
    # Fixed-20, t=35 > x: every covered entry is returned surely.
    assert math.isclose(
        exact.unfairness,
        math.sqrt((20 * 0.65**2 + 80 * 0.35**2) / 100) * (100 / 35),
    )
    with pytest.raises(InvalidParameterError):
        estimate_unfairness(strategy, TARGET, entries, estimator="bogus")


@pytest.mark.parametrize(
    "build,expected_mean",
    [
        (lambda c: FixedX(c, x=20), 1.0),
        (lambda c: RoundRobinY(c, y=2), 2.0),  # 20-entry stores: ceil(35/20)
    ],
)
def test_exact_lookup_cost_matches_mc(build, expected_mean):
    strategy, _ = _placed(build)
    exact = exact_lookup_cost(strategy, TARGET)
    assert exact is not None
    assert exact.mean_cost == expected_mean
    strategy, _ = _placed(build)
    mc = estimate_lookup_cost(strategy, TARGET, 2000)
    assert math.isclose(exact.mean_cost, mc.mean_cost, abs_tol=0.05)
    assert math.isclose(exact.failure_rate, mc.failure_rate, abs_tol=0.05)


def test_exact_lookup_cost_declines_stochastic_schemes():
    strategy, _ = _placed(lambda c: HashY(c, y=2))
    assert exact_lookup_cost(strategy, TARGET) is None


def test_exact_uniform_subset_edge_cases():
    # Full coverage: perfectly fair, exactly zero.
    assert exact_unfairness_uniform_subset(100, 100, 35) == 0.0
    # t > covered: the formula's uniform-return model still yields
    # sqrt(h/covered - 1) — unchanged, by contract (the reference
    # column in fig9 relies on it even where clipping makes the true
    # instance fairer).
    assert math.isclose(
        exact_unfairness_uniform_subset(10, 100, 35), math.sqrt(9.0)
    )
    with pytest.raises(InvalidParameterError):
        exact_unfairness_uniform_subset(0, 100, 35)
    with pytest.raises(InvalidParameterError):
        exact_unfairness_uniform_subset(101, 100, 35)


def test_duplicate_entry_ids_rejected():
    strategy, entries = _placed(lambda c: FixedX(c, x=20))
    bad = entries + [entries[0]]
    with pytest.raises(InvalidParameterError, match="duplicate entry id"):
        retrieval_probabilities(strategy, TARGET, bad, 10)
    with pytest.raises(InvalidParameterError, match="duplicate entry id"):
        exact_retrieval_probabilities(strategy, TARGET, bad)
