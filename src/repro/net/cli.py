"""CLI faces for the network service: ``repro serve`` and ``repro call``.

``serve`` runs a :class:`~repro.net.service.LookupService` in the
foreground until interrupted; ``call`` connects an
:class:`~repro.net.client.AsyncLookupClient` and issues partial
lookups.  Both are registered as subcommands of the main ``repro``
parser (see :mod:`repro.experiments.cli`); the handlers here follow
the same convention — take the parsed namespace, return an exit code.

The ``--ready-file`` flag makes ``serve`` write ``host port\\n`` once
the socket is bound.  With ``--port 0`` (an ephemeral port) this is
the only way a supervisor can learn the address; the CI smoke job and
``scripts/net_smoke.py`` rely on it.

Sharded deployments add ``serve --shard i/N --peers s0=host:port,...``
(one process per shard, heartbeating its peers) and ``call
--shards s0=host:port,...`` (route through the
:class:`~repro.net.router.ShardRouter` with membership-aware
failover).

Exit codes — ``call`` distinguishes outcomes so CI scripts can assert
on them without parsing stdout:

- 0: every lookup returned its full target.
- :data:`EXIT_DEGRADED` (3): at least one lookup came back short but
  non-empty (the partial-failure regime the paper is about).
- :data:`EXIT_FAILED` (4): at least one lookup returned nothing at
  all despite a positive target.
- 1: the service could not be reached; 2 is reserved for usage /
  :class:`~repro.core.exceptions.ReproError` failures in ``main``.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import random
import signal
import sys
import time
from typing import Dict, Optional, Tuple

from repro.cluster.client import RetryPolicy
from repro.core.exceptions import InvalidParameterError
from repro.net.cache import DEFAULT_CAPACITY as DEFAULT_CACHE_CAPACITY
from repro.net.client import AsyncLookupClient, ServiceError
from repro.net.membership import MembershipPump
from repro.net.router import ShardRouter
from repro.net.service import DEFAULT_SCHEMES, LookupService, ServiceConfig
from repro.net.workers import run_worker_fleet
from repro.protocol.membership import MembershipConfig

#: ``call`` exit code: some lookup was short but non-empty.
EXIT_DEGRADED = 3
#: ``call`` exit code: some lookup returned nothing (target > 0).
EXIT_FAILED = 4


def _parse_shard(spec: str) -> Tuple[int, int]:
    """Parse ``--shard i/N`` into ``(index, count)``."""
    try:
        index_text, count_text = spec.split("/", 1)
        return int(index_text), int(count_text)
    except ValueError:
        raise InvalidParameterError(
            f"--shard wants i/N (e.g. 0/3), got {spec!r}"
        ) from None


def _parse_endpoints(spec: str) -> Dict[str, Tuple[str, int]]:
    """Parse ``name=host:port,name=host:port,...``."""
    endpoints: Dict[str, Tuple[str, int]] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        try:
            name, address = item.split("=", 1)
            host, port_text = address.rsplit(":", 1)
            endpoints[name.strip()] = (host.strip(), int(port_text))
        except ValueError:
            raise InvalidParameterError(
                f"endpoint wants name=host:port, got {item!r}"
            ) from None
    if not endpoints:
        raise InvalidParameterError(f"no endpoints in {spec!r}")
    return endpoints


def add_serve_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run the asyncio lookup service on a socket",
        description=(
            "Host all five paper schemes behind one listening socket. "
            "Runs until interrupted (SIGINT/SIGTERM)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7421, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--servers", type=int, default=16, help="cluster size n"
    )
    parser.add_argument(
        "--entries", type=int, default=40, help="entries placed per scheme"
    )
    parser.add_argument("--seed", type=int, default=0, help="cluster RNG seed")
    parser.add_argument(
        "--ready-file",
        default=None,
        help="write 'host port' here once the socket is bound",
    )
    parser.add_argument(
        "--uvloop",
        action="store_true",
        help="run on uvloop when installed (falls back to asyncio)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fork N worker processes accepting on one port "
            "(SO_REUSEPORT; worker 0 applies all mutations)"
        ),
    )
    cache = parser.add_argument_group("reply cache")
    cache.add_argument(
        "--cache-size",
        type=int,
        default=DEFAULT_CACHE_CAPACITY,
        metavar="N",
        help="hot-key reply cache capacity per process (0 disables)",
    )
    cache.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the hot-key reply cache (same as --cache-size 0)",
    )
    cache.add_argument(
        "--shared-cache",
        dest="shared_cache",
        action="store_true",
        default=True,
        help=(
            "back the worker fleet's reply cache with one shared-memory "
            "segment so every worker sees every hit (default; binary "
            "codec only, --workers >= 2)"
        ),
    )
    cache.add_argument(
        "--no-shared-cache",
        dest="shared_cache",
        action="store_false",
        help="keep reply caches strictly per-process",
    )
    storage = parser.add_argument_group("storage")
    storage.add_argument(
        "--store",
        choices=("memory", "log"),
        default="memory",
        help=(
            "storage backend: 'memory' (default) or 'log' (append-log "
            "journal; crash recovery from --data-dir)"
        ),
    )
    storage.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="journal/snapshot directory (required with --store log)",
    )
    storage.add_argument(
        "--log-compact-records",
        type=int,
        default=4096,
        metavar="N",
        help="auto-compact the journal every N records (0 = never)",
    )
    shard = parser.add_argument_group("sharding")
    shard.add_argument(
        "--shard",
        default="0/1",
        metavar="I/N",
        help="this process's shard index out of N (default 0/1: unsharded)",
    )
    shard.add_argument(
        "--peers",
        default=None,
        metavar="NAME=HOST:PORT,...",
        help="the other shards' addresses (enables the membership plane)",
    )
    shard.add_argument(
        "--replicas", type=int, default=2, help="home-group size per key"
    )
    shard.add_argument(
        "--backup-fraction",
        type=float,
        default=0.25,
        help="fraction of a key's entries each backup shard holds",
    )
    shard.add_argument(
        "--probes", type=int, default=21, help="multi-probe hash probe count"
    )
    shard.add_argument(
        "--incarnation",
        type=int,
        default=None,
        help="boot incarnation (default: wall-clock seconds)",
    )
    timing = parser.add_argument_group("failure detection")
    timing.add_argument(
        "--heartbeat-interval", type=float, default=0.5, help="seconds between beats"
    )
    timing.add_argument(
        "--suspect-after", type=float, default=2.0, help="silence before suspect"
    )
    timing.add_argument(
        "--dead-after", type=float, default=5.0, help="silence before dead"
    )
    timing.add_argument(
        "--quarantine", type=float, default=3.0, help="rejoin probation seconds"
    )
    parser.set_defaults(handler=cmd_serve)


def add_call_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "call",
        help="issue partial lookups against a running service",
        description=(
            "Connect to a repro serve instance and run partial lookups "
            "under one scheme, printing a JSON summary."
        ),
    )
    parser.add_argument(
        "scheme",
        choices=sorted(DEFAULT_SCHEMES),
        help="which hosted scheme to look up under",
    )
    parser.add_argument("--host", default="127.0.0.1", help="service address")
    parser.add_argument("--port", type=int, default=7421, help="service port")
    parser.add_argument(
        "--target", type=int, default=10, help="entries to retrieve per lookup"
    )
    parser.add_argument(
        "--count", type=int, default=1, help="number of lookups to run"
    )
    parser.add_argument(
        "--codec",
        choices=("json", "binary", "auto"),
        default="json",
        help=(
            "wire codec: json (legacy, default), binary, or auto "
            "(negotiate, JSON fallback)"
        ),
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=1,
        metavar="N",
        help="pipeline lookups in batched windows of N (1 = sequential)",
    )
    parser.add_argument("--seed", type=int, default=None, help="client RNG seed")
    parser.add_argument(
        "--timeout", type=float, default=5.0, help="per-request reply timeout (s)"
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="max lookup attempts (1 = the paper's single pass)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also fetch the service's coverage/storage invariants",
    )
    parser.add_argument(
        "--shards",
        default=None,
        metavar="NAME=HOST:PORT,...",
        help="route through the shard fleet instead of one service",
    )
    parser.add_argument(
        "--replicas", type=int, default=2, help="home-group size per key (fleet mode)"
    )
    parser.add_argument(
        "--probes", type=int, default=21, help="multi-probe count (fleet mode)"
    )
    parser.set_defaults(handler=cmd_call)


def _config_from_args(args: argparse.Namespace) -> ServiceConfig:
    shard_index, shard_count = _parse_shard(args.shard)
    cache_size = 0 if getattr(args, "no_cache", False) else args.cache_size
    return ServiceConfig(
        server_count=args.servers,
        entry_count=args.entries,
        seed=args.seed,
        shard_index=shard_index,
        shard_count=shard_count,
        replicas=args.replicas,
        backup_fraction=args.backup_fraction,
        probes=args.probes,
        cache_size=cache_size,
        shared_cache=getattr(args, "shared_cache", True),
        store=getattr(args, "store", "memory"),
        data_dir=getattr(args, "data_dir", None),
        log_compact_records=getattr(args, "log_compact_records", 4096),
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the service until SIGINT/SIGTERM."""
    workers = getattr(args, "workers", 1)
    if workers < 1:
        raise InvalidParameterError(f"--workers must be >= 1, got {workers}")
    if workers > 1:
        if args.peers is not None:
            # Readers would heartbeat through stale per-process views;
            # the membership plane stays a one-process-per-shard affair.
            raise InvalidParameterError(
                "--workers does not combine with --peers; run one worker "
                "fleet per shard without the membership plane"
            )
        return run_worker_fleet(
            _config_from_args(args),
            host=args.host,
            port=args.port,
            workers=workers,
            ready_file=args.ready_file,
        )
    if getattr(args, "uvloop", False):
        try:
            import uvloop  # noqa: PLC0415 - optional accelerator
        except ImportError:
            print(
                "[serve] uvloop not installed; continuing on asyncio",
                file=sys.stderr,
                flush=True,
            )
        else:
            with asyncio.Runner(loop_factory=uvloop.new_event_loop) as runner:
                return runner.run(_serve_async(args))
    return asyncio.run(_serve_async(args))


async def _serve_async(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    shard_count = config.shard_count
    service = LookupService(config)
    pump: Optional[MembershipPump] = None
    if args.peers is not None:
        if shard_count < 2:
            raise InvalidParameterError("--peers requires --shard i/N with N > 1")
        peers = _parse_endpoints(args.peers)
        peers.pop(service.shard_name, None)
        incarnation = (
            args.incarnation if args.incarnation is not None else int(time.time())
        )
        pump = MembershipPump(
            service.shard_name,
            peers,
            config=MembershipConfig(
                heartbeat_interval=args.heartbeat_interval,
                suspect_after=args.suspect_after,
                dead_after=args.dead_after,
                quarantine=args.quarantine,
            ),
            incarnation=incarnation,
            rng=random.Random(args.seed),
        )
        service.membership = pump
    host, port = await service.start(host=args.host, port=args.port)
    if pump is not None:
        pump.start()
    if args.ready_file:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(f"{host} {port}\n")
    shard_note = (
        f" as shard {service.shard_name}/{shard_count}" if shard_count > 1 else ""
    )
    print(
        f"[serve] {len(service.strategies)} schemes on {config.server_count} "
        f"servers, listening on {host}:{port}{shard_note}",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signame in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signame, stop.set)
    try:
        await stop.wait()
    finally:
        if pump is not None:
            await pump.stop()
        await service.stop()
        print("[serve] stopped", flush=True)
    return 0


def cmd_call(args: argparse.Namespace) -> int:
    try:
        return asyncio.run(_call_async(args))
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach service: {exc}", file=sys.stderr)
        return 1


def _lookup_row(result) -> dict:
    # The typed result owns its row shape now (including the shard
    # attribution in fleet mode); see repro.net.results.
    return result.as_row()


def exit_code_for(lookups: list) -> int:
    """Map a batch of lookup rows onto the ``call`` exit code scheme.

    Worst outcome wins: any empty answer (target > 0) is a *failure*
    (4), any short-but-non-empty answer is *degraded* (3), a clean
    sweep is 0.
    """
    if any(l["found"] == 0 and l["target"] > 0 for l in lookups):
        return EXIT_FAILED
    if not all(l["success"] for l in lookups):
        return EXIT_DEGRADED
    return 0


async def _call_async(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed) if args.seed is not None else None
    policy: Optional[RetryPolicy] = None
    if args.retries > 1:
        policy = RetryPolicy(max_attempts=args.retries)
    if args.shards is not None:
        return await _call_fleet(args, rng, policy)
    batch = max(1, getattr(args, "batch", 1))
    client = AsyncLookupClient(
        args.host,
        args.port,
        rng=rng,
        timeout=args.timeout,
        retry_policy=policy,
        codec=getattr(args, "codec", "json"),
    )
    async with client:
        try:
            info = await client.info()
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        lookups = []
        remaining = args.count
        while remaining > 0:
            window = min(batch, remaining)
            remaining -= window
            if window == 1:
                result = await client.lookup(args.scheme, args.target)
                lookups.append(_lookup_row(result))
            else:
                report = await client.lookup_many(
                    args.scheme, [args.target] * window
                )
                lookups.extend(report.rows())
        code = exit_code_for(lookups)
        summary = {
            "scheme": args.scheme,
            "service": {"servers": info.servers, "entries": info.entries},
            "lookups": lookups,
            "all_success": all(l["success"] for l in lookups),
            "exit_code": code,
        }
        if args.verify:
            summary["verify"] = await client.verify(args.scheme)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return code


async def _call_fleet(
    args: argparse.Namespace,
    rng: Optional[random.Random],
    policy: Optional[RetryPolicy],
) -> int:
    batch = max(1, getattr(args, "batch", 1))
    router = ShardRouter(
        _parse_endpoints(args.shards),
        replicas=args.replicas,
        probes=args.probes,
        rng=rng if rng is not None else random.Random(),
        timeout=args.timeout,
        retry_policy=policy,
        codec=getattr(args, "codec", "json"),
    )
    try:
        lookups = []
        remaining = args.count
        while remaining > 0:
            window = min(batch, remaining)
            remaining -= window
            if window == 1:
                routed = await router.lookup(args.scheme, args.target)
                lookups.append(_lookup_row(routed))
            else:
                report = await router.lookup_many(
                    [(args.scheme, args.target)] * window
                )
                lookups.extend(report.rows())
        code = exit_code_for(lookups)
        summary = {
            "scheme": args.scheme,
            "shards": router.map.shards,
            "membership": await router.membership_view(refresh=True),
            "lookups": lookups,
            "all_success": all(l["success"] for l in lookups),
            "exit_code": code,
        }
        if args.verify:
            summary["verify"] = await router.verify(args.scheme)
    finally:
        await router.close()
    print(json.dumps(summary, indent=2, sort_keys=True))
    return code


__all__ = [
    "EXIT_DEGRADED",
    "EXIT_FAILED",
    "add_call_parser",
    "add_serve_parser",
    "cmd_call",
    "cmd_serve",
    "exit_code_for",
]
