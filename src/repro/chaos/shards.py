"""Kill-a-shard chaos: a real fleet, a real SIGKILL, a real rejoin.

The in-process chaos harness (:mod:`repro.chaos.harness`) attacks one
placement with simulated faults; this module attacks the *deployment*:
it boots N ``repro serve --shard i/N`` subprocesses, drives routed
lookups through a :class:`~repro.net.router.ShardRouter`, SIGKILLs one
shard mid-traffic, and asserts the failover contract end to end:

1. **During the outage** every lookup whose primary died comes back
   *degraded* — short but non-empty and correctly labelled — never an
   exception, never a hang (all contacts are timeout-bounded), and
   never wrong (entries always come from the placed universe).
2. Keys whose primary survived are **unaffected**: full answers,
   before, during, and after.
3. After the shard restarts (higher incarnation), the failure
   detectors move it dead → quarantined → alive, and once re-admitted
   the fleet serves **full answers for every key** again.

Everything observable is returned in a report dict so the CI smoke
(``scripts/shard_chaos_smoke.py``) can both assert and archive it.
Ports are pre-allocated in the parent so every shard can be told its
peers' addresses at boot; the window between probing and binding is
the usual ephemeral-port race, acceptable for a test harness.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.router import ShardRouter
from repro.net.sharding import ShardMap

#: Fast failure-detection timings for the scenario (seconds).  Small
#: enough that the whole kill/detect/rejoin cycle fits in a CI smoke,
#: large enough to be robust on a loaded runner.
FAST_TIMINGS = {
    "heartbeat_interval": 0.1,
    "suspect_after": 0.6,
    "dead_after": 1.2,
    "quarantine": 0.8,
}


class ScenarioError(AssertionError):
    """A kill-a-shard invariant was violated."""


def free_ports(count: int) -> List[int]:
    """Reserve ``count`` distinct ephemeral ports, then release them."""
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


@dataclass
class ShardFleet:
    """N ``repro serve`` shard subprocesses with a shared peer map.

    Parameters mirror the service defaults; ``timings`` feeds the
    failure-detection flags.  The fleet object is synchronous (plain
    subprocess management); only the router traffic is async.
    """

    shard_count: int = 3
    servers: int = 12
    entries: int = 30
    seed: int = 5
    replicas: int = 2
    backup_fraction: float = 0.25
    timings: Dict[str, float] = field(default_factory=lambda: dict(FAST_TIMINGS))
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        ports = free_ports(self.shard_count)
        self.addresses: Dict[str, Tuple[str, int]] = {
            f"s{i}": (self.host, ports[i]) for i in range(self.shard_count)
        }
        self.processes: Dict[str, subprocess.Popen] = {}
        self.incarnations: Dict[str, int] = {
            name: 1 for name in self.addresses
        }
        self._tmpdir = tempfile.TemporaryDirectory(prefix="shard-fleet-")

    # -- process management --------------------------------------------------

    def _peer_flag(self, name: str) -> str:
        return ",".join(
            f"{peer}={host}:{port}"
            for peer, (host, port) in sorted(self.addresses.items())
            if peer != name
        )

    def spawn(self, name: str) -> subprocess.Popen:
        index = int(name[1:])
        host, port = self.addresses[name]
        ready = os.path.join(self._tmpdir.name, f"{name}.ready")
        if os.path.exists(ready):
            os.unlink(ready)
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host", host,
            "--port", str(port),
            "--servers", str(self.servers),
            "--entries", str(self.entries),
            "--seed", str(self.seed),
            "--shard", f"{index}/{self.shard_count}",
            "--peers", self._peer_flag(name),
            "--replicas", str(self.replicas),
            "--backup-fraction", str(self.backup_fraction),
            "--incarnation", str(self.incarnations[name]),
            "--heartbeat-interval", str(self.timings["heartbeat_interval"]),
            "--suspect-after", str(self.timings["suspect_after"]),
            "--dead-after", str(self.timings["dead_after"]),
            "--quarantine", str(self.timings["quarantine"]),
            "--ready-file", ready,
        ]
        process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.processes[name] = process
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if process.poll() is not None:
                output = process.stdout.read() if process.stdout else ""
                raise ScenarioError(
                    f"shard {name} exited {process.returncode} at boot:\n{output}"
                )
            if os.path.exists(ready) and os.path.getsize(ready) > 0:
                return process
            time.sleep(0.05)
        raise ScenarioError(f"shard {name} never became ready")

    def start(self) -> None:
        for name in sorted(self.addresses):
            self.spawn(name)

    def kill(self, name: str) -> None:
        """SIGKILL — no goodbye, exactly what a failure detector is for."""
        process = self.processes[name]
        process.kill()
        process.wait()

    def restart(self, name: str) -> None:
        """Boot a fresh incarnation of a killed shard on the same port."""
        self.incarnations[name] += 1
        self.spawn(name)

    def stop_all(self) -> None:
        for process in self.processes.values():
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        for process in self.processes.values():
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        self._tmpdir.cleanup()


# --------------------------------------------------------------------------
# The scenario
# --------------------------------------------------------------------------


async def _sweep(
    router: ShardRouter, keys: List[str], target: int
) -> Dict[str, Dict[str, object]]:
    """One routed lookup per key, as report rows."""
    rows: Dict[str, Dict[str, object]] = {}
    for key in keys:
        routed = await router.lookup(key, target)
        rows[key] = {
            "found": len(routed.entries),
            "target": target,
            "success": routed.success,
            "degraded": routed.degraded,
            "home": list(routed.home),
            "routed": list(routed.routed),
            "failover": routed.failover,
            "entries": sorted(e.entry_id for e in routed.entries),
        }
    return rows


async def _await_state(
    router: ShardRouter, shard: str, want: str, deadline: float
) -> None:
    while time.monotonic() < deadline:
        view = await router.membership_view(refresh=True)
        if view.get(shard) == want:
            return
        await asyncio.sleep(0.05)
    raise ScenarioError(f"shard {shard} never reached state {want!r}")


def _check_universe(rows: Dict[str, Dict[str, object]], entries: int) -> None:
    universe = {f"v{i}" for i in range(1, entries + 1)}
    for key, row in rows.items():
        ids = row["entries"]
        if len(ids) != len(set(ids)):
            raise ScenarioError(f"{key}: duplicate entries in one answer: {ids}")
        stray = set(ids) - universe
        if stray:
            raise ScenarioError(f"{key}: entries outside the universe: {stray}")


async def run_kill_shard_scenario(
    fleet: ShardFleet,
    *,
    target: int = 10,
    victim: Optional[str] = None,
    rng_seed: int = 11,
) -> Dict[str, object]:
    """Drive the kill → degrade → rejoin → recover cycle; returns a report.

    Raises :class:`ScenarioError` on any invariant violation.  The
    fleet must already be started; it is not stopped here (callers own
    teardown, so a failing scenario can still archive process output).
    """
    from repro.net.service import DEFAULT_SCHEMES

    keys = sorted(DEFAULT_SCHEMES)
    shard_map = ShardMap(list(fleet.addresses))
    primaries = {
        key: shard_map.home(key, fleet.replicas)[0] for key in keys
    }
    if victim is None:
        # Pick the shard that is primary for the most keys: maximal
        # blast radius makes the degraded assertions meaningful.
        by_load = sorted(
            fleet.addresses,
            key=lambda s: -sum(1 for p in primaries.values() if p == s),
        )
        victim = by_load[0]
    victim_keys = sorted(k for k, p in primaries.items() if p == victim)
    spared_keys = sorted(k for k, p in primaries.items() if p != victim)
    if not victim_keys or not spared_keys:
        raise ScenarioError(
            f"victim {victim} must be primary for some but not all keys "
            f"(primaries: {primaries})"
        )

    router = ShardRouter(
        fleet.addresses,
        replicas=fleet.replicas,
        rng=random.Random(rng_seed),
        timeout=2.0,
        view_ttl=0.2,
    )
    report: Dict[str, object] = {
        "victim": victim,
        "victim_keys": victim_keys,
        "spared_keys": spared_keys,
        "primaries": primaries,
    }
    try:
        detect_budget = (
            fleet.timings["dead_after"] + 10 * fleet.timings["heartbeat_interval"]
        )

        # Phase 1: healthy fleet, every key meets its target.
        await _await_state(
            router, victim, "alive", time.monotonic() + detect_budget + 10
        )
        healthy = await _sweep(router, keys, target)
        report["healthy"] = healthy
        _check_universe(healthy, fleet.entries)
        for key, row in healthy.items():
            if not row["success"]:
                raise ScenarioError(f"healthy fleet missed target for {key}: {row}")

        # Phase 2: SIGKILL the victim; survivors must condemn it.
        fleet.kill(victim)
        await _await_state(
            router, victim, "dead", time.monotonic() + detect_budget + 10
        )

        # Phase 3: outage traffic — degraded for the victim's keys,
        # full answers for everyone else's, zero errors or hangs.
        outage = await _sweep(router, keys, target)
        report["outage"] = outage
        _check_universe(outage, fleet.entries)
        for key in victim_keys:
            row = outage[key]
            if row["success"]:
                raise ScenarioError(
                    f"{key}: primary {victim} is dead but the lookup was full: {row}"
                )
            if not row["degraded"] or row["found"] == 0:
                raise ScenarioError(
                    f"{key}: outage lookup must be degraded-but-non-empty: {row}"
                )
            if victim in row["routed"]:
                raise ScenarioError(
                    f"{key}: router sent traffic to the dead shard: {row}"
                )
        for key in spared_keys:
            row = outage[key]
            if not row["success"]:
                raise ScenarioError(
                    f"{key}: primary {primaries[key]} survived but the "
                    f"lookup was short: {row}"
                )

        # Phase 4: restart (new incarnation) → quarantine → alive.
        fleet.restart(victim)
        rejoin_budget = detect_budget + fleet.timings["quarantine"] + 10
        await _await_state(
            router, victim, "alive", time.monotonic() + rejoin_budget
        )

        # Phase 5: recovered fleet serves full answers again.
        recovered = await _sweep(router, keys, target)
        report["recovered"] = recovered
        _check_universe(recovered, fleet.entries)
        for key, row in recovered.items():
            if not row["success"]:
                raise ScenarioError(
                    f"{key}: fleet recovered but the lookup is still short: {row}"
                )
    finally:
        await router.close()
    return report


__all__ = [
    "FAST_TIMINGS",
    "ScenarioError",
    "ShardFleet",
    "free_ports",
    "run_kill_shard_scenario",
]
