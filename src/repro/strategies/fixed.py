"""Fixed-x: the same ``x``-entry subset on every server (§3.2, §5.2).

Every server stores an identical subset of at most ``x`` entries, so a
lookup needs one operational server (for targets ``t <= x``) and the
strategy tolerates ``n - 1`` failures, while capping storage at
``x·n`` regardless of how many entries the key accumulates.

Dynamically, Fixed-x broadcasts *selectively*: an add is broadcast only
while the shared subset is not yet full, and a delete only if the
deleted entry is in the subset — this is what makes its update overhead
``(1 + (x/h)·n)`` per update instead of ``(1 + n)`` (Section 6.4).
Deletes can leave the subset below ``x`` with no way to refill until
new adds arrive, which is why deployments pick ``x = t + b`` with a
cushion ``b`` (Figure 12 quantifies the cushion's effect).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.entry import Entry
from repro.core.result import LookupResult
from repro.cluster.cluster import Cluster
from repro.cluster.messages import (
    AddRequest,
    DeleteRequest,
    Message,
    PlaceRequest,
    RemoveMessage,
    StoreMessage,
    StoreSetMessage,
)
from repro.cluster.network import Network
from repro.cluster.server import Server
from repro.strategies.base import LookupProfile, PlacementStrategy, StrategyLogic


class _FixedLogic(StrategyLogic):
    """Server behaviour for Fixed-x.

    The selective-broadcast decisions live here because they depend on
    the *initial* server's local store — which is safe precisely
    because every server's store is identical by construction (the
    paper notes the scheme has no concurrency control; our simulation
    is sequential, so the caveat never bites).
    """

    def handle_message(self, server: Server, message: Message, network: Network) -> Any:
        store = server.store(self.key)
        x = self.strategy.x
        if isinstance(message, PlaceRequest):
            network.broadcast(self.key, StoreSetMessage(message.entries[:x]))
            return True
        if isinstance(message, AddRequest):
            # Broadcast only while the shared subset is not full.
            if len(store) < x:
                network.broadcast(self.key, StoreMessage(message.entry))
                return True
            return False
        if isinstance(message, DeleteRequest):
            # Broadcast only if the entry is actually tracked.
            if message.entry in store:
                network.broadcast(self.key, RemoveMessage(message.entry))
                return True
            return False
        if isinstance(message, StoreSetMessage):
            for entry in message.entries:
                store.add(entry)
            return True
        if isinstance(message, StoreMessage):
            return store.add(message.entry)
        if isinstance(message, RemoveMessage):
            return store.discard(message.entry)
        raise TypeError(f"Fixed-x cannot handle {type(message).__name__}")


class FixedX(PlacementStrategy):
    """Keep the first ``x`` placed entries, identically, on every server.

    Parameters
    ----------
    cluster:
        The server cluster.
    x:
        Subset size.  Must be at least the largest target answer size
        any client will use — Fixed-x cannot answer lookups for more
        than ``x`` entries (its coverage *is* ``x``, Section 4.3).  For
        dynamic workloads choose ``x = t + b`` with cushion ``b``.

    >>> from repro.cluster import Cluster
    >>> from repro.core.entry import make_entries
    >>> strategy = FixedX(Cluster(10, seed=7), x=20)
    >>> _ = strategy.place(make_entries(100))
    >>> strategy.storage_cost()
    200
    >>> strategy.coverage()
    20
    """

    name = "fixed"

    def __init__(self, cluster: Cluster, x: int, key: str = "k") -> None:
        self.x = self._require_positive(x, "x")
        super().__init__(cluster, key)

    @classmethod
    def from_budget(
        cls, cluster: Cluster, storage_budget: int, key: str = "k"
    ) -> "FixedX":
        """Size ``x`` from a total storage budget: ``x = budget / n``.

        This is how the paper equalizes overhead across strategies in
        Figures 4, 6, 7 (e.g. budget 200 on 10 servers gives Fixed-20).
        """
        return cls(cluster, x=max(1, storage_budget // cluster.size), key=key)

    def _build_logic(self) -> StrategyLogic:
        return _FixedLogic(self)

    def params(self) -> Dict[str, Any]:
        return {"x": self.x}

    def _do_place(self, entries: Tuple[Entry, ...]) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, PlaceRequest(entries))

    def _do_add(self, entry: Entry) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, AddRequest(entry))

    def _do_delete(self, entry: Entry) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, DeleteRequest(entry))

    def partial_lookup(self, target: int) -> LookupResult:
        # Every server holds the same subset, so exactly one
        # operational server is contacted; if it comes up short (the
        # target exceeds x, or deletes ate into the cushion) the
        # result reports failure rather than contacting more servers,
        # which could never help.
        return self.client.lookup(self.key, target, max_servers=1)

    def lookup_profile(self) -> LookupProfile:
        return LookupProfile(order="random", max_servers=1)
