"""The ``Cluster``: n servers, a network, and a seeded RNG.

Every placement strategy in :mod:`repro.strategies` runs against a
:class:`Cluster`.  The cluster also exposes the placement-level
observations the metrics need — total storage, per-server store sizes,
and the set of entries retrievable from operational servers — so
metrics never reach into server internals.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError, NoOperationalServerError
from repro.core.interning import EntryInterner
from repro.cluster.network import Network
from repro.cluster.server import Server, StoreFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer


class Cluster:
    """A fixed group of ``n`` simulated lookup servers.

    Parameters
    ----------
    size:
        Number of servers ``n``.  The paper fixes the server population
        for the lifetime of the service ("we will not consider adding
        and removing servers", Section 2), so the cluster size is
        immutable.
    seed:
        Seed for the cluster-wide RNG.  All randomness in strategies,
        clients, and server logics draws from this generator, so a
        seeded cluster replays identically.
    store_factory:
        Optional storage-backend factory (see
        :data:`repro.cluster.server.StoreFactory`) passed to every
        server; ``None`` keeps the in-memory default.
    """

    def __init__(
        self,
        size: int,
        seed: Optional[int] = None,
        store_factory: Optional[StoreFactory] = None,
    ) -> None:
        if size < 1:
            raise InvalidParameterError(f"cluster size must be >= 1, got {size}")
        # One interner per key, shared by every server, so a key's
        # entries live in a single dense index space cluster-wide and
        # store bitmasks are directly comparable (the bitset kernel).
        self._interners: Dict[str, EntryInterner] = {}
        self._servers = [
            Server(i, interners=self._interners, store_factory=store_factory)
            for i in range(size)
        ]
        self.network = Network(self._servers)
        self.rng = random.Random(seed)

    # -- topology ------------------------------------------------------------

    def interner(self, key: str) -> EntryInterner:
        """The cluster-wide shared interner for ``key``, created lazily.

        Storage backends use this to pre-seed dense index assignments
        during crash recovery, before any store is touched.
        """
        if key not in self._interners:
            self._interners[key] = EntryInterner()
        return self._interners[key]

    @property
    def size(self) -> int:
        return len(self._servers)

    @property
    def servers(self) -> List[Server]:
        return self._servers

    def server(self, server_id: int) -> Server:
        return self._servers[server_id % self.size]

    def alive_servers(self) -> List[Server]:
        return [s for s in self._servers if s.alive]

    def alive_ids(self) -> List[int]:
        return [s.server_id for s in self._servers if s.alive]

    def random_server_id(self) -> int:
        """A uniformly random server id (failed servers included).

        Clients in the paper pick servers blindly and discover failures
        by the lack of a response, so the draw covers all ``n`` ids.
        """
        return self.rng.randrange(self.size)

    def random_alive_server_id(self) -> int:
        """A uniformly random operational server id.

        Raises
        ------
        NoOperationalServerError
            If every server is failed.
        """
        alive = self.alive_ids()
        if not alive:
            raise NoOperationalServerError("all servers are failed")
        return self.rng.choice(alive)

    # -- failure control -------------------------------------------------------

    def fail(self, server_id: int) -> None:
        self.server(server_id).fail()

    def recover(self, server_id: int) -> None:
        self.server(server_id).recover()

    def fail_many(self, server_ids: Iterable[int]) -> None:
        for server_id in server_ids:
            self.fail(server_id)

    def recover_all(self) -> None:
        for server in self._servers:
            server.recover()

    @property
    def failed_count(self) -> int:
        return sum(1 for s in self._servers if not s.alive)

    # -- placement observations -------------------------------------------------

    def storage_cost(self, key: str) -> int:
        """Total entries stored across all servers (Table 1's metric).

        Counts failed servers too: storage is a provisioning cost, not
        an availability property.
        """
        return sum(s.stored_entry_count(key) for s in self._servers)

    def store_sizes(self, key: str) -> List[int]:
        """Per-server store sizes, indexed by server id."""
        return [s.stored_entry_count(key) for s in self._servers]

    def coverage_mask(self, key: str, alive_only: bool = True) -> int:
        """Union bitmask of the (operational) servers' stores for ``key``."""
        mask = 0
        for server in self._servers:
            if alive_only and not server.alive:
                continue
            mask |= server.store(key).mask
        return mask

    def coverage_set(self, key: str, alive_only: bool = True) -> Set[Entry]:
        """Distinct entries retrievable for ``key`` (Section 4.3).

        With ``alive_only`` (the default) only operational servers
        contribute, which is the definition the fault-tolerance
        heuristic iterates on.
        """
        interner = self.interner(key)
        return set(interner.entries_for_mask(self.coverage_mask(key, alive_only)))

    def coverage(self, key: str, alive_only: bool = True) -> int:
        """Size of the coverage set (a mask union + popcount)."""
        return self.coverage_mask(key, alive_only=alive_only).bit_count()

    def placement(self, key: str) -> Dict[int, Set[Entry]]:
        """The full placement map: server id → set of stored entries."""
        return {s.server_id: s.store(key).as_set() for s in self._servers}

    def replica_counts(self, key: str, alive_only: bool = True) -> Dict[Entry, int]:
        """How many (operational) servers hold each entry (``f_e``)."""
        counts: Dict[Entry, int] = {}
        for server in self._servers:
            if alive_only and not server.alive:
                continue
            for entry in server.store(key):
                counts[entry] = counts.get(entry, 0) + 1
        return counts

    # -- observability -------------------------------------------------------

    def install_tracer(self, tracer: "Tracer") -> None:
        """Trace transport and lifecycle activity cluster-wide.

        Installs the tracer on the network (update-propagation events)
        and every server (fail/recover transition events).  Lookup
        contacts are traced by the :class:`~repro.cluster.client.Client`,
        which carries its own tracer so lookup events get span linkage.
        """
        self.network.install_tracer(tracer)
        for server in self._servers:
            server.tracer = tracer

    def uninstall_tracer(self) -> None:
        """Stop tracing; already-recorded events stay with the tracer."""
        self.network.uninstall_tracer()
        for server in self._servers:
            server.tracer = None

    # -- maintenance --------------------------------------------------------------

    def wipe(self) -> None:
        """Erase every server's stores and state; keep stats and RNG."""
        for server in self._servers:
            server.wipe()

    def reset_stats(self) -> None:
        self.network.reset_stats()

    def __repr__(self) -> str:
        return f"Cluster(size={self.size}, failed={self.failed_count})"
