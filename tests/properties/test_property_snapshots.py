"""Property-based round-trip tests for cluster snapshots."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.snapshots import restore_cluster, snapshot_cluster
from repro.core.entry import Entry, make_entries
from repro.strategies.registry import create_strategy

SCHEMES = [
    ("full_replication", {}),
    ("fixed", {"x": 8}),
    ("random_server", {"x": 8}),
    ("round_robin", {"y": 2}),
    ("hash", {"y": 2}),
]


@st.composite
def populated_clusters(draw):
    scheme_index = draw(st.integers(0, len(SCHEMES) - 1))
    n = draw(st.integers(min_value=2, max_value=8))
    h = draw(st.integers(min_value=1, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    updates = draw(st.integers(min_value=0, max_value=10))
    failed = draw(st.sets(st.integers(0, n - 1), max_size=n - 1))
    return scheme_index, n, h, seed, updates, failed


@given(populated_clusters())
@settings(max_examples=40, deadline=None)
def test_snapshot_round_trip_preserves_everything(setup):
    scheme_index, n, h, seed, updates, failed = setup
    name, params = SCHEMES[scheme_index]
    if params.get("y", 1) > n:
        params = dict(params, y=n)
    cluster = Cluster(n, seed=seed)
    strategy = create_strategy(name, cluster, **params)
    strategy.place(make_entries(h))
    for index in range(updates):
        strategy.add(Entry(f"u{index}"))
    for server_id in failed:
        cluster.fail(server_id)

    snapshot = snapshot_cluster(cluster)
    fresh = Cluster(n, seed=seed + 1)
    restore_cluster(snapshot, fresh)

    assert fresh.placement("k") == cluster.placement("k")
    assert fresh.store_sizes("k") == cluster.store_sizes("k")
    assert fresh.alive_ids() == cluster.alive_ids()
    assert fresh.coverage("k", alive_only=False) == cluster.coverage(
        "k", alive_only=False
    )
    # Snapshots are pure data: restoring twice is idempotent.
    again = Cluster(n, seed=seed + 2)
    restore_cluster(snapshot_cluster(fresh), again)
    assert again.placement("k") == cluster.placement("k")
