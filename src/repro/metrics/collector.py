"""One-call collection of all five metrics for a placement.

Experiments and examples often want a full picture of a strategy's
current placement; :class:`MetricsCollector` snapshots every Section 4
metric at once with consistent parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core import columns
from repro.core.entry import Entry
from repro.metrics.coverage import coverage_size
from repro.metrics.fault_tolerance import greedy_fault_tolerance
from repro.metrics.lookup_cost import estimate_lookup_cost
from repro.metrics.storage import measured_storage_cost, storage_imbalance
from repro.metrics.unfairness import estimate_unfairness
from repro.strategies.base import PlacementStrategy


@dataclass(frozen=True)
class MetricsSnapshot:
    """All five Section 4 metrics for one placement instance."""

    strategy_name: str
    target: int
    storage_cost: int
    storage_imbalance: int
    mean_lookup_cost: float
    lookup_failure_rate: float
    coverage: int
    fault_tolerance: int
    unfairness: float

    def as_row(self) -> dict:
        """A flat dict keyed by the canonical column names.

        The keys come from :mod:`repro.core.columns`
        (``SNAPSHOT_COLUMNS``), the shared registry report headers use
        too, so a snapshot row always lines up with the table that
        renders it.
        """
        return {
            columns.STRATEGY: self.strategy_name,
            columns.TARGET: self.target,
            columns.STORAGE: self.storage_cost,
            columns.IMBALANCE: self.storage_imbalance,
            columns.LOOKUP_COST: round(self.mean_lookup_cost, 3),
            columns.LOOKUP_FAIL: round(self.lookup_failure_rate, 4),
            columns.COVERAGE: self.coverage,
            columns.FAULT_TOL: self.fault_tolerance,
            columns.UNFAIRNESS: round(self.unfairness, 4),
        }


class MetricsCollector:
    """Collects a :class:`MetricsSnapshot` from a live strategy.

    Parameters
    ----------
    lookup_samples:
        Monte-Carlo lookups for the lookup-cost estimate.
    unfairness_samples:
        Monte-Carlo lookups for the unfairness estimate.
    """

    def __init__(
        self, lookup_samples: int = 500, unfairness_samples: int = 2000
    ) -> None:
        self.lookup_samples = lookup_samples
        self.unfairness_samples = unfairness_samples

    def collect(
        self,
        strategy: PlacementStrategy,
        target: int,
        universe: Iterable[Entry],
    ) -> MetricsSnapshot:
        """Measure every metric for the strategy's current placement.

        ``universe`` is the full entry population ``v_1..v_h`` the
        placement was built from; unfairness needs it to account for
        entries the placement fails to cover.
        """
        entries = list(universe)
        cost = estimate_lookup_cost(strategy, target, self.lookup_samples)
        unfairness = estimate_unfairness(
            strategy, target, entries, self.unfairness_samples
        )
        return MetricsSnapshot(
            strategy_name=strategy.name,
            target=target,
            storage_cost=measured_storage_cost(strategy),
            storage_imbalance=storage_imbalance(strategy),
            mean_lookup_cost=cost.mean_cost,
            lookup_failure_rate=cost.failure_rate,
            coverage=coverage_size(strategy),
            fault_tolerance=greedy_fault_tolerance(strategy, target),
            unfairness=unfairness.unfairness,
        )

    def collect_health(self, strategy: PlacementStrategy) -> dict:
        """Robustness companion to :meth:`collect`.

        Reports the placement's *structural* health — verification
        violations, failed servers — plus the fault-layer ledger when
        a fault plan is installed.  Kept separate from
        :class:`MetricsSnapshot` because the Section 4 metrics assume
        a healthy cluster; mixing the two would silently change the
        paper-facing numbers.
        """
        from repro.maintenance.verify import verify_placement

        row: dict = {
            "strategy": strategy.name,
            "violations": len(verify_placement(strategy)),
            "failed_servers": strategy.cluster.failed_count,
        }
        injector = strategy.cluster.network.fault_injector
        if injector is not None:
            row.update(injector.stats.as_row())
        return row
