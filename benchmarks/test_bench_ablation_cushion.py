"""Ablation: RandomServer delete modes — cushion vs active replacement.

§5.3 weighs two delete schemes: the *cushion* (accept shrunken
subsets; refill from future adds) and *active replacement* (refetch a
substitute from a peer immediately).  The paper picks the cushion
because "finding a replacement is a costly operation" and claims the
replacement alternative "results in higher unfairness than the
cushion scheme when there are deletes".  This bench measures all
three axes: per-delete message cost, store fullness, and post-churn
unfairness.
"""

import random

from _bench_utils import render_and_print

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry
from repro.experiments.runner import ExperimentResult
from repro.metrics.unfairness import estimate_unfairness
from repro.simulation.events import AddEvent
from repro.strategies.random_server import RandomServerX
from repro.workload.generator import SteadyStateWorkload


def _measure(delete_mode: str, seed: int):
    workload = SteadyStateWorkload(100, rng=random.Random(seed))
    trace = workload.generate(1500)
    cluster = Cluster(10, seed=seed)
    strategy = RandomServerX(cluster, x=20, delete_mode=delete_mode)
    strategy.place(trace.initial_entries)

    live = {e.entry_id: e for e in trace.initial_entries}
    delete_messages = 0
    deletes = 0
    for event in trace.events:
        if isinstance(event, AddEvent):
            strategy.add(event.entry)
            live[event.entry.entry_id] = event.entry
        else:
            delete_messages += strategy.delete(event.entry).messages
            deletes += 1
            live.pop(event.entry.entry_id, None)

    sizes = cluster.store_sizes("k")
    unfairness = estimate_unfairness(
        strategy, 35, list(live.values()), lookups=3000
    ).unfairness
    return {
        "msgs_per_delete": delete_messages / max(1, deletes),
        "mean_store_size": sum(sizes) / len(sizes),
        "unfairness": unfairness,
    }


def _run_ablation() -> ExperimentResult:
    result = ExperimentResult(
        name="Ablation: RandomServer delete mode (x=20, 1500 churn events)",
        headers=["mode", "msgs_per_delete", "mean_store_size", "unfairness"],
    )
    for mode in ("cushion", "replace"):
        samples = [_measure(mode, seed) for seed in (1, 2, 3)]
        result.rows.append(
            {
                "mode": mode,
                "msgs_per_delete": round(
                    sum(s["msgs_per_delete"] for s in samples) / 3, 2
                ),
                "mean_store_size": round(
                    sum(s["mean_store_size"] for s in samples) / 3, 2
                ),
                "unfairness": round(sum(s["unfairness"] for s in samples) / 3, 3),
            }
        )
    return result


def test_bench_ablation_cushion(benchmark):
    result = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    render_and_print(result)
    cushion = result.row_for(mode="cushion")
    replace = result.row_for(mode="replace")
    # Replacement refills stores (§5.3: "uses less storage because we
    # do not need to keep cushion entries" — i.e. x can be sized to t).
    assert replace["mean_store_size"] >= cushion["mean_store_size"]
    # ...but costs extra messages on every delete of a held entry.
    assert replace["msgs_per_delete"] > cushion["msgs_per_delete"] + 0.5
    # And it buys no fairness: the paper says it is no better (worse,
    # in their runs) than the cushion under churn.
    assert replace["unfairness"] > 0.5 * cushion["unfairness"]
