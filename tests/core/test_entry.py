"""Unit tests for the Entry value type."""

import pytest

from repro.core.entry import (
    Entry,
    coerce_entries,
    coerce_entry,
    entry_ids,
    make_entries,
)


class TestEntryIdentity:
    def test_equality_on_id(self):
        assert Entry("v1") == Entry("v1")

    def test_inequality_on_different_ids(self):
        assert Entry("v1") != Entry("v2")

    def test_payload_excluded_from_equality(self):
        assert Entry("v1", payload={"host": "a"}) == Entry("v1", payload={"host": "b"})

    def test_payload_excluded_from_hash(self):
        assert hash(Entry("v1", payload=1)) == hash(Entry("v1", payload=2))

    def test_hashable_in_sets(self):
        assert len({Entry("v1"), Entry("v1"), Entry("v2")}) == 2

    def test_ordering_on_id(self):
        assert Entry("a") < Entry("b")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Entry("v1").entry_id = "v2"

    def test_str_is_id(self):
        assert str(Entry("v7")) == "v7"

    def test_with_payload_copies(self):
        original = Entry("v1")
        annotated = original.with_payload({"latency": 3})
        assert annotated == original
        assert annotated.payload == {"latency": 3}
        assert original.payload is None


class TestMakeEntries:
    def test_count_and_names(self):
        entries = make_entries(3)
        assert entry_ids(entries) == ["v1", "v2", "v3"]

    def test_custom_prefix_and_start(self):
        entries = make_entries(2, prefix="u", start=5)
        assert entry_ids(entries) == ["u5", "u6"]

    def test_zero_entries(self):
        assert make_entries(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_entries(-1)

    def test_all_distinct(self):
        entries = make_entries(500)
        assert len(set(entries)) == 500


class TestCoercion:
    def test_string_becomes_entry(self):
        assert coerce_entry("host1") == Entry("host1")

    def test_entry_passes_through(self):
        entry = Entry("x")
        assert coerce_entry(entry) is entry

    def test_other_values_stringified_with_payload(self):
        coerced = coerce_entry(42)
        assert coerced.entry_id == "42"
        assert coerced.payload == 42

    def test_coerce_entries_mixed(self):
        result = coerce_entries(["a", Entry("b")])
        assert entry_ids(result) == ["a", "b"]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            coerce_entries(["a", "a"])

    def test_duplicate_across_types_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            coerce_entries([Entry("a"), "a"])
