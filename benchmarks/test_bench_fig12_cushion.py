"""Benchmark: regenerate Figure 12 (Fixed-x cushion failure rate).

Paper shape: >10% failure time with no cushion, dropping roughly
exponentially per extra cushion entry; the heavy-tailed Zipf lifetime
tapers off (keeps a failure floor) where the exponential reaches zero.
"""

from _bench_utils import render_and_print

from repro.experiments.fig12_cushion import Fig12Config, run


def test_bench_fig12_cushion(benchmark):
    config = Fig12Config(runs=8, updates_per_run=5000)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    zero = result.row_for(cushion=0)
    assert zero["exp_percent"] > 10.0
    assert zero["zipf_percent"] > 10.0

    # Steep decay over the first few cushion entries.
    exp_curve = result.column("exp_percent")
    assert exp_curve[0] > 10 * max(exp_curve[2], 0.05)

    # Zipf's heavy tail keeps failures alive at large cushions.
    tail = result.row_for(cushion=6)
    assert tail["zipf_percent"] >= tail["exp_percent"]
