"""Clients with preferences (paper §7.1).

The paper's first variation drops the "any ``t`` entries will do"
assumption: each client ``i`` has a cost function ``C_i`` over
entries, and ``partial_lookup(t)`` should return the ``t`` *best*
entries — ``R`` with ``C_i(u) <= C_i(w)`` for every ``u ∈ R`` and
``w ∉ R``.  The paper notes this is easy when ``C_i`` is known and
hard when it drifts; we implement the known-cost case plus a
best-effort bounded-probing mode for the realistic setting where
contacting every server is too expensive.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional, Set, Tuple

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.core.result import LookupResult
from repro.strategies.base import PlacementStrategy

#: A client cost function: lower cost = more preferred.
CostFunction = Callable[[Entry], float]


def attribute_cost(attribute: str, default: float = float("inf")) -> CostFunction:
    """Cost = a numeric attribute of the entry's payload dict.

    Entries whose payload lacks the attribute cost ``default``
    (infinitely bad by default), so unannotated entries are only
    returned when nothing better exists.
    """
    def cost(entry: Entry) -> float:
        payload = entry.payload
        if isinstance(payload, dict) and attribute in payload:
            return float(payload[attribute])
        return default

    return cost


def latency_bandwidth_cost(
    latency_weight: float = 1.0, bandwidth_weight: float = 1.0
) -> CostFunction:
    """The paper's file-sharing example: prefer low latency, high bandwidth.

    Cost = ``latency_weight·latency_ms − bandwidth_weight·bandwidth_mbps``
    over payload dicts carrying both attributes.
    """
    def cost(entry: Entry) -> float:
        payload = entry.payload if isinstance(entry.payload, dict) else {}
        latency = float(payload.get("latency_ms", 1e6))
        bandwidth = float(payload.get("bandwidth_mbps", 0.0))
        return latency_weight * latency - bandwidth_weight * bandwidth

    return cost


class PreferenceClient:
    """A lookup client that returns the ``t`` best entries by its cost.

    Parameters
    ----------
    strategy:
        The underlying placement strategy to query.
    cost:
        This client's cost function ``C_i``.

    Two modes:

    - :meth:`best_lookup` guarantees the true ``t`` best *retrievable*
      entries by collecting the full coverage (contacting every
      server), the §7.1 known-cost solution.
    - :meth:`probing_lookup` bounds the servers contacted, returning
      the best ``t`` among what those servers offered — the practical
      tradeoff when full sweeps are too expensive.
    """

    def __init__(self, strategy: PlacementStrategy, cost: CostFunction) -> None:
        self.strategy = strategy
        self.cost = cost

    def _best_of(self, entries: Iterable[Entry], target: int) -> List[Entry]:
        return heapq.nsmallest(target, entries, key=self.cost)

    def best_lookup(self, target: int) -> LookupResult:
        """The true ``t`` lowest-cost entries retrievable anywhere."""
        if target < 1:
            raise InvalidParameterError("target must be >= 1")
        full = self.strategy.partial_lookup(0)  # collect everything
        best = self._best_of(full.entries, target)
        return LookupResult(
            entries=tuple(best),
            target=target,
            servers_contacted=full.servers_contacted,
            failed_contacts=full.failed_contacts,
            messages=full.messages,
        )

    def probing_lookup(self, target: int, max_servers: int) -> LookupResult:
        """Best ``t`` entries found within ``max_servers`` contacts.

        Contacts servers in the strategy's usual order but asks each
        for everything it has, then keeps the cost-best ``t``.  The
        answer meets the partial-lookup contract (``>= t`` entries if
        that many were seen) but optimality is only over the probed
        servers.
        """
        if target < 1:
            raise InvalidParameterError("target must be >= 1")
        if max_servers < 1:
            raise InvalidParameterError("max_servers must be >= 1")
        client = self.strategy.client
        sweep = client.collect(
            self.strategy.key,
            target=0,
            order=client.random_order(),
            max_servers=max_servers,
            per_server_target=0,
        )
        best = self._best_of(sweep.entries, target)
        return LookupResult(
            entries=tuple(best),
            target=target,
            servers_contacted=sweep.servers_contacted,
            failed_contacts=sweep.failed_contacts,
            messages=sweep.messages,
        )

    def regret(self, result: LookupResult) -> float:
        """How much worse ``result`` is than the true best answer.

        Defined as the difference in summed costs between the result's
        entries and the true best ``t`` retrievable entries; 0 means
        the result was optimal.  Useful for quantifying the probing
        tradeoff.
        """
        truth = self.best_lookup(result.target)
        finite = [e for e in result.entries if self.cost(e) != float("inf")]
        achieved = sum(self.cost(e) for e in finite[: result.target])
        optimal = sum(self.cost(e) for e in truth.entries)
        return achieved - optimal
