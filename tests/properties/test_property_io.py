"""Property-based round-trip tests for trace and result persistence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entry import Entry
from repro.experiments.runner import ExperimentResult
from repro.io.results import load_result, save_result
from repro.io.traces import load_trace, save_trace
from repro.simulation.events import (
    AddEvent,
    DeleteEvent,
    FailureEvent,
    LookupEvent,
    RecoveryEvent,
)
from repro.workload.generator import WorkloadTrace

entry_ids = st.text(alphabet="abcdef0123456789", min_size=1, max_size=8)
times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def traces(draw):
    initial = draw(st.lists(entry_ids, unique=True, max_size=10))
    events = []
    for _ in range(draw(st.integers(0, 20))):
        kind = draw(st.sampled_from(["add", "delete", "lookup", "fail", "rec"]))
        t = draw(times)
        if kind == "add":
            events.append(AddEvent(t, Entry(draw(entry_ids))))
        elif kind == "delete":
            events.append(DeleteEvent(t, Entry(draw(entry_ids))))
        elif kind == "lookup":
            events.append(LookupEvent(t, target=draw(st.integers(1, 50))))
        elif kind == "fail":
            events.append(FailureEvent(t, server_id=draw(st.integers(0, 9))))
        else:
            events.append(RecoveryEvent(t, server_id=draw(st.integers(0, 9))))
    return WorkloadTrace(
        initial_entries=tuple(Entry(i) for i in initial),
        events=tuple(events),
    )


@given(traces())
@settings(max_examples=40, deadline=None)
def test_trace_round_trip_exact(tmp_path_factory, trace):
    path = tmp_path_factory.mktemp("traces") / "t.jsonl"
    loaded = load_trace(save_trace(trace, path))
    assert loaded.initial_entries == trace.initial_entries
    assert len(loaded.events) == len(trace.events)
    for original, restored in zip(trace.events, loaded.events):
        assert type(original) is type(restored)
        assert original.time == restored.time
        if isinstance(original, (AddEvent, DeleteEvent)):
            assert original.entry == restored.entry
        elif isinstance(original, LookupEvent):
            assert original.target == restored.target
        else:
            assert original.server_id == restored.server_id


json_values = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    st.text(max_size=20),
    st.booleans(),
)


@given(
    st.lists(st.text(alphabet="abcxyz_", min_size=1, max_size=8),
             unique=True, min_size=1, max_size=5),
    st.integers(min_value=0, max_value=10),
    st.integers(),
)
@settings(max_examples=40, deadline=None)
def test_result_round_trip_exact(tmp_path_factory, headers, row_count, seed):
    import random

    rng = random.Random(seed)
    rows = [
        {h: rng.choice([rng.randint(0, 99), f"s{rng.randint(0, 9)}"])
         for h in headers}
        for _ in range(row_count)
    ]
    result = ExperimentResult(
        name="prop", headers=list(headers), rows=rows, meta={"seed": seed}
    )
    path = tmp_path_factory.mktemp("results") / "r.json"
    loaded = load_result(save_result(result, path))
    assert loaded.headers == result.headers
    assert loaded.rows == result.rows
    assert loaded.meta == {"seed": seed}
