"""Multi-core serve: an ``SO_REUSEPORT`` worker fleet, single-writer updates.

``repro serve --workers N`` forks N worker processes that all accept
on **one** TCP port.  Each worker hosts a *full* scheme catalogue
built from the same seed, so any worker can answer any read the
process would have answered alone; the kernel load-balances incoming
connections across the workers' ``SO_REUSEPORT`` listening sockets
(fallback: one parent-bound socket shared by inheritance when the
platform lacks the option).

Reads scale out; writes stay serial.  Worker 0 is the **writer**: the
only process that ever executes a mutating op (``send`` add / delete /
place).  Reader workers classify incoming envelopes with
:func:`~repro.net.service.envelope_mutates` and forward mutations over
a local Unix-socket *writer pipe*; the writer applies them and fans
the resulting **state delta** back as an epoch-stamped update log.
Reads never block on the writer — a reader keeps answering lookups
from its own catalogue while deltas stream in — and the Section 6.4
``Network.send`` accounting stays exactly where it was: the writer's
cluster books the mutation, each worker's cluster books the lookups it
serves.

Why state deltas and not op replay: every worker's cluster owns an
independently-advancing RNG stream (each lookup it serves draws from
it), so replaying an op whose handler draws RNG (RandomServer's
placement choice, Hash's collisions) would diverge across workers.
The writer instead snapshots each server's store bitmask around the
apply and ships the membership diff — entries added, entry ids
dropped, per server — which readers apply verbatim.  Lookup answers
depend only on store membership, so converged stores mean converged
answers; strategy scratch state (round-robin heads, reservoirs) only
matters for *future mutations*, which only the writer runs.

Writer-pipe wire schema (JSON frames over the codec's length-prefixed
framing; see ``docs/protocols.md``):

- reader → writer ``{"op": "fwd", "id": n, "envelope": {...}}`` — a
  mutating client envelope, JSON-encoded.
- writer → reader ``{"op": "fwd_reply", "id": n, "reply": {...},
  "delta": {...}?}`` — the client reply, plus the delta when state
  changed.  The forwarding reader applies the delta *before*
  answering its client: read-your-writes on that connection.
- writer → every other reader ``{"op": "delta", "delta": {...}}``.
- reader → writer ``{"op": "sync", "id": n}`` answered by
  ``{"op": "sync_reply", "id": n, "epoch": E, "stores": {...},
  "scheme_epochs": {...}, "hot": [...]}`` — a full store snapshot,
  used on (re)connect and on gap recovery, plus the shared-cache
  epoch map and the writer's warm-handoff hot set (see
  ``docs/protocols.md`` §7 for the row schema).

A delta is ``{"epoch": E, "key": scheme, "servers": {"<sid>":
{"add": [entry...], "drop": [entry_id...]}}}`` with epochs assigned by
the writer in one global monotonic sequence.  Readers apply deltas in
epoch order (:class:`DeltaApplier` buffers out-of-order arrivals,
deduplicates the fwd-reply/broadcast double delivery, and requests a
resync when a gap cannot close).

Failure policy: a dead reader is respawned by the parent supervisor
(it resyncs through the writer pipe on boot); a dead **writer** fails
the whole fleet loudly — the parent tears everything down and exits
non-zero, because a fleet that silently dropped its only mutation
path would serve stale state forever.  Workers hold the read end of a
parent *lifeline pipe* and exit when it reports EOF, so even a
SIGKILLed parent (the chaos harness's habit) leaves no orphans.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import dataclasses
import multiprocessing
import multiprocessing.connection
import os
import signal
import socket
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.messages import Message
from repro.core.exceptions import InvalidParameterError
from repro.net.cache import SharedReplyCache
from repro.net.codec import (
    FrameError,
    decode_value,
    encode_message,
    encode_value,
    read_frame,
    write_frame,
)
from repro.net.service import LookupService, ServiceConfig, envelope_mutates

#: How many times the supervisor revives one reader index before it
#: concludes the failure is systemic and fails the fleet loudly.
MAX_RESPAWNS = 5

#: Out-of-order deltas a reader buffers before declaring a gap
#: unbridgeable and resyncing from a full snapshot.
MAX_DELTA_BUFFER = 64


def reuseport_available() -> bool:
    """Whether this platform can put N listeners on one port."""
    return hasattr(socket, "SO_REUSEPORT")


# --------------------------------------------------------------------------
# Delta computation and application (sans-IO, unit-testable)
# --------------------------------------------------------------------------


def wire_envelope(envelope: Dict[str, Any]) -> Dict[str, Any]:
    """An envelope made JSON-safe for the writer pipe.

    A binary connection decodes ``message`` to a live
    :class:`~repro.cluster.messages.Message`; the pipe speaks JSON, so
    re-encode it to the tagged wire dict.  Everything else in a
    request envelope is already JSON-shaped.
    """
    message = envelope.get("message")
    if isinstance(message, Message):
        envelope = dict(envelope)
        envelope["message"] = encode_message(message)
    return envelope


def compute_apply_delta(
    service: LookupService, envelope: Dict[str, Any]
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Apply ``envelope`` on the writer; returns ``(reply, delta|None)``.

    The delta is the store-membership diff the apply produced for the
    envelope's scheme key, computed from per-server bitmask snapshots
    (an exception half-way through still yields the partial diff, so
    readers converge to whatever state the writer actually reached).
    ``None`` means nothing changed — no fan-out needed.  The epoch
    field is stamped by the caller (the bus owns the sequence).
    """
    key = envelope.get("key")
    stores = None
    if isinstance(key, str) and key in service.strategies:
        stores = [server.store(key) for server in service.cluster.servers]
        before = [store.mask for store in stores]
    reply = service.handle_envelope(envelope)
    if stores is None:
        return reply, None
    changed: Dict[str, Dict[str, list]] = {}
    for sid, (store, old) in enumerate(zip(stores, before)):
        new = store.mask
        if new == old:
            continue
        interner = store.interner
        changed[str(sid)] = {
            "add": [encode_value(e) for e in interner.entries_for_mask(new & ~old)],
            "drop": [e.entry_id for e in interner.entries_for_mask(old & ~new)],
        }
    if not changed:
        return reply, None
    return reply, {"key": key, "servers": changed}


def apply_delta(service: LookupService, delta: Dict[str, Any]) -> None:
    """Apply one writer delta to a reader's stores.

    Pure store-membership surgery — no strategy logic runs, no RNG is
    drawn — followed by the same invalidate-the-cache bookkeeping a
    local mutation performs.
    """
    key = delta["key"]
    if key not in service.strategies:
        return
    service.note_mutation(key)
    epoch = delta.get("epoch")
    if isinstance(epoch, int):
        # Adopt the bus epoch as the scheme's shared-cache stamp: all
        # workers that applied the same delta prefix stamp identically.
        service.set_shared_epoch(key, epoch)
    servers = service.cluster.servers
    for sid_text, change in delta["servers"].items():
        store = servers[int(sid_text)].store(key)
        for wire in change.get("add", ()):
            store.add(decode_value(wire))
        for entry_id in change.get("drop", ()):
            index = store.interner.index_of(entry_id)
            if index is not None:
                store.discard(store.interner.entry_at(index))


def snapshot_stores(service: LookupService) -> Dict[str, List[List[Any]]]:
    """Every scheme's per-server store contents, wire-encoded."""
    return {
        key: [
            [encode_value(e) for e in server.store(key).as_list()]
            for server in service.cluster.servers
        ]
        for key in service.strategies
    }


def load_snapshot(
    service: LookupService, snapshot: Dict[str, List[List[Any]]]
) -> None:
    """Replace store contents wholesale (reader resync).

    Goes through the backend interface's one-shot
    :meth:`~repro.core.storage.StorageBackend.restore` rather than
    poking store internals, so a durable backend journals the whole
    adoption as a single ``reset`` record.
    """
    for key, per_server in snapshot.items():
        if key not in service.strategies:
            continue
        service.note_mutation(key)
        for sid, wires in enumerate(per_server):
            if sid >= service.cluster.size:
                break
            store = service.cluster.servers[sid].store(key)
            store.restore(decode_value(wire) for wire in wires)


class DeltaApplier:
    """Epoch-ordered delta application with duplicate/gap handling.

    The update log's consumer half, kept sans-IO so the ordering
    contract is testable without a fleet: deltas apply strictly in
    epoch order; a delta at or below the applied watermark is a
    duplicate (the fwd-reply/broadcast double delivery) and is
    skipped; a delta from the future is buffered until the sequence
    closes; a buffer overflowing :data:`MAX_DELTA_BUFFER` reports
    ``"resync"`` — the caller fetches a snapshot and calls
    :meth:`resync`.
    """

    def __init__(self, service: LookupService, applied: int = 0) -> None:
        self.service = service
        self.applied = applied
        self._pending: Dict[int, Dict[str, Any]] = {}

    def offer(self, delta: Dict[str, Any]) -> str:
        """Feed one delta; returns ``applied|duplicate|buffered|resync``."""
        epoch = delta.get("epoch")
        if not isinstance(epoch, int):
            return "resync"
        if epoch <= self.applied:
            return "duplicate"
        if epoch > self.applied + 1:
            self._pending[epoch] = delta
            if len(self._pending) > MAX_DELTA_BUFFER:
                self._pending.clear()
                return "resync"
            return "buffered"
        self._apply(delta)
        while self.applied + 1 in self._pending:
            self._apply(self._pending.pop(self.applied + 1))
        return "applied"

    def _apply(self, delta: Dict[str, Any]) -> None:
        apply_delta(self.service, delta)
        self.applied = delta["epoch"]

    def resync(
        self,
        epoch: int,
        snapshot: Dict[str, Any],
        scheme_epochs: Optional[Dict[str, int]] = None,
    ) -> None:
        """Adopt a full snapshot taken at ``epoch``; drop the buffer.

        ``scheme_epochs`` (when the writer supplied one) realigns the
        shared-cache stamps with the snapshot: after a resync this
        worker's stores match the writer's at exactly those per-scheme
        bus epochs, so shared slots stamped with them are valid here.
        """
        load_snapshot(self.service, snapshot)
        self.service.flush_cache()
        if scheme_epochs is not None:
            for key in self.service.strategies:
                value = scheme_epochs.get(key)
                if isinstance(value, int):
                    self.service.set_shared_epoch(key, value)
        self.applied = epoch
        self._pending.clear()


# --------------------------------------------------------------------------
# The writer bus (worker 0) and the reader-side forwarder
# --------------------------------------------------------------------------


class WriterBus:
    """Worker 0's half of the writer pipe: apply, reply, fan out.

    One Unix-socket server; each reader worker holds one connection.
    Frame handling is serialized per connection task, and the
    apply+epoch-assignment step has no awaits, so epochs are assigned
    in apply order even when forwards from different readers
    interleave.  Broadcast writes go out under a per-connection lock;
    two in-flight deltas may reach a reader out of order, which the
    reader's :class:`DeltaApplier` reorders.
    """

    def __init__(self, service: LookupService, path: str) -> None:
        self.service = service
        self.path = path
        # A restarted writer resumes the epoch sequence where the
        # journal left it, so readers that recovered from the same
        # journal can sync incrementally instead of re-snapshotting.
        self.epoch = service.recovered_epoch
        #: Bus epoch of each scheme's last applied delta — the stamps
        #: the shared reply cache keys its coherence on.
        self.scheme_epochs: Dict[str, int] = {
            key: service.shared_epoch(key)
            for key in service.strategies
            if service.shared_epoch(key)
        }
        #: Recent deltas, newest last, for ``sync`` requests carrying a
        #: ``since`` watermark: a reader that is at most this far
        #: behind catches up from the log instead of a full snapshot.
        self._history: collections.deque = collections.deque(
            maxlen=MAX_DELTA_BUFFER
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: set = set()
        self._tasks: set = set()

    async def start(self) -> None:
        self._server = await asyncio.start_unix_server(self._serve, path=self.path)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for writer, _lock in list(self._conns):
            writer.close()
        self._conns.clear()

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        conn = (writer, asyncio.Lock())
        self._conns.add(conn)
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                await self._handle(frame, conn)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._tasks.discard(task)
            self._conns.discard(conn)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    def _apply(
        self, envelope: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
        # No awaits between apply and epoch assignment: the delta
        # sequence is exactly the apply order.
        reply, delta = compute_apply_delta(self.service, envelope)
        if delta is not None:
            self.epoch += 1
            delta["epoch"] = self.epoch
            self.scheme_epochs[delta["key"]] = self.epoch
            self.service.set_shared_epoch(delta["key"], self.epoch)
            if self.service.journal is not None:
                # Durability barrier: the store records were appended
                # by the backend as the apply ran; the epoch marker
                # lands (and flushes) before any reader sees the delta,
                # so a journal that knows epoch E holds all of E's
                # mutations.
                self.service.journal.record_epoch(delta["key"], self.epoch)
            self._history.append(delta)
        return reply, delta

    async def forward(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        """The writer's own mutations, through the same epoch log.

        Worker 0's service sets ``forwarder = bus`` so a mutating
        envelope whose client connection landed on the writer itself
        still gets an epoch stamp and fans out to every reader —
        otherwise only the readers' stores would ever converge.
        """
        reply, delta = self._apply(envelope)
        if delta is not None:
            await self._broadcast(delta, exclude=None)
        return reply

    async def _handle(self, frame: Dict[str, Any], conn: tuple) -> None:
        writer, lock = conn
        op = frame.get("op")
        if op == "fwd":
            envelope = frame.get("envelope")
            if not isinstance(envelope, dict):
                reply: Dict[str, Any] = {
                    "ok": False,
                    "error": "bad-request",
                    "detail": "fwd wants an envelope dict",
                }
                delta = None
            else:
                reply, delta = self._apply(envelope)
            response = {"op": "fwd_reply", "id": frame.get("id"), "reply": reply}
            if delta is not None:
                response["delta"] = delta
            async with lock:
                await write_frame(writer, response)
            if delta is not None:
                await self._broadcast(delta, exclude=conn)
        elif op == "sync":
            response = {
                "op": "sync_reply",
                "id": frame.get("id"),
                "epoch": self.epoch,
                "scheme_epochs": dict(self.scheme_epochs),
            }
            since = frame.get("since")
            if isinstance(since, int) and not isinstance(since, bool) and (
                since >= self.epoch
                or (self._history and self._history[0]["epoch"] <= since + 1)
            ):
                # The reader's watermark is within the delta history
                # (a disk-recovered respawn, typically): ship only the
                # missed tail instead of a full snapshot.
                response["deltas"] = [
                    delta for delta in self._history if delta["epoch"] > since
                ]
            else:
                response["stores"] = snapshot_stores(self.service)
            response["hot"] = self.service.export_hot_set()
            async with lock:
                await write_frame(writer, response)
        # Unknown bus ops are dropped: the pipe is an internal,
        # version-locked surface (both ends come from one build).

    async def _broadcast(
        self, delta: Dict[str, Any], exclude: Optional[tuple]
    ) -> None:
        for conn in list(self._conns):
            if conn is exclude:
                continue
            writer, lock = conn
            try:
                async with lock:
                    await write_frame(writer, {"op": "delta", "delta": delta})
            except (ConnectionError, OSError):
                self._conns.discard(conn)


class WriteForwarder:
    """A reader worker's half of the writer pipe.

    Owns the one bus connection: forwards mutating envelopes (replies
    correlated by id), consumes broadcast deltas through a
    :class:`DeltaApplier`, and resyncs from a snapshot on connect and
    on gaps.  ``forward`` returns only after the op's own delta has
    been applied locally — the client that performed the write reads
    its own write on that connection from then on.
    """

    def __init__(self, service: LookupService, path: str) -> None:
        self.service = service
        self.path = path
        # A disk-recovered reader starts its watermark at the journal's
        # last known epoch; the boot sync then only fetches the gap.
        self.applier = DeltaApplier(service, applied=service.recovered_epoch)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._wlock = asyncio.Lock()
        self._pump_task: Optional[asyncio.Task] = None
        self._advanced = asyncio.Event()
        #: Called once when the bus connection dies (writer crashed):
        #: the worker uses it to stop serving and exit loudly.
        self.on_fatal: Optional[Any] = None
        self._closed = False

    async def start(self, *, retries: int = 80, delay: float = 0.1) -> None:
        """Connect (the writer may still be booting) and resync."""
        last: Optional[BaseException] = None
        for _ in range(retries):
            try:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.path
                )
                break
            except (ConnectionError, OSError, FileNotFoundError) as exc:
                last = exc
                await asyncio.sleep(delay)
        else:
            raise ConnectionError(f"writer bus never came up at {self.path}: {last}")
        self._pump_task = asyncio.create_task(self._pump())
        await self._sync()

    async def stop(self) -> None:
        self._closed = True
        if self._pump_task is not None:
            self._pump_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._pump_task
        if self._writer is not None:
            self._writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await self._writer.wait_closed()

    def _new_future(self) -> Tuple[int, asyncio.Future]:
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[self._next_id] = future
        return self._next_id, future

    async def _request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        fid, future = self._new_future()
        frame["id"] = fid
        try:
            async with self._wlock:
                await write_frame(self._writer, frame)
            return await future
        finally:
            self._pending.pop(fid, None)

    async def _sync(self) -> None:
        reply = await self._request(
            {"op": "sync", "since": self.applier.applied}
        )
        deltas = reply.get("deltas")
        if isinstance(deltas, list):
            # Incremental catch-up: this worker's stores (recovered
            # from the journal, usually) are within the writer's delta
            # history; apply the missed tail in order.
            for delta in deltas:
                self.applier.offer(delta)
        else:
            # Snapshot adoption and stamp realignment run
            # synchronously here — no await separates them, so no
            # delta or client request can interleave and skew the
            # stamps.
            self.applier.resync(
                reply.get("epoch", 0),
                reply.get("stores", {}),
                reply.get("scheme_epochs") or {},
            )
        # The warm handoff lands after the stores are current either
        # way, so imported rows are stamped with live epochs.
        hot = reply.get("hot")
        if isinstance(hot, list) and hot:
            self.service.import_hot_set(hot)
        self._advanced.set()

    async def forward(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        """One mutating envelope through the writer; read-your-writes."""
        frame = await self._request(
            {"op": "fwd", "envelope": wire_envelope(envelope)}
        )
        delta = frame.get("delta")
        if delta is not None:
            status = self.applier.offer(delta)
            if status == "resync":
                await self._sync()
            elif status == "buffered":
                await self._wait_applied(delta["epoch"])
            else:
                self._advanced.set()
        reply = frame.get("reply")
        if not isinstance(reply, dict):
            return {
                "ok": False,
                "error": "internal",
                "detail": "writer returned no reply",
            }
        return reply

    async def _wait_applied(self, epoch: int, timeout: float = 10.0) -> None:
        """Block until the update log has caught up to ``epoch``."""
        deadline = asyncio.get_running_loop().time() + timeout
        while self.applier.applied < epoch:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                await self._sync()
                return
            self._advanced.clear()
            if self.applier.applied >= epoch:
                break
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._advanced.wait(), timeout=remaining)

    async def _pump(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                op = frame.get("op")
                if op in ("fwd_reply", "sync_reply"):
                    future = self._pending.get(frame.get("id"))
                    if future is not None and not future.done():
                        future.set_result(frame)
                elif op == "delta":
                    status = self.applier.offer(frame.get("delta") or {})
                    if status == "resync":
                        asyncio.ensure_future(self._sync())
                    elif status == "applied":
                        self._advanced.set()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("writer bus connection lost")
                    )
            self._pending.clear()
            if not self._closed and self.on_fatal is not None:
                self.on_fatal()


# --------------------------------------------------------------------------
# Worker processes
# --------------------------------------------------------------------------


def _worker_socket(host: str, port: int) -> socket.socket:
    """A fresh ``SO_REUSEPORT`` listener on the fleet's shared port."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(256)
    return sock


def _worker_main(
    index: int,
    total: int,
    host: str,
    port: int,
    config: ServiceConfig,
    bus_path: str,
    lifeline_read: int,
    lifeline_write: int,
    reuseport: bool,
    shared_sock: Optional[socket.socket],
    ready_path: str,
    shared_cache: Optional[SharedReplyCache] = None,
) -> None:
    # The child inherited the parent's signal handlers and both
    # lifeline ends across fork; reset the former, and drop the write
    # end so the pipe reports EOF the moment the *parent* dies.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    with contextlib.suppress(OSError):
        os.close(lifeline_write)
    sys.exit(
        asyncio.run(
            _worker_async(
                index,
                total,
                host,
                port,
                config,
                bus_path,
                lifeline_read,
                reuseport,
                shared_sock,
                ready_path,
                shared_cache,
            )
        )
    )


async def _worker_async(
    index: int,
    total: int,
    host: str,
    port: int,
    config: ServiceConfig,
    bus_path: str,
    lifeline_read: int,
    reuseport: bool,
    shared_sock: Optional[socket.socket],
    ready_path: str,
    shared_cache: Optional[SharedReplyCache] = None,
) -> int:
    if config.store == "log" and index != 0:
        # The writer owns the journal; readers replay it on boot (a
        # respawn recovers from disk instead of a full network resync)
        # but never append to it.
        config = dataclasses.replace(config, store_read_only=True)
    service = LookupService(config)
    service.worker_index = index
    service.worker_count = total
    service.worker_role = "writer" if index == 0 else "reader"
    # The segment was created pre-fork by the supervisor; every worker
    # inherited the same mapping and writer lock across fork.
    service.shared_cache = shared_cache

    stop = asyncio.Event()
    exit_code = 0
    loop = asyncio.get_running_loop()
    for signame in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signame, stop.set)
    # The lifeline becomes readable exactly once: at EOF, when every
    # write end (held only by the parent) is gone.
    loop.add_reader(lifeline_read, stop.set)

    bus: Optional[WriterBus] = None
    forwarder: Optional[WriteForwarder] = None

    def writer_lost() -> None:
        nonlocal exit_code
        exit_code = 1
        stop.set()

    try:
        if index == 0:
            bus = WriterBus(service, bus_path)
            await bus.start()
            service.forwarder = bus
        else:
            forwarder = WriteForwarder(service, bus_path)
            forwarder.on_fatal = writer_lost
            await forwarder.start()
            service.forwarder = forwarder
        sock = _worker_socket(host, port) if reuseport else shared_sock
        await service.start(sock=sock)
        with open(ready_path, "w", encoding="utf-8") as handle:
            handle.write(f"{host} {port}\n")
        await stop.wait()
    finally:
        loop.remove_reader(lifeline_read)
        await service.stop()
        if forwarder is not None:
            await forwarder.stop()
        if bus is not None:
            await bus.stop()
    return exit_code


# --------------------------------------------------------------------------
# The parent supervisor
# --------------------------------------------------------------------------


class _Supervisor:
    """Fork, watch, respawn readers, fail loud on the writer."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        host: str,
        port: int,
        workers: int,
        ready_file: Optional[str],
    ) -> None:
        if workers < 2:
            raise InvalidParameterError(
                f"the worker fleet wants --workers >= 2, got {workers}"
            )
        self.config = config
        self.host = host
        self.port = port
        self.workers = workers
        self.ready_file = ready_file
        self.ctx = multiprocessing.get_context("fork")
        self.tmpdir = tempfile.mkdtemp(prefix="repro-workers-")
        self.bus_path = os.path.join(self.tmpdir, "writer.sock")
        self.reuseport = reuseport_available()
        self.procs: Dict[int, Any] = {}
        self.respawns: Dict[int, int] = {}
        self._stop = False
        self._placeholder: Optional[socket.socket] = None
        self._shared: Optional[socket.socket] = None
        self._lifeline_r, self._lifeline_w = os.pipe()
        self.shared_cache: Optional[SharedReplyCache] = None
        if config.shared_cache and config.cache_size:
            # Created before any fork so every worker inherits the one
            # mapping.  A box without (enough) /dev/shm just falls back
            # to the per-process caches — never a boot failure.
            try:
                self.shared_cache = SharedReplyCache()
            except (OSError, ValueError) as exc:
                print(
                    f"[serve] shared reply cache unavailable ({exc}); "
                    "workers fall back to per-process caches",
                    file=sys.stderr,
                    flush=True,
                )

    # -- socket setup --------------------------------------------------------

    def bind(self) -> None:
        """Resolve the fleet's one (host, port) before forking.

        With ``SO_REUSEPORT`` the parent binds a placeholder (never
        listened on) purely to pin an ephemeral port; each worker then
        binds its own listener.  Without it, the parent binds the one
        real listening socket and the workers inherit it across fork —
        correct, but all accepts contend on one queue.
        """
        if self.reuseport:
            self._placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            self._placeholder.bind((self.host, self.port))
            self.host, self.port = self._placeholder.getsockname()[:2]
        else:
            self._shared = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._shared.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._shared.bind((self.host, self.port))
            self._shared.listen(256)
            self.host, self.port = self._shared.getsockname()[:2]

    # -- process management --------------------------------------------------

    def _ready_path(self, index: int) -> str:
        return os.path.join(self.tmpdir, f"worker-{index}.ready")

    def spawn(self, index: int) -> None:
        ready = self._ready_path(index)
        with contextlib.suppress(FileNotFoundError):
            os.unlink(ready)
        process = self.ctx.Process(
            target=_worker_main,
            args=(
                index,
                self.workers,
                self.host,
                self.port,
                self.config,
                self.bus_path,
                self._lifeline_r,
                self._lifeline_w,
                self.reuseport,
                self._shared,
                ready,
                self.shared_cache,
            ),
            name=f"repro-worker-{index}",
        )
        process.start()
        self.procs[index] = process

    def wait_ready(self, index: int, timeout: float = 30.0) -> None:
        ready = self._ready_path(index)
        process = self.procs[index]
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if process.exitcode is not None:
                raise RuntimeError(
                    f"worker {index} exited {process.exitcode} at boot"
                )
            if os.path.exists(ready) and os.path.getsize(ready) > 0:
                return
            time.sleep(0.05)
        raise RuntimeError(f"worker {index} never became ready")

    def write_manifests(self) -> None:
        """The parent ready file plus the worker pid manifest.

        The manifest (``<ready-file>.workers``, one ``index pid`` line
        per live worker) is how the chaos harness finds victims; it is
        rewritten after every respawn.
        """
        if not self.ready_file:
            return
        with open(f"{self.ready_file}.workers", "w", encoding="utf-8") as handle:
            for index in sorted(self.procs):
                handle.write(f"{index} {self.procs[index].pid}\n")

    def start_fleet(self) -> None:
        self.bind()
        # Writer first: the bus socket must exist before readers dial
        # it (they retry, but an ordered boot keeps logs clean).
        self.spawn(0)
        self.wait_ready(0)
        for index in range(1, self.workers):
            self.spawn(index)
        for index in range(1, self.workers):
            self.wait_ready(index)
        if self._placeholder is not None:
            # Every worker holds its own REUSEPORT listener now; the
            # port-pinning placeholder would otherwise black-hole a
            # share of incoming connections (bound, never accepting).
            self._placeholder.close()
            self._placeholder = None
        if self.ready_file:
            with open(self.ready_file, "w", encoding="utf-8") as handle:
                handle.write(f"{self.host} {self.port}\n")
        self.write_manifests()

    def request_stop(self, *_args: Any) -> None:
        self._stop = True

    def supervise(self) -> int:
        """Watch the children; returns the fleet's exit code."""
        while not self._stop:
            sentinels = {
                process.sentinel: index for index, process in self.procs.items()
            }
            for sentinel in multiprocessing.connection.wait(
                list(sentinels), timeout=0.2
            ):
                index = sentinels[sentinel]
                process = self.procs[index]
                process.join()
                if self._stop:
                    continue
                if index == 0:
                    print(
                        f"[serve] writer worker died (exit {process.exitcode}); "
                        "failing the fleet loudly",
                        file=sys.stderr,
                        flush=True,
                    )
                    return 1
                self.respawns[index] = self.respawns.get(index, 0) + 1
                if self.respawns[index] > MAX_RESPAWNS:
                    print(
                        f"[serve] reader worker {index} died "
                        f"{self.respawns[index]} times; giving up",
                        file=sys.stderr,
                        flush=True,
                    )
                    return 1
                print(
                    f"[serve] reader worker {index} died "
                    f"(exit {process.exitcode}); respawning",
                    file=sys.stderr,
                    flush=True,
                )
                try:
                    self.spawn(index)
                    self.wait_ready(index)
                except RuntimeError as exc:
                    print(f"[serve] respawn failed: {exc}", file=sys.stderr)
                    return 1
                self.write_manifests()
        return 0

    def shutdown(self) -> None:
        for process in self.procs.values():
            if process.exitcode is None:
                with contextlib.suppress(ProcessLookupError, OSError):
                    process.terminate()
        deadline = time.monotonic() + 10
        for process in self.procs.values():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.exitcode is None:
                process.kill()
                process.join()
        with contextlib.suppress(OSError):
            os.close(self._lifeline_w)
        with contextlib.suppress(OSError):
            os.close(self._lifeline_r)
        for sock in (self._placeholder, self._shared):
            if sock is not None:
                sock.close()
        if self.shared_cache is not None:
            self.shared_cache.close(unlink=True)
            self.shared_cache = None
        with contextlib.suppress(OSError):
            import shutil

            shutil.rmtree(self.tmpdir, ignore_errors=True)


def run_worker_fleet(
    config: ServiceConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    ready_file: Optional[str] = None,
) -> int:
    """``repro serve --workers N``: boot, supervise, tear down.

    Returns the process exit code: 0 on a clean (signal-requested)
    shutdown, 1 when the writer died or a reader could not be kept
    alive — the fleet never limps along without its mutation path.
    """
    supervisor = _Supervisor(
        config, host=host, port=port, workers=workers, ready_file=ready_file
    )
    try:
        supervisor.start_fleet()
    except Exception as exc:  # noqa: BLE001 - boot is all-or-nothing
        print(f"[serve] worker fleet failed to boot: {exc}", file=sys.stderr)
        supervisor.shutdown()
        return 1
    mode = "SO_REUSEPORT" if supervisor.reuseport else "shared socket"
    print(
        f"[serve] {len(config.schemes)} schemes on {config.server_count} "
        f"servers, listening on {supervisor.host}:{supervisor.port} "
        f"with {workers} workers ({mode}, worker 0 writes)",
        flush=True,
    )
    previous = {
        signame: signal.signal(signame, supervisor.request_stop)
        for signame in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        code = supervisor.supervise()
    finally:
        for signame, handler in previous.items():
            signal.signal(signame, handler)
        supervisor.shutdown()
        print("[serve] stopped", flush=True)
    return code


__all__ = [
    "MAX_DELTA_BUFFER",
    "MAX_RESPAWNS",
    "DeltaApplier",
    "WriteForwarder",
    "WriterBus",
    "apply_delta",
    "compute_apply_delta",
    "load_snapshot",
    "reuseport_available",
    "run_worker_fleet",
    "snapshot_stores",
    "wire_envelope",
]
