"""Plot experiment series as ASCII charts in the terminal.

The paper's figures are line charts; a terminal reproduction should be
able to *show* them, not just tabulate.  This module renders one or
more named series on a shared pair of axes using only text, with
automatic scaling, axis ticks, and a legend — no plotting dependency.

Layout::

    title
    y_max |        B
          |     B  A
          |  A  A
    y_min |A
          +-----------
           x0 ... x1
    legend: A=<series1> B=<series2>
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import InvalidParameterError

#: Series markers, assigned in order.
_MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _nice_number(value: float) -> str:
    """Format an axis tick compactly."""
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.3g}"
    if abs(value) >= 1:
        return f"{value:.4g}"
    return f"{value:.3g}"


def _scale(value: float, low: float, high: float, cells: int) -> int:
    """Map ``value`` in [low, high] onto a cell index in [0, cells-1]."""
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(cells - 1, max(0, int(round(fraction * (cells - 1)))))


def ascii_plot(
    series: Dict[str, Dict[float, float]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """Render named series as a text scatter/line chart.

    Parameters
    ----------
    series:
        Curve name → {x: y}.  Curves may cover different x values.
    width, height:
        Plot-area size in character cells (excluding axes/labels).
    log_y:
        Plot log10(y); zero/negative points are clamped to the
        smallest positive y present (used for Figure 12's log-scale
        failure rates).
    """
    if not series or all(not curve for curve in series.values()):
        raise InvalidParameterError("nothing to plot")
    if width < 8 or height < 4:
        raise InvalidParameterError("plot area too small")

    points: List[Tuple[float, float, str]] = []
    positive = [
        y for curve in series.values() for y in curve.values() if y > 0
    ]
    floor = min(positive) if positive else 1.0
    for marker, (name, curve) in zip(_MARKERS, series.items()):
        for x, y in curve.items():
            if log_y:
                y = math.log10(max(y, floor))
            points.append((float(x), float(y), marker))
    if not points:
        raise InvalidParameterError("nothing to plot")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_low == y_high:
        y_low -= 0.5
        y_high += 0.5

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        # Later series overwrite earlier ones on collision; that is the
        # usual text-plot compromise and is fine at these densities.
        grid[row][column] = marker

    def y_tick(value: float) -> str:
        if log_y:
            return _nice_number(10**value)
        return _nice_number(value)

    label_width = max(len(y_tick(y_low)), len(y_tick(y_high))) + 1
    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[y: {y_label}{', log scale' if log_y else ''}]")
    for index, row in enumerate(grid):
        if index == 0:
            prefix = y_tick(y_high).rjust(label_width)
        elif index == height - 1:
            prefix = y_tick(y_low).rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (
        _nice_number(x_low)
        + " " * max(1, width - len(_nice_number(x_low)) - len(_nice_number(x_high)))
        + _nice_number(x_high)
    )
    lines.append(" " * (label_width + 2) + x_axis)
    if x_label:
        lines.append(" " * (label_width + 2) + f"[x: {x_label}]")
    legend = "  ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def plot_experiment(
    result,
    x_header: Optional[str] = None,
    series_headers: Optional[Sequence[str]] = None,
    log_y: bool = False,
    width: int = 64,
    height: int = 16,
) -> str:
    """Plot an :class:`~repro.experiments.runner.ExperimentResult`.

    By default the first column is the x axis and every other numeric
    column is a series — which matches all the figure experiments'
    row layouts.
    """
    if not result.rows:
        raise InvalidParameterError(f"experiment {result.name!r} has no rows")
    headers = result.headers
    x_key = x_header if x_header is not None else headers[0]
    candidates = series_headers or [h for h in headers if h != x_key]
    series: Dict[str, Dict[float, float]] = {}
    for header in candidates:
        curve: Dict[float, float] = {}
        for row in result.rows:
            x_value = row.get(x_key)
            y_value = row.get(header)
            if isinstance(x_value, (int, float)) and isinstance(
                y_value, (int, float)
            ):
                curve[float(x_value)] = float(y_value)
        if curve:
            series[header] = curve
    return ascii_plot(
        series,
        title=result.name,
        x_label=str(x_key),
        log_y=log_y,
        width=width,
        height=height,
    )
