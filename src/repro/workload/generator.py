"""Steady-state update-trace generation (paper §6.1).

A workload is: an initial population of ``h`` entries placed at time
zero, adds arriving as a Poisson process, and a delete scheduled at the
end of each entry's sampled lifetime.  With arrival gap λ and lifetime
expectation λ·h, Little's law keeps the expected population at ``h``
over time — "the expected number of entries maintained by the servers
is constant", as the paper requires for its steady-state measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.entry import Entry, make_entries
from repro.core.exceptions import InvalidParameterError
from repro.simulation.events import AddEvent, DeleteEvent, Event
from repro.workload.arrivals import PoissonArrivals
from repro.workload.lifetimes import ExponentialLifetime, LifetimeDistribution


@dataclass(frozen=True)
class WorkloadTrace:
    """A generated trace: the initial placement plus timed updates."""

    initial_entries: Tuple[Entry, ...]
    events: Tuple[Event, ...]

    @property
    def update_count(self) -> int:
        return len(self.events)

    def adds(self) -> List[AddEvent]:
        return [e for e in self.events if isinstance(e, AddEvent)]

    def deletes(self) -> List[DeleteEvent]:
        return [e for e in self.events if isinstance(e, DeleteEvent)]


class SteadyStateWorkload:
    """Generates steady-state update traces for the dynamic experiments.

    Parameters
    ----------
    entry_count:
        Target steady-state population ``h``.
    arrival_gap:
        Mean time between adds — the paper's λ, default 10.
    lifetime:
        Lifetime distribution; defaults to exponential with mean
        ``arrival_gap * entry_count`` (the paper's scaling).
    rng:
        Randomness source for arrivals and lifetimes.

    >>> workload = SteadyStateWorkload(100, rng=random.Random(3))
    >>> trace = workload.generate(2000)
    >>> trace.update_count
    2000
    >>> len(trace.initial_entries)
    100
    """

    def __init__(
        self,
        entry_count: int,
        arrival_gap: float = 10.0,
        lifetime: Optional[LifetimeDistribution] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if entry_count < 1:
            raise InvalidParameterError(f"entry_count must be >= 1, got {entry_count}")
        self.entry_count = entry_count
        self.arrival_gap = arrival_gap
        self.lifetime = lifetime or ExponentialLifetime(arrival_gap * entry_count)
        self.rng = rng if rng is not None else random.Random()

    def generate(self, total_updates: int) -> WorkloadTrace:
        """A trace with exactly ``total_updates`` add+delete events.

        The initial ``h`` entries are placed out-of-band at time zero
        (via ``strategy.place``) and each receives a delete at its
        sampled lifetime; subsequent adds arrive by the Poisson
        process, each paired with its own delete.  Events are sorted
        by time and the trace is truncated to the first
        ``total_updates`` updates, matching the paper's "sequence of
        10000 updates per run" accounting.
        """
        if total_updates < 0:
            raise InvalidParameterError("total_updates must be non-negative")
        initial = make_entries(self.entry_count, prefix="v")
        events: List[Event] = []
        for entry in initial:
            events.append(DeleteEvent(self.lifetime.sample(self.rng), entry))

        # Adds must be generated past any horizon the deletes reach;
        # generating total_updates arrivals is always sufficient since
        # each add contributes >= 1 update by itself.
        arrivals = iter(PoissonArrivals(self.arrival_gap, self.rng))
        for index in range(total_updates):
            arrival_time = next(arrivals)
            entry = Entry(f"u{index + 1}")
            events.append(AddEvent(arrival_time, entry))
            events.append(
                DeleteEvent(arrival_time + self.lifetime.sample(self.rng), entry)
            )

        events.sort(key=lambda event: event.time)
        chosen = events[:total_updates]

        # Drop deletes whose matching add was truncated away — they
        # could never fire against the strategy.  (Initial entries'
        # deletes always have a matching placement.)
        placed_ids = {entry.entry_id for entry in initial}
        trace_events: List[Event] = []
        for event in chosen:
            if isinstance(event, AddEvent):
                placed_ids.add(event.entry.entry_id)
                trace_events.append(event)
            elif isinstance(event, DeleteEvent):
                if event.entry.entry_id in placed_ids:
                    trace_events.append(event)
        return WorkloadTrace(tuple(initial), tuple(trace_events))
