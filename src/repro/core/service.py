"""The multi-key partial lookup directory.

The paper analyzes single-key strategies and notes (Section 2) that a
multi-key service simply "replicates a single-key strategy to manage
more than one key at a time", and that *different* strategies can
manage different kinds of keys — frequently-updated keys want cheap
updates, static keys want low lookup cost and fairness.

:class:`PartialLookupDirectory` is that composition: one shared
cluster, one independently-configured placement strategy per key.  It
implements the full :class:`~repro.core.interface.PartialLookupService`
interface and is the main entry point for application code (see
``examples/``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set

from repro.core.entry import Entry, coerce_entries, coerce_entry
from repro.core.exceptions import UnknownKeyError
from repro.core.interface import PartialLookupService
from repro.core.result import LookupResult


class PartialLookupDirectory(PartialLookupService):
    """A key → entries directory backed by per-key placement strategies.

    Parameters
    ----------
    cluster:
        The shared :class:`~repro.cluster.cluster.Cluster`.  Distinct
        keys install independent logics and stores on its servers, so
        they never interfere.
    default_strategy:
        Strategy name used for keys first seen via ``place``/``add``
        when no explicit configuration exists.
    default_params:
        Constructor parameters for the default strategy.

    Example
    -------
    >>> from repro.cluster import Cluster
    >>> directory = PartialLookupDirectory(
    ...     Cluster(10, seed=42), default_strategy="round_robin",
    ...     default_params={"y": 2})
    >>> directory.place("song/stairway", [f"host{i}" for i in range(30)])
    >>> directory.partial_lookup("song/stairway", 3).success
    True
    """

    def __init__(
        self,
        cluster,
        default_strategy: str = "full_replication",
        default_params: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.cluster = cluster
        self._default_strategy = default_strategy
        self._default_params = dict(default_params or {})
        self._strategies: Dict[str, Any] = {}

    # -- key configuration ------------------------------------------------------

    def configure_key(
        self, key: str, strategy: str, **params: Any
    ) -> None:
        """Bind ``key`` to a named strategy with ``params``.

        Must be called before the key's first placement; reconfiguring
        a live key would orphan its existing placement, so it is
        rejected.
        """
        if key in self._strategies:
            raise UnknownKeyError(
                f"key {key!r} is already managed; reconfiguration is not supported"
            )
        self._strategies[key] = self._build(key, strategy, params)

    def _build(self, key: str, strategy_name: str, params: Dict[str, Any]):
        # Imported here to avoid a core → strategies import cycle at
        # module load (strategies import core result/entry types).
        from repro.strategies.registry import create_strategy

        return create_strategy(strategy_name, self.cluster, key=key, **params)

    def _strategy_for(self, key: str, create: bool = False):
        if key not in self._strategies:
            if not create:
                raise UnknownKeyError(f"key {key!r} is not managed by this directory")
            self._strategies[key] = self._build(
                key, self._default_strategy, self._default_params
            )
        return self._strategies[key]

    def keys(self) -> List[str]:
        """All managed keys, in configuration order."""
        return list(self._strategies)

    def strategy_name(self, key: str) -> str:
        """The name of the strategy managing ``key``."""
        return self._strategy_for(key).name

    def strategy(self, key: str):
        """The live strategy instance managing ``key``.

        Exposed so callers can run the metrics suite against one
        key's placement; mutating the strategy directly bypasses the
        directory's bookkeeping and should be avoided.
        """
        return self._strategy_for(key)

    # -- PartialLookupService interface -------------------------------------------

    def place(self, key: str, entries: Iterable[Any]) -> None:
        """Batch-set the entries of ``key`` (creating it if new).

        Accepts raw strings as well as :class:`Entry` objects, for
        ergonomic application code.
        """
        batch = coerce_entries(entries)
        self._strategy_for(key, create=True).place(batch)

    def add(self, key: str, entry: Any) -> None:
        self._strategy_for(key, create=True).add(coerce_entry(entry))

    def delete(self, key: str, entry: Any) -> None:
        self._strategy_for(key).delete(coerce_entry(entry))

    def partial_lookup(self, key: str, target: int) -> LookupResult:
        """At least ``target`` distinct entries for ``key``.

        Unknown keys return an empty, unsuccessful result rather than
        raising — a lookup for a key nobody placed is the paper's
        "Else return ∅" case, not an error.
        """
        if key not in self._strategies:
            return LookupResult(entries=(), target=target)
        return self._strategies[key].partial_lookup(target)

    def lookup(self, key: str) -> Set[Entry]:
        """Traditional full lookup: every retrievable entry of ``key``."""
        if key not in self._strategies:
            return set()
        return self._strategies[key].lookup_all()

    # -- observability -------------------------------------------------------------

    def storage_cost(self, key: Optional[str] = None) -> int:
        """Stored entries for one key, or for the whole directory."""
        if key is not None:
            return self._strategy_for(key).storage_cost()
        return sum(s.storage_cost() for s in self._strategies.values())

    def coverage(self, key: str) -> int:
        return self._strategy_for(key).coverage()
