"""Benchmark: regenerate Figure 7 (fault tolerance vs target size).

Paper shape: Round-2 follows n − ⌈tn/h⌉ + y − 1 (drops one per 10 of
target); RandomServer-20 at or above Round-2 thanks to accidental
overlap redundancy; Hash-2 declines in an S-shape, worst mid-range.
"""

from _bench_utils import render_and_print

from repro.experiments.fig7_fault_tolerance import Fig7Config, run


def test_bench_fig7_fault_tolerance(benchmark):
    config = Fig7Config(runs=100)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    for row in result.rows:
        # Round-Robin is deterministic: the greedy heuristic must land
        # exactly on the closed form at every target.
        assert row["round_robin_2"] == row["round_robin_formula"]
        # §4.4: random overlaps give RandomServer extra tolerance on
        # average; a small tolerance absorbs greedy-heuristic noise on
        # unlucky placements at the largest targets.
        assert row["random_server_20"] >= row["round_robin_2"] - 0.2

    # Monotone decline for every scheme.
    for label in ("random_server_20", "hash_2", "round_robin_2"):
        values = result.column(label)
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    # Hash-2 is the weakest scheme through the mid-range targets.
    for target in (15, 20, 25, 30, 35):
        row = result.row_for(target=target)
        assert row["hash_2"] <= min(row["random_server_20"], row["round_robin_2"]) + 0.2
