"""The asyncio network service: real sockets over the sans-IO core.

This package is the second driver for the protocol state machines in
:mod:`repro.protocol` (the first is the simulated
:class:`~repro.cluster.network.Network`).  It has three parts:

- :mod:`repro.net.codec` — the length-prefixed wire format for the
  typed messages in :mod:`repro.cluster.messages`: JSON (the
  mandatory fallback every peer speaks) plus a compact binary codec
  negotiated per connection via the ``hello`` op.
- :mod:`repro.net.results` — the frozen typed answers
  (:class:`~repro.net.results.LookupResult`,
  :class:`~repro.net.results.LookupReport`) returned by the client
  and router lookup surfaces.
- :mod:`repro.net.service` — an asyncio server hosting a cluster's
  :class:`~repro.protocol.server.ServerProtocol` instances behind one
  listening socket.
- :mod:`repro.net.cache` — the hot-key reply cache: an epoch-
  invalidated LRU of fully packed lookup replies for the RNG-free
  lookup shapes (cache-on and cache-off services are byte-identical
  on the wire).
- :mod:`repro.net.workers` — the multi-core worker fleet behind
  ``serve --workers N``: SO_REUSEPORT acceptors, a single writer
  applying every mutation, and an epoch-stamped delta log fanning
  state out to the readers.
- :mod:`repro.net.client` — an async client that drives
  :class:`~repro.protocol.lookup.LookupSession` with real request
  timeouts and real ``asyncio.sleep`` backoffs.
- :mod:`repro.net.sharding` — the pure key→shard placement core
  (multi-probe consistent hashing, partial backup replicas).
- :mod:`repro.net.membership` — the asyncio pump driving the sans-IO
  :class:`~repro.protocol.membership.MembershipProtocol` failure
  detector between shards.
- :mod:`repro.net.router` — :class:`~repro.net.router.ShardRouter`,
  the sharded-fleet client: routes keys to home shards, fails over to
  backups, returns *degraded* (never wrong, never hung) results while
  a shard is down.

The ``repro serve`` / ``repro call`` CLI subcommands (see
:mod:`repro.net.cli`) wrap the service and client for interactive use
and the CI smoke job.  Everything here uses only the standard
library — no third-party networking dependencies.
"""

from repro.net.codec import (
    CODEC_BINARY,
    CODEC_JSON,
    SUPPORTED_CODECS,
    FrameError,
    WireError,
    decode_envelope,
    decode_message,
    decode_value,
    encode_envelope,
    encode_message,
    encode_value,
    negotiate_codec,
    read_frame,
    write_frame,
)
from repro.net.cache import ReplyCache
from repro.net.client import AsyncLookupClient, ServiceError, ServiceInfo
from repro.net.results import LookupReport, LookupResult
from repro.net.sharding import ShardMap, partial_replica
from repro.net.service import LookupService, ServiceConfig, shard_names
from repro.net.membership import MembershipPump
from repro.net.router import ShardRouter
from repro.net.workers import run_worker_fleet

__all__ = [
    "AsyncLookupClient",
    "CODEC_BINARY",
    "CODEC_JSON",
    "FrameError",
    "LookupReport",
    "LookupResult",
    "LookupService",
    "MembershipPump",
    "ReplyCache",
    "ServiceConfig",
    "ServiceError",
    "ServiceInfo",
    "ShardMap",
    "ShardRouter",
    "SUPPORTED_CODECS",
    "WireError",
    "negotiate_codec",
    "partial_replica",
    "shard_names",
    "decode_envelope",
    "decode_message",
    "decode_value",
    "encode_envelope",
    "encode_message",
    "encode_value",
    "read_frame",
    "run_worker_fleet",
    "write_frame",
]
