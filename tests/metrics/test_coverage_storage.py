"""Unit tests for the coverage and storage metrics (§4.1, §4.3)."""

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.metrics.coverage import coverage_size, covered_entries, uncovered_entries
from repro.metrics.storage import (
    measured_storage_cost,
    storage_by_server,
    storage_imbalance,
)
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.round_robin import RoundRobinY


class TestStorage:
    def test_measured_matches_strategy(self, cluster):
        strategy = FixedX(cluster, x=20)
        strategy.place(make_entries(100))
        assert measured_storage_cost(strategy) == 200

    def test_by_server_round_robin_balanced(self):
        strategy = RoundRobinY(Cluster(10, seed=1), y=2)
        strategy.place(make_entries(100))
        assert storage_by_server(strategy) == [20] * 10
        assert storage_imbalance(strategy) == 0

    def test_round_robin_imbalance_bounded_by_y(self):
        strategy = RoundRobinY(Cluster(10, seed=1), y=3)
        strategy.place(make_entries(101))  # not divisible by n
        assert storage_imbalance(strategy) <= 3

    def test_hash_can_be_imbalanced(self):
        strategy = HashY(Cluster(10, seed=2), y=2)
        strategy.place(make_entries(100))
        assert storage_imbalance(strategy) > 0


class TestCoverage:
    def test_figure5_placement1(self):
        """Figure 5's placement 1: coverage 2 despite 3 servers."""
        cluster = Cluster(3, seed=1)
        cluster.server(0).store("k").add(Entry("v1"))
        cluster.server(0).store("k").add(Entry("v2"))
        cluster.server(1).store("k").add(Entry("v1"))
        cluster.server(1).store("k").add(Entry("v2"))
        cluster.server(2).store("k").add(Entry("v1"))
        cluster.server(2).store("k").add(Entry("v2"))
        assert cluster.coverage("k") == 2

    def test_figure5_placement2(self):
        """Figure 5's placement 2: coverage 5 with the same budget."""
        cluster = Cluster(3, seed=1)
        cluster.server(0).store("k").add(Entry("v1"))
        cluster.server(0).store("k").add(Entry("v2"))
        cluster.server(1).store("k").add(Entry("v2"))
        cluster.server(1).store("k").add(Entry("v3"))
        cluster.server(2).store("k").add(Entry("v4"))
        cluster.server(2).store("k").add(Entry("v5"))
        assert cluster.coverage("k") == 5

    def test_covered_and_uncovered_partition(self, cluster):
        strategy = FixedX(cluster, x=10)
        universe = make_entries(30)
        strategy.place(universe)
        covered = covered_entries(strategy)
        uncovered = uncovered_entries(strategy, universe)
        assert covered | uncovered == set(universe)
        assert not covered & uncovered
        assert coverage_size(strategy) == 10
        assert len(uncovered) == 20

    def test_deletion_shrinks_coverage(self):
        """Figure 5's point: deleting v2 from placement 1 kills t=2."""
        cluster = Cluster(3, seed=1)
        for sid in range(3):
            cluster.server(sid).store("k").add(Entry("v1"))
            cluster.server(sid).store("k").add(Entry("v2"))
        for sid in range(3):
            cluster.server(sid).store("k").discard(Entry("v2"))
        assert cluster.coverage("k") == 1
