"""Key → shard routing over the membership view, with failover.

A sharded deployment runs N ``repro serve --shard i/N`` processes.
Each logical key (in the hosted services, the scheme keys) has a
*home group* of ``replicas`` shards chosen by the multi-probe
consistent hashing in :mod:`repro.net.sharding` — the first home
shard is the key's **primary** and holds the full placement, the
rest are **backups** holding a deterministic partial replica
(:func:`~repro.net.sharding.partial_replica`).  Router and shards
compute the identical mapping from the shard names alone; no routing
table crosses the wire.

:class:`ShardRouter` drives one
:class:`~repro.protocol.lookup.LookupSession` per lookup whose
contact order spans the home group's servers, primary first.  Shard
death therefore *degrades* lookups instead of erroring them: contacts
on a dead shard surface as dropped/failed contacts (the PR-1
vocabulary), the walk continues onto the backups' servers, and a
short merged answer comes back explicitly labelled
``degraded=True`` — never wrong, never hung (every contact is
timeout-bounded).  The router consumes the membership view
(:mod:`repro.protocol.membership`) to skip shards known dead or
still in rejoin quarantine, so steady-state outage traffic goes
straight to the backups without burning timeouts on the corpse.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.client import RetryPolicy
from repro.core.exceptions import InvalidParameterError
from repro.net.client import AsyncLookupClient, SchemeInfo, ServiceError, ServiceInfo
from repro.net.codec import CODEC_JSON
from repro.net.results import LookupReport, LookupResult
from repro.net.sharding import ShardMap, partial_replica
from repro.protocol.effects import Complete, SendRequest, Sleep
from repro.protocol.events import SLEPT, Event
from repro.protocol.lookup import LookupSession, random_order, stride_order
from repro.protocol.membership import ROUTABLE_STATES

class ShardRouter:
    """A lookup client for a sharded deployment.

    Parameters
    ----------
    shards:
        ``name -> (host, port)`` for every shard, the same universe
        the shards themselves were started with.
    replicas:
        Home-group size per key (primary + backups); must not exceed
        the shard count.
    probes:
        Multi-probe count, forwarded to :class:`ShardMap`.
    rng:
        Injected randomness for contact orders and session draws.
    timeout:
        Per-contact reply timeout, as in :class:`AsyncLookupClient`.
    retry_policy:
        Optional default retry policy applied to every lookup.
    view_ttl:
        How long a fetched membership view is trusted before being
        refreshed, in ``clock`` units.
    clock:
        Injected monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        shards: Mapping[str, Tuple[str, int]],
        *,
        replicas: int = 2,
        probes: int = 21,
        rng: Optional[random.Random] = None,
        timeout: float = 5.0,
        retry_policy: Optional[RetryPolicy] = None,
        view_ttl: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        codec: str = "json",
    ) -> None:
        if not shards:
            raise InvalidParameterError("ShardRouter needs at least one shard")
        if replicas > len(shards):
            raise InvalidParameterError(
                f"replicas ({replicas}) cannot exceed shard count ({len(shards)})"
            )
        self.map = ShardMap(list(shards), probes=probes)
        self.replicas = replicas
        self.retry_policy = retry_policy
        self.codec = codec
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._view_ttl = view_ttl
        self._clients: Dict[str, AsyncLookupClient] = {
            name: AsyncLookupClient(host, port, timeout=timeout, codec=codec)
            for name, (host, port) in sorted(shards.items())
        }
        self._view: Dict[str, str] = {}
        self._view_at: Optional[float] = None
        self._fleet_info: Optional[ServiceInfo] = None

    async def close(self) -> None:
        for client in self._clients.values():
            await client.close()

    # -- membership ----------------------------------------------------------

    async def membership_view(self, refresh: bool = False) -> Dict[str, str]:
        """``shard -> state`` as reported by the first answering shard.

        A single shard's view suffices: every shard runs the same
        failure detector over the same peer set, and the answering
        shard vouches for itself by answering.  An empty dict (no
        shard reachable) makes the router try home shards blindly —
        contacts then fail fast and the lookup degrades rather than
        erroring.
        """
        now = self._clock()
        if (
            not refresh
            and self._view_at is not None
            and now - self._view_at < self._view_ttl
        ):
            return self._view
        for name, client in self._clients.items():
            try:
                value = await client.membership()
            except (ConnectionError, OSError, ServiceError):
                continue
            view = {
                str(peer): str(state)
                for peer, state, _incarnation in value.get("view", [])
            }
            view[name] = "alive"  # it answered
            self._view = view
            self._view_at = now
            return view
        self._view = {}
        self._view_at = now
        return self._view

    # -- lookup routing ------------------------------------------------------

    async def _info(self) -> ServiceInfo:
        """Topology from any reachable shard (the fleet is homogeneous)."""
        if self._fleet_info is not None:
            return self._fleet_info
        last_error: Optional[Exception] = None
        for client in self._clients.values():
            try:
                self._fleet_info = await client.info()
                return self._fleet_info
            except (ConnectionError, OSError, ServiceError) as exc:
                last_error = exc
        raise ServiceError(f"no shard reachable for info: {last_error}")

    def _shard_order(self, spec: SchemeInfo, servers: int) -> List[int]:
        # Mirrors AsyncLookupClient._contact_order: stride draws its
        # start first so seeded routers replay identical walks.
        order = spec.order
        if isinstance(order, dict) and "stride" in order:
            start = self._rng.randrange(servers)
            return stride_order(servers, start, order["stride"], self._rng)
        return random_order(servers, self._rng)

    async def lookup(
        self,
        key: str,
        target: int,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> LookupResult:
        """One partial lookup for ``target`` entries under ``key``.

        Contacts the key's home shards in probe order, skipping shards
        the membership view rules out (dead or quarantined).  Never
        raises on shard death — the result degrades instead.
        """
        info = await self._info()
        spec = info.schemes.get(key)
        if spec is None:
            raise ServiceError(
                f"fleet does not host key {key!r} "
                f"(hosts: {', '.join(sorted(info.schemes))})"
            )
        home = self.map.home(key, self.replicas)
        view = await self.membership_view()
        routed = [
            shard
            for shard in home
            if view.get(shard, "alive") in ROUTABLE_STATES
        ]
        if not routed:
            # The view condemned the whole home group; it may be
            # stale, and a wrong "dead" must cost timeouts, not data.
            routed = list(home)
        targets: List[Tuple[str, int]] = []
        for shard in routed:
            targets.extend(
                (shard, server) for server in self._shard_order(spec, info.servers)
            )
        session = LookupSession(
            key,
            target,
            list(range(len(targets))),
            max_servers=spec.max_servers,
            retry_policy=self.retry_policy if retry is None else retry,
            rng=self._rng,
        )
        effects = session.start()
        while True:
            event: Optional[Event] = None
            for effect in effects:
                if isinstance(effect, SendRequest):
                    shard, server = targets[effect.server_id]
                    event = await self._clients[shard].contact_server(
                        server,
                        key,
                        effect.request,
                        event_server_id=effect.server_id,
                    )
                elif isinstance(effect, Sleep):
                    await asyncio.sleep(effect.delay)
                    event = SLEPT
                elif isinstance(effect, Complete):
                    result = effect.result
                    contacts = tuple(targets[i] for i in result.servers_contacted)
                    return LookupResult.from_core(
                        key,
                        result,
                        codec=self._contact_codec(contacts),
                        home=tuple(home),
                        routed=tuple(routed),
                        contacts=contacts,
                    )
            effects = session.on_event(event)

    def _contact_codec(self, contacts: Tuple[Tuple[str, int], ...]) -> str:
        """The codec the first answering contact's connection speaks."""
        for shard, _server in contacts:
            conn = self._clients[shard]._pool.get(0)
            if conn is not None:
                return conn.codec
        return CODEC_JSON

    async def lookup_many(
        self,
        requests: Sequence[Tuple[str, int]],
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> LookupReport:
        """Many ``(key, target)`` lookups, fanned out by home shard.

        Requests are grouped by their key's primary home shard; the
        groups run concurrently (one coroutine per primary, so a slow
        or dead shard only stalls its own keys) while requests inside
        a group run in order.  Results come back in request order in a
        :class:`~repro.net.results.LookupReport`.
        """
        groups: Dict[str, List[int]] = {}
        for index, (key, _target) in enumerate(requests):
            primary = self.map.home(key, self.replicas)[0]
            groups.setdefault(primary, []).append(index)
        results: List[Optional[LookupResult]] = [None] * len(requests)

        async def run_group(indices: List[int]) -> None:
            for index in indices:
                key, target = requests[index]
                results[index] = await self.lookup(key, target, retry=retry)

        await asyncio.gather(*(run_group(idx) for idx in groups.values()))
        return LookupReport(results=tuple(results))  # type: ignore[arg-type]

    async def verify(self, key: str) -> Dict[str, Any]:
        """The ``verify`` report from the key's first reachable home shard."""
        last_error: Optional[Exception] = None
        for shard in self.map.home(key, self.replicas):
            try:
                return await self._clients[shard].verify(key)
            except (ConnectionError, OSError, ServiceError) as exc:
                last_error = exc
        raise ServiceError(f"no home shard reachable for verify({key!r}): {last_error}")


__all__ = [
    "ShardMap",
    "ShardRouter",
    "partial_replica",
]
