"""Unit tests for the Poisson arrival process."""

import random
import statistics

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.workload.arrivals import PoissonArrivals


class TestPoissonArrivals:
    def test_timestamps_increasing(self):
        arrivals = PoissonArrivals(10.0, random.Random(1))
        times = arrivals.first(100)
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_mean_gap_matches(self):
        arrivals = PoissonArrivals(10.0, random.Random(2))
        times = arrivals.first(5000)
        gaps = [b - a for a, b in zip([0.0] + times, times)]
        assert abs(statistics.mean(gaps) - 10.0) < 0.5

    def test_rate_property(self):
        assert PoissonArrivals(10.0, random.Random(1)).rate == pytest.approx(0.1)

    def test_gaps_exponential_cv_near_one(self):
        # Exponential inter-arrivals have coefficient of variation 1.
        arrivals = PoissonArrivals(10.0, random.Random(3))
        times = arrivals.first(5000)
        gaps = [b - a for a, b in zip([0.0] + times, times)]
        cv = statistics.stdev(gaps) / statistics.mean(gaps)
        assert abs(cv - 1.0) < 0.08

    def test_seeded_reproducibility(self):
        a = PoissonArrivals(10.0, random.Random(4)).first(50)
        b = PoissonArrivals(10.0, random.Random(4)).first(50)
        assert a == b

    def test_invalid_gap(self):
        with pytest.raises(InvalidParameterError):
            PoissonArrivals(0.0, random.Random(1))
