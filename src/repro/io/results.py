"""Save and load experiment results (JSON and CSV).

The JSON form round-trips the full :class:`ExperimentResult` (name,
headers, rows, meta); the CSV form exports just the rows for
spreadsheet/pandas analysis.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Union

from repro.core.exceptions import InvalidParameterError
from repro.experiments.runner import ExperimentResult

PathLike = Union[str, pathlib.Path]

#: Format version stamped into saved files, so future readers can
#: detect and migrate old layouts.
FORMAT_VERSION = 1


def save_result(result: ExperimentResult, path: PathLike) -> pathlib.Path:
    """Write ``result`` as JSON; parent directories are created."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": FORMAT_VERSION,
        "name": result.name,
        "headers": result.headers,
        "rows": result.rows,
        "meta": result.meta,
    }
    target.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return target


def load_result(path: PathLike) -> ExperimentResult:
    """Read a result saved by :func:`save_result`."""
    source = pathlib.Path(path)
    payload = json.loads(source.read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise InvalidParameterError(
            f"{source} has format version {version!r}; "
            f"this reader supports {FORMAT_VERSION}"
        )
    return ExperimentResult(
        name=payload["name"],
        headers=list(payload["headers"]),
        rows=list(payload["rows"]),
        meta=dict(payload.get("meta", {})),
    )


def result_to_csv(result: ExperimentResult, path: PathLike = None) -> str:
    """Render rows as CSV; optionally also write them to ``path``."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=result.headers, lineterminator="\n")
    writer.writeheader()
    for row in result.rows:
        writer.writerow({h: row.get(h, "") for h in result.headers})
    text = buffer.getvalue()
    if path is not None:
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    return text
