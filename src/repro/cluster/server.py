"""A simulated lookup server: local entry store plus strategy logic.

A :class:`Server` is deliberately thin.  It owns, per key, an ordered
local entry store and an opaque per-strategy state dict, and it
dispatches received messages to the :class:`ServerLogic` that the
active placement strategy installed for that key.  All protocol
decisions (broadcast or not, keep a random subset, plug a round-robin
hole, ...) live in the strategy's logic, mirroring the paper's framing
where the *scheme* defines what each server does upon receiving a
message.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Optional

from repro.core.entry import Entry
from repro.cluster.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.network import Network
    from repro.obs.tracer import Tracer


class EntryStore:
    """An insertion-ordered set of entries with O(1) membership.

    Servers need three things from their local store: membership tests
    (Fixed-x's "do I already hold v?"), uniform random sampling (every
    strategy's per-server lookup answer), and deterministic iteration
    order so seeded runs are reproducible.  A list plus a set of ids
    provides all three.
    """

    __slots__ = ("_entries", "_ids")

    def __init__(self, entries: Iterable[Entry] = ()) -> None:
        self._entries: List[Entry] = []
        self._ids: set = set()
        for entry in entries:
            self.add(entry)

    def add(self, entry: Entry) -> bool:
        """Insert ``entry``; return True if it was not already present."""
        if entry.entry_id in self._ids:
            return False
        self._ids.add(entry.entry_id)
        self._entries.append(entry)
        return True

    def discard(self, entry: Entry) -> bool:
        """Remove ``entry`` if present; return True if it was removed."""
        if entry.entry_id not in self._ids:
            return False
        self._ids.remove(entry.entry_id)
        self._entries.remove(entry)
        return True

    def replace(self, old: Entry, new: Entry) -> bool:
        """Swap ``old`` for ``new`` in place, preserving position."""
        if old.entry_id not in self._ids or new.entry_id in self._ids:
            return False
        index = self._entries.index(old)
        self._entries[index] = new
        self._ids.remove(old.entry_id)
        self._ids.add(new.entry_id)
        return True

    def sample(self, count: int, rng: random.Random) -> List[Entry]:
        """Return ``min(count, len(self))`` uniformly sampled entries.

        This implements the per-server lookup answer the paper
        specifies for every strategy: "returns t randomly selected
        entries stored on the server or all the entries if the total
        is less than t".  ``count <= 0`` means "everything".
        """
        if count <= 0 or count >= len(self._entries):
            return list(self._entries)
        return rng.sample(self._entries, count)

    def pop_random(self, rng: random.Random) -> Entry:
        """Remove and return one uniformly random entry."""
        if not self._entries:
            raise KeyError("pop_random from an empty store")
        index = rng.randrange(len(self._entries))
        entry = self._entries[index]
        self._entries.pop(index)
        self._ids.remove(entry.entry_id)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self._ids.clear()

    def __contains__(self, entry: Entry) -> bool:
        return entry.entry_id in self._ids

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    def as_list(self) -> List[Entry]:
        return list(self._entries)

    def as_set(self) -> set:
        return set(self._entries)


class ServerLogic(ABC):
    """Per-strategy message handler installed on every server.

    One logic instance may be shared across all servers (strategies
    keep per-server state in ``server.state``), so implementations must
    not store per-server mutable state on ``self``.
    """

    @abstractmethod
    def handle(self, server: "Server", message: Message, network: "Network") -> Any:
        """Process ``message`` at ``server``; return the reply, if any."""


class Server:
    """One simulated lookup server.

    Attributes
    ----------
    server_id:
        Zero-based identifier; the paper's "server 1" (the Round-Robin
        counter host) is ``server_id == 0`` here.
    alive:
        False while the server is failed; a failed server processes no
        messages (the network suppresses delivery).
    """

    #: How many (delivery id → reply) records the dedupe cache keeps.
    #: Duplicated deliveries arrive immediately after the original in
    #: the synchronous transport, so a small window is ample; the
    #: bound exists so long chaos runs cannot grow memory unboundedly.
    DEDUP_WINDOW = 1024

    def __init__(self, server_id: int) -> None:
        self.server_id = server_id
        self.alive = True
        self._stores: Dict[str, EntryStore] = {}
        self._state: Dict[str, Dict[str, Any]] = {}
        self._logics: Dict[str, ServerLogic] = {}
        self._seen_deliveries: "OrderedDict[int, Any]" = OrderedDict()
        #: Optional structured tracer (see
        #: :meth:`repro.cluster.cluster.Cluster.install_tracer`); when
        #: set, lifecycle *transitions* emit ``server.fail`` /
        #: ``server.recover`` events.
        self.tracer: Optional["Tracer"] = None

    # -- store access ------------------------------------------------------

    def store(self, key: str) -> EntryStore:
        """The local entry store for ``key``, created on first access."""
        if key not in self._stores:
            self._stores[key] = EntryStore()
        return self._stores[key]

    def state(self, key: str) -> Dict[str, Any]:
        """Per-key strategy scratch state (counters, migration maps)."""
        if key not in self._state:
            self._state[key] = {}
        return self._state[key]

    def stored_entry_count(self, key: str) -> int:
        return len(self._stores.get(key, ()))

    def keys(self) -> List[str]:
        return list(self._stores)

    # -- logic installation and dispatch -----------------------------------

    def install_logic(self, key: str, logic: ServerLogic) -> None:
        """Bind ``logic`` as the handler for messages about ``key``."""
        self._logics[key] = logic

    def logic_for(self, key: str) -> Optional[ServerLogic]:
        return self._logics.get(key)

    def receive(self, key: str, message: Message, network: "Network") -> Any:
        """Dispatch a delivered message to the installed logic."""
        logic = self._logics.get(key)
        if logic is None:
            raise RuntimeError(
                f"server {self.server_id} has no logic installed for key {key!r}"
            )
        return logic.handle(self, message, network)

    def receive_dedup(
        self, key: str, message: Message, network: "Network", delivery_id: int
    ) -> Any:
        """Idempotent receive: process each delivery id exactly once.

        The at-least-once transport (a fault plan with duplication)
        may deliver the same logical message twice; the first delivery
        runs the handler and caches its reply, the second returns the
        cached reply without re-running it.  This is what makes every
        update handler idempotent under duplicated delivery without
        each strategy having to reason about redelivery.
        """
        if delivery_id in self._seen_deliveries:
            return self._seen_deliveries[delivery_id]
        reply = self.receive(key, message, network)
        self._seen_deliveries[delivery_id] = reply
        while len(self._seen_deliveries) > self.DEDUP_WINDOW:
            self._seen_deliveries.popitem(last=False)
        return reply

    # -- lifecycle ----------------------------------------------------------

    def fail(self) -> None:
        """Mark the server failed; its state is retained for recovery."""
        if self.tracer is not None and self.alive:
            # Transition-guarded: re-failing a failed server (e.g. a
            # sweep's blanket fail_many) emits nothing.
            self.tracer.event("server.fail", server=self.server_id)
        self.alive = False

    def recover(self) -> None:
        """Bring a failed server back with its pre-failure state intact."""
        if self.tracer is not None and not self.alive:
            self.tracer.event("server.recover", server=self.server_id)
        self.alive = True

    def wipe(self) -> None:
        """Erase all stores and state, as if freshly provisioned."""
        self._stores.clear()
        self._state.clear()
        self._seen_deliveries.clear()

    def __repr__(self) -> str:
        status = "up" if self.alive else "DOWN"
        sizes = {k: len(s) for k, s in self._stores.items()}
        return f"Server({self.server_id}, {status}, stores={sizes})"
