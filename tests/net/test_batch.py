"""Pipelined batches and codec negotiation, end to end over sockets."""

import asyncio
import random
import time

import pytest

from repro.net.client import AsyncLookupClient, ServiceError
from repro.net.codec import CODEC_BINARY, CODEC_JSON
from repro.net.service import MAX_BATCH, LookupService, ServiceConfig

def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


CONFIG = ServiceConfig(server_count=12, entry_count=30, seed=7)


async def with_service(fn, config=CONFIG, service_cls=LookupService):
    service = service_cls(config)
    host, port = await service.start(port=0)
    try:
        return await fn(service, host, port)
    finally:
        await service.stop()


class ReversingService(LookupService):
    """A conforming-but-hostile peer: batch sub-replies arrive in
    *reverse* request order.  Ids are echoed, so a correct client must
    correlate by id and never by position."""

    def _handle_batch(self, envelope, raw=False):
        reply = super()._handle_batch(envelope, raw)
        if reply.get("ok"):
            reply["value"] = list(reversed(reply["value"]))
        return reply


class StallingService(LookupService):
    """Holds every multi-item batch on a stalled handler before
    answering it in reverse order — a slow peer draining out of
    order, the worst case for reply correlation."""

    def __init__(self, config):
        super().__init__(config)
        self.stalls = 0

    def _handle_batch(self, envelope, raw=False):
        reply = super()._handle_batch(envelope, raw)
        if reply.get("ok") and len(reply["value"]) > 1:
            self.stalls += 1
            time.sleep(0.005)
            reply["value"] = list(reversed(reply["value"]))
        return reply


# --------------------------------------------------------------------------
# Negotiation matrix
# --------------------------------------------------------------------------


class TestNegotiationMatrix:
    @pytest.mark.parametrize(
        ("client_codec", "negotiated"),
        [
            ("json", CODEC_JSON),  # legacy client: no hello at all
            ("binary", CODEC_BINARY),
            ("auto", CODEC_BINARY),
        ],
    )
    def test_client_preference(self, client_codec, negotiated):
        async def scenario(service, host, port):
            async with AsyncLookupClient(
                host, port, rng=random.Random(1), codec=client_codec
            ) as client:
                result = await client.lookup("round_robin", 6)
                assert result.success
                conn = await client._conn(0)
                assert conn.codec == negotiated
                # A second lookup on the negotiated connection.
                assert (await client.lookup("hash", 6)).success

        run(with_service(scenario))

    def test_json_only_server_falls_back(self, monkeypatch):
        # Simulate a pre-binary peer: its hello negotiation only ever
        # answers "json".  A binary-preferring client must fall back
        # transparently — same results, JSON frames.
        import repro.net.service as service_mod

        monkeypatch.setattr(
            service_mod, "negotiate_codec", lambda offered: CODEC_JSON
        )

        async def scenario(service, host, port):
            async with AsyncLookupClient(
                host, port, rng=random.Random(1), codec="binary"
            ) as client:
                report = await client.lookup_many("round_robin", [6, 6, 6])
                assert report.all_success
                conn = await client._conn(0)
                assert conn.codec == CODEC_JSON
                assert (conn.caps or {}).get("batch")  # batching still on

        run(with_service(scenario))

    def test_hello_less_server_degrades_to_sequential(self, monkeypatch):
        # A peer that rejects hello outright (oldest wire): the client
        # keeps JSON and lookup_many degrades to sequential lookups.
        original = LookupService.handle_envelope

        def no_hello(self, envelope, *, raw=False):
            if envelope.get("op") == "hello":
                return {
                    "ok": False,
                    "error": "bad-request",
                    "detail": "unknown op: hello",
                }
            return original(self, envelope, raw=raw)

        monkeypatch.setattr(LookupService, "handle_envelope", no_hello)

        async def scenario(service, host, port):
            async with AsyncLookupClient(
                host, port, rng=random.Random(1), codec="binary"
            ) as client:
                report = await client.lookup_many("round_robin", [6, 6])
                assert report.all_success
                conn = await client._conn(0)
                assert conn.codec == CODEC_JSON

        run(with_service(scenario))


# --------------------------------------------------------------------------
# Batched lookups
# --------------------------------------------------------------------------


class TestBatchedLookups:
    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_lookup_many_meets_targets(self, codec):
        async def scenario(service, host, port):
            async with AsyncLookupClient(
                host, port, rng=random.Random(2), codec=codec
            ) as client:
                targets = [6, 1, 8, 3, 6, 8, 2, 5]
                report = await client.lookup_many("round_robin", targets)
                assert len(report) == len(targets)
                assert report.all_success and report.exit_code == 0
                universe = {f"v{i}" for i in range(1, 31)}
                for target, result in zip(targets, report):
                    assert len(result.entries) == target
                    ids = [e.entry_id for e in result.entries]
                    assert len(set(ids)) == target
                    assert set(ids) <= universe

        run(with_service(scenario))

    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_out_of_order_replies_correlate_by_id(self, codec):
        # Distinct targets make misdelivery observable: if the client
        # ever trusted reply order, reversed batches would hand lookup
        # #0's answer to lookup #N and the found-counts would shuffle.
        async def scenario(service, host, port):
            async with AsyncLookupClient(
                host, port, rng=random.Random(3), codec=codec
            ) as client:
                targets = list(range(1, 9))
                report = await client.lookup_many("full_replication", targets)
                assert [len(r.entries) for r in report] == targets
                assert report.all_success

        run(with_service(scenario, service_cls=ReversingService))

    def test_stalled_reversing_peer(self):
        async def scenario(service, host, port):
            async with AsyncLookupClient(
                host, port, rng=random.Random(4), codec="binary"
            ) as client:
                targets = [8, 2, 6, 4, 1, 7]
                report = await client.lookup_many("round_robin", targets)
                assert [len(r.entries) for r in report] == targets
                assert service.stalls > 0  # the hostile path actually ran

        run(with_service(scenario, service_cls=StallingService))

    def test_single_lookup_unchanged_by_batch_support(self):
        # lookup() and lookup_many() must agree on verdicts.
        async def scenario(service, host, port):
            async with AsyncLookupClient(
                host, port, rng=random.Random(5), codec="binary"
            ) as client:
                one = await client.lookup("fixed", 12)  # > x=10 → degraded
                many = await client.lookup_many("fixed", [12, 12])
                assert one.degraded
                assert many.exit_code == 3
                assert all(len(r.entries) == 10 for r in many)

        run(with_service(scenario))


# --------------------------------------------------------------------------
# The batch envelope contract
# --------------------------------------------------------------------------


class TestBatchEnvelope:
    def test_id_echo_int_and_str(self):
        service = LookupService(CONFIG)
        reply = service.handle_envelope(
            {
                "op": "batch",
                "requests": [
                    {"op": "ping", "id": 7},
                    {"op": "ping", "id": "alpha"},
                    {"op": "ping"},
                ],
            }
        )
        assert reply["ok"]
        subs = reply["value"]
        assert subs[0]["id"] == 7
        assert subs[1]["id"] == "alpha"
        assert "id" not in subs[2]

    def test_nested_batch_rejected(self):
        service = LookupService(CONFIG)
        reply = service.handle_envelope(
            {
                "op": "batch",
                "requests": [{"op": "batch", "requests": []}, {"op": "ping"}],
            }
        )
        assert reply["ok"]  # the batch itself succeeds...
        subs = reply["value"]
        assert not subs[0]["ok"]  # ...but the nested one is refused
        assert subs[0]["error"] == "bad-request"
        assert subs[1]["ok"]

    def test_oversized_batch_rejected(self):
        service = LookupService(CONFIG)
        reply = service.handle_envelope(
            {"op": "batch", "requests": [{"op": "ping"}] * (MAX_BATCH + 1)}
        )
        assert not reply["ok"]
        assert reply["error"] == "bad-request"

    def test_malformed_items_fail_individually(self):
        service = LookupService(CONFIG)
        reply = service.handle_envelope(
            {"op": "batch", "requests": [42, {"op": "ping"}]}
        )
        assert reply["ok"]
        assert not reply["value"][0]["ok"]
        assert reply["value"][1]["ok"]
        assert not service.handle_envelope({"op": "batch", "requests": "nope"})[
            "ok"
        ]

    def test_client_batch_method(self):
        async def scenario(service, host, port):
            async with AsyncLookupClient(
                host, port, rng=random.Random(6), codec="binary"
            ) as client:
                replies = await client.batch(
                    [
                        {"op": "ping", "id": 1},
                        {"op": "verify", "key": "round_robin", "id": 2},
                    ]
                )
                assert [r["id"] for r in replies] == [1, 2]
                assert replies[1]["value"]["coverage"] == 30

        run(with_service(scenario))
