"""Figure 9: unfairness vs total storage (static placements).

Paper setup: 100 entries, 10 servers, target answer size 35, total
storage swept 100..1000, 10000 lookups per instance, averaged over
instances.  Full replication and Round-y are exactly fair (zero by
construction) and Fixed-x is "an order of magnitude worse" than
RandomServer-x, so the figure plots RandomServer-x and Hash-y; we add
the Fixed-x closed form as a reference column.

Expected shape: RandomServer-x decreases in two phases — a rapid
coverage-bound decay, then a slow linear tail as single-server lookups
homogenize; Hash-y *increases* at first (more storage → fewer servers
per lookup → the hash placement's inherent bias shows through) and
then declines only slightly.

Scale note: our absolute values follow equation (1) as printed, which
(together with the paper's own §4.5 coverage-bound argument and the
Figure 13 axis) implies values several times larger than Figure 9's
printed axis; see EXPERIMENTS.md for the full reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from repro.analysis.formulas import solve_x_from_budget, solve_y_from_budget
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs_multi
from repro.metrics.unfairness import (
    estimate_unfairness,
    exact_unfairness_uniform_subset,
)
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class Fig9Config:
    entry_count: int = 100
    server_count: int = 10
    target: int = 35
    budgets: Tuple[int, ...] = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
    #: Instances per data point.
    runs: int = 8
    #: Lookups per instance (paper: 10000).
    lookups_per_instance: int = 2000
    seed: int = 9
    #: Which schemes to measure.  The paper's figure plots the two
    #: stochastic schemes; add "fixed"/"round_robin"/"full_replication"
    #: to measure the deterministic ones too (the natural companions
    #: of ``estimator="exact"``).
    schemes: Tuple[str, ...] = ("random_server", "hash")
    #: "mc" (paper default), "exact" (closed form; deterministic
    #: schemes only), or "auto" (exact where available, MC otherwise).
    estimator: str = "mc"


def _build_scheme(name: str, cluster: Cluster, budget: int, h: int, n: int):
    if name == "random_server":
        return RandomServerX(cluster, x=solve_x_from_budget(budget, n), key="rs")
    if name == "hash":
        return HashY(cluster, y=solve_y_from_budget(budget, h), key="h")
    if name == "fixed":
        return FixedX(cluster, x=solve_x_from_budget(budget, n), key="f")
    if name == "round_robin":
        return RoundRobinY(cluster, y=solve_y_from_budget(budget, h), key="rr")
    if name == "full_replication":
        return FullReplication(cluster, key="fr")
    raise InvalidParameterError(f"unknown fig9 scheme {name!r}")


def measure_point(config: Fig9Config, budget: int, seed: int) -> Dict[str, float]:
    """One instance of each scheme at ``budget``; its unfairness."""
    h, n = config.entry_count, config.server_count
    cluster = Cluster(n, seed=seed)
    entries = make_entries(h)
    samples: Dict[str, float] = {}
    # Construct every scheme before placing any: Hash-y draws its hash
    # seed from the cluster RNG at construction, so the construct-all
    # -then-place interleaving is part of the seeded draw sequence.
    strategies = [
        (label, _build_scheme(label, cluster, budget, h, n))
        for label in config.schemes
    ]
    for label, strategy in strategies:
        strategy.place(entries)
        estimate = estimate_unfairness(
            strategy,
            config.target,
            entries,
            config.lookups_per_instance,
            estimator=config.estimator,
        )
        samples[label] = estimate.unfairness
    return samples


def run(
    config: Fig9Config = Fig9Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Figure 9's unfairness-vs-storage series."""
    result = ExperimentResult(
        name="Figure 9: unfairness vs total storage",
        headers=["budget", *config.schemes, "fixed_exact"],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "t": config.target,
            "runs": config.runs,
            "lookups": config.lookups_per_instance,
        },
    )
    if config.estimator != "mc":
        result.meta["estimator"] = config.estimator
    with make_executor(jobs) as executor:
        for budget in config.budgets:
            averaged = average_runs_multi(
                partial(measure_point, config, budget),
                master_seed=config.seed + budget,
                runs=config.runs,
                executor=executor,
            )
            x = solve_x_from_budget(budget, config.server_count)
            row: Dict[str, float] = {"budget": budget}
            for label in config.schemes:
                row[label] = round(averaged[label].mean, 4)
            row["fixed_exact"] = round(
                exact_unfairness_uniform_subset(
                    min(x, config.entry_count),
                    config.entry_count,
                    config.target,
                ),
                4,
            )
            result.rows.append(row)
    return result
