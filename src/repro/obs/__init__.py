"""Observability: structured tracing, metrics export, run manifests.

The paper's evaluation only ever needed aggregate counters; debugging
a chaos soak (or profiling a hot path) needs to see *individual*
behaviour — which server answered which lookup, where a retry's
backoff went, what an anti-entropy sweep actually repaired.  This
package is that layer:

- :mod:`repro.obs.tracer` — :class:`Tracer` collecting typed
  span/event records stamped with the engine's virtual clock and a
  seeded run id;
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of named
  counters/gauges/histograms with a point-in-time snapshot API;
- :mod:`repro.obs.exporters` — JSONL trace writer/reader with schema
  validation, and the flat counters dump;
- :mod:`repro.obs.manifest` — :class:`RunManifest`, the deterministic
  run identity attached to experiment results and trace headers;
- :mod:`repro.obs.membership` — :class:`MembershipObserver`, turning
  the sharded service's failure-detector transitions into
  ``membership.transition`` tracer events and per-state peer gauges.

Everything here is opt-in: with no tracer installed every code path in
the cluster, engine, and experiments is byte-identical to the
pre-observability implementation (no RNG draws, no extra counters).
"""

from repro.obs.manifest import MANIFEST_FORMAT_VERSION, RunManifest
from repro.obs.membership import MembershipObserver
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    RECORD_KEYS,
    TRACE_FORMAT_VERSION,
    SpanHandle,
    TraceRecord,
    Tracer,
)
from repro.obs.exporters import (
    format_counters,
    read_trace,
    validate_trace_records,
    write_counters,
    write_trace,
)

__all__ = [
    "Tracer",
    "TraceRecord",
    "SpanHandle",
    "TRACE_FORMAT_VERSION",
    "RECORD_KEYS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RunManifest",
    "MANIFEST_FORMAT_VERSION",
    "MembershipObserver",
    "write_trace",
    "read_trace",
    "validate_trace_records",
    "write_counters",
    "format_counters",
]
