"""Unfairness: bias in which entries lookups return (paper §4.5).

A fair strategy returns every one of the ``h`` entries with the ideal
probability ``t/h`` on a size-``t`` lookup.  The paper's unfairness of
a placement *instance* is the coefficient of variation of the actual
per-entry retrieval probabilities around that ideal (equation 1):

    U_I = (h/t) · sqrt( Σ_j (p_I(j) − t/h)² / h )

and a *strategy's* unfairness averages ``U_I`` over the instances its
randomness produces.  Retrieval probabilities are estimated by
Monte-Carlo (10000 lookups per instance in the paper), with an exact
path for strategies whose lookups are deterministic enough to
enumerate.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.strategies.base import PlacementStrategy


def instance_unfairness(
    probabilities: Sequence[float], target: int, entry_count: Optional[int] = None
) -> float:
    """Equation (1) on explicit per-entry retrieval probabilities.

    Parameters
    ----------
    probabilities:
        ``p_I(j)`` for each entry ``j`` that exists in the system.
        Entries with zero probability (outside the coverage) must be
        included — they are exactly what drives Figure 9's
        coverage-bound unfairness floor.
    target:
        The lookup target answer size ``t``.
    entry_count:
        ``h``; defaults to ``len(probabilities)``.

    >>> instance_unfairness([1.0, 0.0], target=1)   # Fixed-1, 2 entries
    1.0
    >>> instance_unfairness([0.5, 0.5], target=1)   # perfectly fair
    0.0
    """
    h = entry_count if entry_count is not None else len(probabilities)
    if h < 1:
        raise InvalidParameterError("need at least one entry")
    if target < 1:
        raise InvalidParameterError("target must be >= 1")
    ideal = target / h
    variance = sum((p - ideal) ** 2 for p in probabilities)
    # Entries not listed (when entry_count > len) have probability 0.
    variance += (h - len(probabilities)) * ideal**2
    return (h / target) * math.sqrt(variance / h)


def retrieval_probabilities(
    strategy: PlacementStrategy,
    target: int,
    universe: Iterable[Entry],
    lookups: int = 10000,
) -> Dict[Entry, float]:
    """Monte-Carlo estimate of ``p_I(j)`` for each entry of ``universe``.

    Issues ``lookups`` real partial lookups against the current
    placement and counts how often each entry appears in an answer.
    """
    if lookups < 1:
        raise InvalidParameterError(f"lookups must be >= 1, got {lookups}")
    # Counter.update over a generator stays in C for the whole answer;
    # this loop dominates fig9/fig13-class runs, so it matters.
    counts: Counter = Counter()
    for _ in range(lookups):
        result = strategy.partial_lookup(target)
        counts.update(entry.entry_id for entry in result.entries)
    return {entry: counts[entry.entry_id] / lookups for entry in universe}


@dataclass(frozen=True)
class UnfairnessEstimate:
    """One instance's estimated unfairness, with its inputs."""

    unfairness: float
    target: int
    entry_count: int
    lookups: int
    zero_probability_entries: int


def estimate_unfairness(
    strategy: PlacementStrategy,
    target: int,
    universe: Iterable[Entry],
    lookups: int = 10000,
) -> UnfairnessEstimate:
    """Estimate the unfairness of the strategy's *current* instance.

    Averaging this over freshly re-placed instances gives the paper's
    strategy-level unfairness; :mod:`repro.experiments.fig9_unfairness`
    does exactly that.
    """
    entries = list(universe)
    probabilities = retrieval_probabilities(strategy, target, entries, lookups)
    value = instance_unfairness(
        [probabilities[entry] for entry in entries], target, len(entries)
    )
    zero = sum(1 for entry in entries if probabilities[entry] == 0.0)
    return UnfairnessEstimate(
        unfairness=value,
        target=target,
        entry_count=len(entries),
        lookups=lookups,
        zero_probability_entries=zero,
    )


def exact_unfairness_uniform_subset(
    covered: int, entry_count: int, target: int
) -> float:
    """Closed-form unfairness when lookups uniformly return a fixed subset.

    If exactly ``covered`` of ``h`` entries are ever returned, each
    with equal probability ``t/covered``, equation (1) reduces to
    ``sqrt(h/covered - 1)`` — e.g. Fixed-20 of 100 entries gives
    ``sqrt(5 - 1) = 2``, the constant the paper quotes in §6.3.

    >>> round(exact_unfairness_uniform_subset(20, 100, 35), 10)
    2.0
    """
    if not 1 <= covered <= entry_count:
        raise InvalidParameterError("need 1 <= covered <= entry_count")
    if target < 1:
        raise InvalidParameterError("target must be >= 1")
    return math.sqrt(entry_count / covered - 1)
