"""Unit tests for the retrying client under lossy transport."""

import random

import pytest

from repro.cluster.client import Client, RetryPolicy
from repro.cluster.cluster import Cluster
from repro.cluster.faults import Blackout, FaultPlan
from repro.cluster.messages import LookupRequest, StoreMessage
from repro.cluster.server import ServerLogic
from repro.core.exceptions import InvalidParameterError


class _StoreLookupLogic(ServerLogic):
    def handle(self, server, message, network):
        if isinstance(message, StoreMessage):
            server.store("k").add(message.entry)
            return True
        if isinstance(message, LookupRequest):
            return server.store("k").sample(message.target, random.Random(0))
        return None


def _cluster_with_entries(size=3, per_server=2):
    from repro.core.entry import Entry

    cluster = Cluster(size, seed=11)
    logic = _StoreLookupLogic()
    for server in cluster.servers:
        server.install_logic("k", logic)
    for sid, server in enumerate(cluster.servers):
        for j in range(per_server):
            server.store("k").add(Entry(f"s{sid}e{j}"))
    return cluster


class TestRetryPolicyValidation:
    def test_bounds(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(base_backoff=-1)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter=2.0)

    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(base_backoff=2.0, backoff_multiplier=3.0,
                             jitter=0.0)
        rng = random.Random(0)
        assert policy.delay(0, rng) == 2.0
        assert policy.delay(1, rng) == 6.0
        assert policy.delay(2, rng) == 18.0

    def test_jitter_is_seeded(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay(0, random.Random(5)) == policy.delay(
            0, random.Random(5)
        )


class TestRetries:
    def test_default_client_never_retries(self):
        cluster = _cluster_with_entries()
        client = Client(cluster)
        assert client.retry_policy is None
        result = client.collect("k", 2, [0, 1, 2])
        assert result.retries == 0
        assert result.backoff == 0.0

    def test_retry_recovers_a_transient_drop(self):
        # Server 0 is blacked out for exactly its first delivery
        # attempt; a single-pass client comes up empty, a retrying
        # client succeeds on the second pass.
        cluster = _cluster_with_entries(size=1)
        cluster.network.install_fault_plan(
            FaultPlan(blackouts=(Blackout(0, 0, 1),))
        )
        single = Client(cluster).collect("k", 2, [0])
        assert not single.success
        assert single.failed_contacts == (0,)

        cluster2 = _cluster_with_entries(size=1)
        cluster2.network.install_fault_plan(
            FaultPlan(blackouts=(Blackout(0, 0, 1),))
        )
        retrying = Client(cluster2, retry_policy=RetryPolicy())
        result = retrying.collect("k", 2, [0])
        assert result.success
        assert result.retries == 1
        assert result.backoff > 0
        assert result.failed_contacts == ()

    def test_budget_exhaustion_returns_degraded(self):
        cluster = _cluster_with_entries(size=1)
        cluster.network.install_fault_plan(
            FaultPlan(blackouts=(Blackout(0, 0, 1),))
        )
        client = Client(
            cluster,
            retry_policy=RetryPolicy(base_backoff=100.0, backoff_budget=10.0),
        )
        result = client.collect("k", 2, [0])
        assert not result.success
        assert result.degraded
        assert result.retries == 0
        assert result.backoff == 0.0

    def test_max_attempts_one_is_single_pass(self):
        cluster = _cluster_with_entries(size=1)
        cluster.network.install_fault_plan(
            FaultPlan(blackouts=(Blackout(0, 0, 1),))
        )
        client = Client(cluster, retry_policy=RetryPolicy(max_attempts=1))
        result = client.collect("k", 2, [0])
        assert not result.success
        assert result.retries == 0

    def test_failed_server_not_retried_forever(self):
        # A permanently failed server: retries run out and the result
        # is explicitly degraded, with the server in failed_contacts.
        cluster = _cluster_with_entries(size=2)
        cluster.fail(0)
        client = Client(cluster, retry_policy=RetryPolicy(max_attempts=3))
        result = client.collect("k", 3, [0, 1])
        assert not result.success
        assert result.degraded
        assert 0 in result.failed_contacts
        assert result.retries == 2

    def test_degraded_is_explicit_not_silent(self):
        cluster = _cluster_with_entries(size=2, per_server=1)
        client = Client(cluster, retry_policy=RetryPolicy())
        # Only 2 distinct entries exist; asking for 5 must be labelled.
        result = client.collect("k", 5, [0, 1])
        assert result.degraded
        assert not result.success
        # A full lookup (target 0) is never degraded.
        assert not client.collect("k", 0, [0, 1]).degraded
