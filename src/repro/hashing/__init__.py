"""Hash-function families used by the Hash-y strategy."""

from repro.hashing.families import HashFamily, HashFunction, fnv1a_64

__all__ = ["HashFamily", "HashFunction", "fnv1a_64"]
