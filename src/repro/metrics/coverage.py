"""Maximum coverage: distinct entries a client can ever retrieve (§4.3).

Coverage upper-bounds the largest supportable target answer size and
predicts resilience to deletes: a placement covering few distinct
entries (Figure 5's placement 1) collapses quickly.  The expected
coverage closed form for RandomServer-x, ``h·(1 − (1 − x/h)^n)``, is
in :mod:`repro.analysis.formulas`.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.core.entry import Entry
from repro.strategies.base import PlacementStrategy


def covered_entries(strategy: PlacementStrategy) -> Set[Entry]:
    """Distinct entries stored on at least one operational server."""
    return strategy.cluster.coverage_set(strategy.key)


def coverage_size(strategy: PlacementStrategy) -> int:
    """The maximum coverage, ``|covered_entries|``."""
    return len(covered_entries(strategy))


def uncovered_entries(
    strategy: PlacementStrategy, universe: Iterable[Entry]
) -> Set[Entry]:
    """Entries of ``universe`` stored on *no* operational server.

    These have retrieval probability zero, which is what couples
    coverage to the unfairness floor in Figure 9's first phase.
    """
    return set(universe) - covered_entries(strategy)
