"""Full replication: every entry on every server (paper §3.1, §5.1).

The traditional baseline.  Placement and every update broadcast to all
``n`` servers; each server keeps a complete copy, so a lookup needs
exactly one operational server and the strategy tolerates ``n - 1``
failures — at the price of ``h·n`` storage and a broadcast per update.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.entry import Entry
from repro.core.result import LookupResult
from repro.cluster.messages import (
    AddRequest,
    DeleteRequest,
    Message,
    PlaceRequest,
    RemoveMessage,
    StoreMessage,
    StoreSetMessage,
)
from repro.cluster.network import Network
from repro.cluster.server import Server
from repro.strategies.base import LookupProfile, PlacementStrategy, StrategyLogic


class _FullReplicationLogic(StrategyLogic):
    """Server behaviour for full replication.

    A client request at the initial server triggers a broadcast to all
    servers (including the initial one — its own copy is installed by
    the broadcast, exactly as the paper describes); the broadcast
    handlers perform the local mutation.
    """

    def handle_message(self, server: Server, message: Message, network: Network) -> Any:
        store = server.store(self.key)
        if isinstance(message, PlaceRequest):
            network.broadcast(self.key, StoreSetMessage(message.entries))
            return True
        if isinstance(message, AddRequest):
            network.broadcast(self.key, StoreMessage(message.entry))
            return True
        if isinstance(message, DeleteRequest):
            network.broadcast(self.key, RemoveMessage(message.entry))
            return True
        if isinstance(message, StoreSetMessage):
            for entry in message.entries:
                store.add(entry)
            return True
        if isinstance(message, StoreMessage):
            return store.add(message.entry)
        if isinstance(message, RemoveMessage):
            return store.discard(message.entry)
        raise TypeError(f"full replication cannot handle {type(message).__name__}")


class FullReplication(PlacementStrategy):
    """Store all ``h`` entries for the key on all ``n`` servers.

    >>> from repro.cluster import Cluster
    >>> from repro.core.entry import make_entries
    >>> strategy = FullReplication(Cluster(4, seed=7))
    >>> _ = strategy.place(make_entries(10))
    >>> strategy.storage_cost()
    40
    >>> strategy.partial_lookup(3).lookup_cost
    1
    """

    name = "full_replication"

    def _build_logic(self) -> StrategyLogic:
        return _FullReplicationLogic(self)

    def params(self) -> Dict[str, Any]:
        return {}

    def _do_place(self, entries: Tuple[Entry, ...]) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, PlaceRequest(entries))

    def _do_add(self, entry: Entry) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, AddRequest(entry))

    def _do_delete(self, entry: Entry) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, DeleteRequest(entry))

    def partial_lookup(self, target: int) -> LookupResult:
        # All servers are identical, so one operational server is both
        # necessary and sufficient; contacting more can never add
        # distinct entries.
        return self.client.lookup(self.key, target, max_servers=1)

    def lookup_profile(self) -> LookupProfile:
        return LookupProfile(order="random", max_servers=1)
