"""Parallel engine speedup: one paper-scale fig4 point, jobs=1 vs jobs=4.

Times a single Figure 4 data point at the paper's per-run lookup scale
through the serial and process-pool executors, records both wall
clocks (and the speedup) into the ``--bench-json`` artifact, and
checks that the rows are bit-identical.  The >= 2.5x speedup gate only
applies on machines with enough cores (CI's 4-core runners); on
smaller boxes the numbers are still recorded for the trajectory.

``scripts/check_bench_regression.py`` applies the same exemption: the
``_jobs4`` suffix on the recorded speedup metric tells the gate to
treat it as informational whenever either artifact was produced with
``cpu_count`` < 4, so a 1-CPU runner's sub-1x reading never fails a PR.
"""

import os
import time

from repro.experiments import fig4_lookup_cost
from repro.experiments.profiles import PROFILES

JOBS = 4


def test_bench_parallel_speedup_fig4_point(bench_json_record):
    config = fig4_lookup_cost.Fig4Config(
        targets=(35,),
        runs=8,
        lookups_per_run=PROFILES["paper"]["lookups_per_run"],
    )
    start = time.perf_counter()
    serial = fig4_lookup_cost.run(config, jobs=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = fig4_lookup_cost.run(config, jobs=JOBS)
    parallel_seconds = time.perf_counter() - start

    assert parallel.rows == serial.rows

    speedup = serial_seconds / parallel_seconds
    bench_json_record("fig4_paper_point_serial_seconds", round(serial_seconds, 3))
    bench_json_record(
        f"fig4_paper_point_jobs{JOBS}_seconds", round(parallel_seconds, 3)
    )
    bench_json_record(f"fig4_paper_point_speedup_jobs{JOBS}", round(speedup, 2))
    print(
        f"\nfig4 paper-scale point: serial {serial_seconds:.2f}s, "
        f"jobs={JOBS} {parallel_seconds:.2f}s, speedup {speedup:.2f}x"
    )
    if (os.cpu_count() or 1) >= JOBS:
        assert speedup >= 2.5
