"""Simulated server cluster substrate.

The paper's strategies run on ``n`` servers connected by a network that
supports point-to-point messages (cost 1) and broadcasts (cost ``n``),
with clients that pick random servers and retry past failures.  This
package simulates that substrate faithfully enough to reproduce every
measurement in the paper: message counts per the Section 6.4 cost
model, per-server entry stores, and failure injection for the fault
tolerance experiments.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.client import Client, RetryPolicy
from repro.cluster.failures import FailureInjector, FailurePattern
from repro.cluster.faults import (
    Blackout,
    CrashPoint,
    FaultInjector,
    FaultPlan,
    FaultStats,
)
from repro.cluster.messages import (
    AddRequest,
    DeleteRequest,
    LookupRequest,
    Message,
    MessageCategory,
    MigrateRequest,
    PlaceRequest,
    RemoveMessage,
    RemoveReplacement,
    RemoveWithHead,
    SetCounters,
    StoreMessage,
    StorePositioned,
    StoreSetMessage,
)
from repro.cluster.network import (
    DROPPED,
    UNDELIVERED,
    MessageStats,
    Network,
    is_undelivered,
)
from repro.cluster.server import Server, ServerLogic

__all__ = [
    "Cluster",
    "Client",
    "RetryPolicy",
    "FailureInjector",
    "FailurePattern",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "Blackout",
    "CrashPoint",
    "DROPPED",
    "UNDELIVERED",
    "is_undelivered",
    "Message",
    "MessageCategory",
    "PlaceRequest",
    "AddRequest",
    "DeleteRequest",
    "LookupRequest",
    "StoreMessage",
    "StorePositioned",
    "StoreSetMessage",
    "SetCounters",
    "RemoveMessage",
    "RemoveWithHead",
    "MigrateRequest",
    "RemoveReplacement",
    "Network",
    "MessageStats",
    "Server",
    "ServerLogic",
]
