"""Budget parameterization consistency across schemes.

The paper equalizes strategies by total storage budget (Figures 4, 6,
7, 9).  These tests check the ``from_budget`` constructors actually
land on (or under) the budget across a sweep, so cross-scheme
comparisons stay fair.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY

BUDGETS = (50, 100, 200, 400, 800)
H = 100
N = 10


class TestBudgetLanding:
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_fixed_within_budget(self, budget):
        strategy = FixedX.from_budget(Cluster(N, seed=1), budget)
        strategy.place(make_entries(H))
        assert strategy.storage_cost() <= max(budget, N)

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_random_server_within_budget(self, budget):
        strategy = RandomServerX.from_budget(Cluster(N, seed=2), budget)
        strategy.place(make_entries(H))
        assert strategy.storage_cost() <= max(budget, N)

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_round_robin_exactly_budget_when_truncated(self, budget):
        strategy = RoundRobinY.from_budget(
            Cluster(N, seed=3), budget, entry_count=H
        )
        strategy.place(make_entries(H))
        assert strategy.storage_cost() <= budget
        # The budget is spent fully whenever y*h would exceed it.
        if budget <= strategy.y * H:
            assert strategy.storage_cost() == budget

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_hash_within_budget(self, budget):
        strategy = HashY.from_budget(Cluster(N, seed=4), budget, entry_count=H)
        strategy.place(make_entries(H))
        assert strategy.storage_cost() <= budget

    @pytest.mark.parametrize("budget", (200, 400, 800))
    def test_matched_budgets_are_comparable(self, budget):
        """Deterministic schemes land exactly on the budget; Hash-y
        lands near its Table 1 expectation (collisions discount it
        below h·y — at y=8 by a full 30%, which is the paper's own
        formula, not a sizing bug)."""
        from repro.analysis.formulas import expected_storage

        cluster = Cluster(N, seed=5)
        entries = make_entries(H)
        costs = {}
        for label, strategy in (
            ("fixed", FixedX.from_budget(cluster, budget, key="f")),
            ("rs", RandomServerX.from_budget(cluster, budget, key="rs")),
            ("rr", RoundRobinY.from_budget(cluster, budget, H, key="rr")),
            ("hash", HashY.from_budget(cluster, budget, H, key="h")),
        ):
            strategy.place(entries)
            costs[label] = strategy.storage_cost()
        assert costs["fixed"] == budget
        assert costs["rs"] == budget
        assert costs["rr"] == budget
        hash_expected = expected_storage("hash", H, N, y=budget // H)
        assert costs["hash"] == pytest.approx(hash_expected, rel=0.1)
