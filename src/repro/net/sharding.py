"""The pure sharding core: ring placement and replica selection.

Everything here is arithmetic over names — no sockets, no clocks, no
randomness — so both sides of the deployment can depend on it: the
:class:`~repro.net.service.LookupService` uses it at boot to decide
which keys it hosts and with how much of each key's entry set, and
the :class:`~repro.net.router.ShardRouter` uses it per lookup to
order candidate shards.  Agreement between the two is the whole
routing contract, and it holds because both compute the same pure
functions from the same shard names.

:class:`ShardMap` is multi-probe consistent hashing (Appleton &
O'Reilly 2015): shards are hashed onto the 64-bit ring **once** — no
virtual-node tables, no extra routing storage — and a key is probed
at ``probes`` independent positions, landing on the shard closest to
any probe.  More probes flatten the load the way more virtual nodes
would, at the memory cost of none, and the probe ranking yields a
*deterministic replica sequence* for free: a key's home group is the
first ``replicas`` distinct shards in closest-probe order.

:func:`partial_replica` is the paper's premise applied across
shards: a backup shard keeps only a deterministic fraction of a
key's entries, because a partial copy still yields a useful partial
answer — failover results come back short and *labelled degraded*
by the ordinary :class:`~repro.core.result.LookupResult` machinery
rather than wrong or absent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.hashing.families import fnv1a_64

#: The hash ring is a 64-bit space.
RING = 1 << 64

_MASK = RING - 1


def ring_position(label: str) -> int:
    """A label's position on the ring.

    FNV-1a alone is unusable here: names differing in one character
    (``s0``/``s1``/``s2``) land within a few high-order bits of each
    other, collapsing the whole fleet onto one arc of the ring.  A
    splitmix64-style finalizer on top restores full avalanche while
    keeping the mapping a pure process-stable function of the label.
    """
    h = fnv1a_64(label) & _MASK
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & _MASK
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & _MASK
    h ^= h >> 31
    return h


class ShardMap:
    """Multi-probe consistent hashing over a fixed set of shard names.

    Parameters
    ----------
    shards:
        The shard names (order-insensitive; the ring is by hash).
    probes:
        Key probe count.  21 keeps peak/mean load within a few
        percent for realistic key counts (the 1 + ε bound improves
        with more probes) at a few extra hashes per lookup.
    """

    def __init__(self, shards: Sequence[str], probes: int = 21) -> None:
        names = sorted(set(shards))
        if not names:
            raise InvalidParameterError("ShardMap needs at least one shard")
        if probes < 1:
            raise InvalidParameterError(f"probes must be >= 1, got {probes}")
        self.probes = probes
        self._positions: Dict[str, int] = {
            name: ring_position(f"shard|{name}") for name in names
        }

    @property
    def shards(self) -> List[str]:
        return sorted(self._positions)

    def home(self, key: str, replicas: int) -> List[str]:
        """The key's home group: primary first, then backups.

        Shards are ranked by their closest clockwise distance to any
        of the key's probe positions; ties break by name so the
        mapping is total and deterministic.
        """
        if replicas < 1:
            raise InvalidParameterError(f"replicas must be >= 1, got {replicas}")
        probe_points = [
            ring_position(f"key|{key}|{i}") for i in range(self.probes)
        ]
        ranked = sorted(
            self._positions.items(),
            key=lambda item: (
                min((item[1] - point) % RING for point in probe_points),
                item[0],
            ),
        )
        return [name for name, _ in ranked[: min(replicas, len(ranked))]]

    def role(self, key: str, shard: str, replicas: int) -> Optional[int]:
        """0 for the key's primary, 1.. for backups, None if not hosted."""
        home = self.home(key, replicas)
        try:
            return home.index(shard)
        except ValueError:
            return None


def partial_replica(
    key: str, entries: Sequence[Entry], role: int, fraction: float
) -> List[Entry]:
    """The deterministic partial copy a backup shard places for ``key``.

    Backup ``role`` (1-based) keeps ``max(1, round(fraction * len))``
    entries, chosen by ranking entry ids under a keyed hash — every
    process derives the identical subset from the key and role alone,
    and distinct backup roles keep (mostly) distinct subsets, so two
    surviving backups cover more together than either alone.
    """
    if role < 1:
        raise InvalidParameterError(f"backup role must be >= 1, got {role}")
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(
            f"backup fraction must be in (0, 1], got {fraction}"
        )
    if not entries:
        return []
    keep = max(1, round(fraction * len(entries)))
    ranked = sorted(
        entries,
        key=lambda entry: (
            ring_position(f"backup|{key}|{role}|{entry.entry_id}"),
            entry.entry_id,
        ),
    )
    return ranked[:keep]


__all__ = ["RING", "ShardMap", "partial_replica", "ring_position"]
