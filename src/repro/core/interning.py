"""Dense entry interning: stable small-integer indices per key.

The bitset placement kernel represents each server's local store as an
integer bitmask over a *dense index space*: the first entry ever placed
for a key gets index 0, the next distinct entry index 1, and so on, in
placement order.  Union, membership, and coverage then become single
``int`` operations (``|``, bit tests, ``bit_count``) instead of Python
set algebra over :class:`~repro.core.entry.Entry` objects, and the
Monte-Carlo lookup loops can accumulate per-entry counts into a flat
array indexed by the same integers.

Indices are *stable for the lifetime of the interner*: deleting an
entry does not free its index, and re-adding the same ``entry_id``
reuses it.  This is what makes masks comparable across placements of
the same cluster and makes cached count arrays meaningful.  An interner
is shared by all servers of one cluster per key (see
:class:`~repro.cluster.cluster.Cluster`), so one entry has one index
everywhere.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.entry import Entry


class EntryInterner:
    """Assigns each distinct ``entry_id`` a dense, stable index.

    The mapping only ever grows; index ``i`` permanently names the
    ``i``-th distinct entry interned.  The canonical :class:`Entry`
    object kept for an index is the first one interned for that id
    (payloads do not participate in identity, so replicas collapse).
    """

    __slots__ = ("_index_by_id", "_entries")

    def __init__(self) -> None:
        self._index_by_id: Dict[str, int] = {}
        self._entries: List[Entry] = []

    def intern(self, entry: Entry) -> int:
        """Return the dense index for ``entry``, assigning one if new."""
        index = self._index_by_id.get(entry.entry_id)
        if index is None:
            index = len(self._entries)
            self._index_by_id[entry.entry_id] = index
            self._entries.append(entry)
        return index

    def index_of(self, entry_id: str) -> Optional[int]:
        """The index for ``entry_id``, or None if never interned."""
        return self._index_by_id.get(entry_id)

    def entry_at(self, index: int) -> Entry:
        """The canonical entry at ``index``."""
        return self._entries[index]

    def mask_of(self, entries: Iterable[Entry]) -> int:
        """Bitmask with the bit of each (already interned) entry set.

        Entries never interned are interned on the fly; the mask is a
        pure function of the entry ids.
        """
        mask = 0
        for entry in entries:
            mask |= 1 << self.intern(entry)
        return mask

    def entries_for_mask(self, mask: int) -> List[Entry]:
        """The canonical entries of every set bit, in index order."""
        out: List[Entry] = []
        while mask:
            low = mask & -mask
            out.append(self._entries[low.bit_length() - 1])
            mask ^= low
        return out

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EntryInterner({len(self._entries)} entries)"


def iter_mask_indices(mask: int):
    """Yield the set-bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
