"""The client-side lookup driver.

Every strategy's ``partial_lookup`` follows the same skeleton — contact
servers in some order, merge the distinct entries from each reply, stop
once the target is met — and differs only in the *order* of servers
contacted (uniformly random for most strategies, the deterministic
``s, s+y, s+2y, ...`` walk for Round-Robin).  :class:`Client`
implements that skeleton once, including the paper's failure handling:
a request to a failed server goes unanswered and the client falls back
to trying other (random) servers.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Set

from repro.core.entry import Entry
from repro.core.exceptions import NoOperationalServerError
from repro.core.result import LookupResult
from repro.cluster.cluster import Cluster
from repro.cluster.messages import LookupRequest
from repro.cluster.network import UNDELIVERED


class Client:
    """A lookup client bound to a cluster.

    Parameters
    ----------
    cluster:
        The cluster to issue lookups against.
    rng:
        Private randomness for server selection; defaults to the
        cluster RNG so a seeded cluster stays fully deterministic.
    """

    def __init__(self, cluster: Cluster, rng: Optional[random.Random] = None) -> None:
        self._cluster = cluster
        self._rng = rng if rng is not None else cluster.rng

    # -- server orderings -----------------------------------------------------

    def random_order(self) -> List[int]:
        """All server ids in a fresh uniformly random order."""
        order = list(range(self._cluster.size))
        self._rng.shuffle(order)
        return order

    def stride_order(self, start: int, stride: int) -> List[int]:
        """The Round-Robin-y contact sequence ``start, start+stride, ...``.

        Walks all ``n`` servers modulo ``n``; when ``gcd(stride, n) > 1``
        the walk revisits ids, so remaining ids are appended in random
        order to preserve the "contact every server at most once"
        client behaviour.
        """
        n = self._cluster.size
        order: List[int] = []
        seen: Set[int] = set()
        current = start % n
        for _ in range(n):
            if current in seen:
                break
            order.append(current)
            seen.add(current)
            current = (current + stride) % n
        leftovers = [i for i in range(n) if i not in seen]
        self._rng.shuffle(leftovers)
        order.extend(leftovers)
        return order

    # -- the lookup skeleton -----------------------------------------------------

    def collect(
        self,
        key: str,
        target: int,
        order: Iterable[int],
        max_servers: Optional[int] = None,
        per_server_target: Optional[int] = None,
    ) -> LookupResult:
        """Contact servers in ``order`` until ``target`` entries merge.

        Parameters
        ----------
        key:
            The key being looked up.
        target:
            Required number of distinct entries; ``0`` means "collect
            everything" (contact every server), used for traditional
            full lookups and coverage probes.
        order:
            Server ids to try, in order.  Failed servers are skipped
            (recorded in ``failed_contacts``) without counting toward
            the lookup cost, per Section 4.2's no-failure cost model.
        max_servers:
            Optional cap on operational servers contacted; used by
            strategies whose placement makes extra contacts useless
            (Fixed-x and full replication stop after one).
        per_server_target:
            How many entries to request from each server.  Defaults to
            ``target``, the paper's per-server answer size.
        """
        ask = target if per_server_target is None else per_server_target
        merged: List[Entry] = []
        merged_ids: Set[str] = set()
        contacted: List[int] = []
        failed: List[int] = []
        for server_id in order:
            if target > 0 and len(merged) >= target:
                break
            if max_servers is not None and len(contacted) >= max_servers:
                break
            reply = self._cluster.network.send(server_id, key, LookupRequest(ask))
            if reply is UNDELIVERED:
                failed.append(server_id)
                continue
            contacted.append(server_id)
            fresh = [e for e in reply if e.entry_id not in merged_ids]
            # The client wants exactly ``target`` entries; when the
            # final server's reply overshoots, keep a uniformly random
            # subset of its fresh contribution so no entry of that
            # server is privileged (this is what makes Round-Robin's
            # answers exactly fair, §4.5).
            if target > 0 and len(merged) + len(fresh) > target:
                fresh = self._rng.sample(fresh, target - len(merged))
            merged.extend(fresh)
            merged_ids.update(e.entry_id for e in fresh)
        return LookupResult(
            entries=tuple(merged),
            target=target,
            servers_contacted=tuple(contacted),
            failed_contacts=tuple(failed),
            messages=len(contacted),
        )

    def lookup_random(
        self,
        key: str,
        target: int,
        max_servers: Optional[int] = None,
    ) -> LookupResult:
        """Random-order lookup (full replication, Fixed, RandomServer, Hash)."""
        return self.collect(key, target, self.random_order(), max_servers=max_servers)

    def lookup_stride(self, key: str, target: int, stride: int) -> LookupResult:
        """Round-Robin-y lookup: random start, then stride-``y`` walk.

        If any server in the deterministic sequence has failed, the
        paper's client abandons the sequence and falls back to random
        order over the untried servers; :meth:`collect` realizes that
        because failed servers are skipped and the stride order ends
        with a random permutation of any unvisited ids.
        """
        start = self._cluster.random_server_id()
        return self.collect(key, target, self.stride_order(start, stride))
