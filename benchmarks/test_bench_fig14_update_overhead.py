"""Benchmark: regenerate Figure 14 (update overhead, Fixed-x vs Hash-y).

Paper shape: Fixed-50's total messages fall smoothly with h (broadcast
probability x/h); Hash-y steps down at its y break points (h = 133,
200, 400); the curves cross multiple times, with Hash cheaper at the
ratio extremes and Fixed cheaper in the middle plateau.
"""

from _bench_utils import render_and_print

from repro.analysis.crossover import find_crossovers
from repro.experiments.fig14_update_overhead import Fig14Config, run


def test_bench_fig14_update_overhead(benchmark):
    config = Fig14Config(runs=5, updates_per_run=5000)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    # Fixed monotone decreasing; Hash steps with y.
    fixed_curve = result.column("fixed_measured")
    assert fixed_curve == sorted(fixed_curve, reverse=True)
    assert result.column("hash_y") == [4, 4, 3, 2, 2, 2, 2, 1]

    # Measured totals track the closed-form expectations.
    for row in result.rows:
        assert abs(row["fixed_measured"] - row["fixed_expected"]) < (
            0.2 * row["fixed_expected"]
        )
        assert row["hash_measured"] <= row["hash_expected"] * 1.05

    # The crossover structure: hash cheaper at both ends, fixed in the
    # middle — at least two flips, matching the analytical scan.
    winners = [
        "fixed" if row["fixed_measured"] < row["hash_measured"] else "hash"
        for row in result.rows
    ]
    assert winners[0] == "hash" and winners[-1] == "hash"
    assert "fixed" in winners
    analytic = find_crossovers(
        config.x, config.target, config.server_count, list(config.entry_counts)
    )
    assert len(analytic) >= 2
