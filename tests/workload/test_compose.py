"""Unit tests for scenario composition."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.exceptions import InvalidParameterError
from repro.simulation.events import (
    AddEvent,
    DeleteEvent,
    FailureEvent,
    LookupEvent,
    RecoveryEvent,
)
from repro.simulation.replay import TraceReplayer
from repro.strategies.round_robin import RoundRobinY
from repro.workload.compose import ScenarioBuilder, merge_event_streams


class TestMerge:
    def test_merge_sorts_by_time(self):
        a = [LookupEvent(3.0, target=1), LookupEvent(5.0, target=1)]
        b = [FailureEvent(1.0, server_id=0), RecoveryEvent(4.0, server_id=0)]
        merged = merge_event_streams(a, b)
        assert [e.time for e in merged] == [1.0, 3.0, 4.0, 5.0]

    def test_merge_keeps_stream_order_on_ties(self):
        a = [LookupEvent(2.0, target=1)]
        b = [FailureEvent(2.0, server_id=0)]
        merged = merge_event_streams(a, b)
        assert isinstance(merged[0], LookupEvent)
        assert isinstance(merged[1], FailureEvent)


class TestScenarioBuilder:
    def test_full_composition(self):
        scenario = (
            ScenarioBuilder(seed=5)
            .with_steady_state_churn(entry_count=40, updates=200)
            .with_lookups(count=50, target=5)
            .with_failures(
                availability=0.9, mean_time_to_repair=40.0, server_count=10
            )
            .build()
        )
        assert len(scenario.initial_entries) == 40
        kinds = {type(e) for e in scenario.events}
        assert {AddEvent, DeleteEvent, LookupEvent} <= kinds
        assert FailureEvent in kinds
        times = [e.time for e in scenario.events]
        assert times == sorted(times)
        assert scenario.horizon == times[-1]

    def test_lookups_without_horizon_rejected(self):
        with pytest.raises(InvalidParameterError, match="horizon"):
            ScenarioBuilder(seed=1).with_lookups(count=5, target=3)

    def test_lookups_with_explicit_window(self):
        scenario = (
            ScenarioBuilder(seed=2)
            .with_lookups(count=10, target=2, start=0.0, end=100.0)
            .build()
        )
        assert len(scenario.events) == 10
        assert all(0 <= e.time <= 100 for e in scenario.events)

    def test_failures_need_valid_availability(self):
        builder = ScenarioBuilder(seed=3).with_steady_state_churn(10, 50)
        with pytest.raises(InvalidParameterError):
            builder.with_failures(1.0, 10.0, 5)

    def test_same_seed_same_scenario(self):
        def build():
            return (
                ScenarioBuilder(seed=9)
                .with_steady_state_churn(entry_count=20, updates=100)
                .with_lookups(count=20, target=3)
                .build()
            )

        a, b = build(), build()
        assert a.initial_entries == b.initial_entries
        assert [(type(x).__name__, x.time) for x in a.events] == [
            (type(x).__name__, x.time) for x in b.events
        ]

    def test_adding_lookups_does_not_perturb_churn(self):
        plain = (
            ScenarioBuilder(seed=11)
            .with_steady_state_churn(entry_count=20, updates=100)
            .build()
        )
        with_lookups = (
            ScenarioBuilder(seed=11)
            .with_steady_state_churn(entry_count=20, updates=100)
            .with_lookups(count=30, target=3)
            .build()
        )
        churn_a = [e for e in plain.events if not isinstance(e, LookupEvent)]
        churn_b = [
            e for e in with_lookups.events if not isinstance(e, LookupEvent)
        ]
        assert [(type(x).__name__, x.time) for x in churn_a] == [
            (type(x).__name__, x.time) for x in churn_b
        ]

    def test_scenario_replays_cleanly(self):
        scenario = (
            ScenarioBuilder(seed=13)
            .with_steady_state_churn(entry_count=30, updates=150)
            .with_lookups(count=40, target=3)
            .with_failures(
                availability=0.8, mean_time_to_repair=30.0, server_count=10
            )
            .build()
        )
        strategy = RoundRobinY(Cluster(10, seed=13), y=2, counter_replicas=3)
        strategy.place(scenario.initial_entries)
        stats = TraceReplayer(strategy).replay(scenario.events)
        assert stats.lookups == 40
        assert stats.adds + stats.deletes == 150
