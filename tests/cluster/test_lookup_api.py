"""The unified ``Client.lookup`` API: options, tracing, metrics."""

import pytest

from repro.cluster.client import (
    Client,
    LookupOptions,
    RetryPolicy,
    Stride,
)
from repro.cluster.cluster import Cluster
from repro.cluster.messages import LookupRequest
from repro.cluster.server import ServerLogic
from repro.core.entry import make_entries
from repro.core.exceptions import InvalidParameterError
from repro.obs import MetricsRegistry, Tracer


class _StockLogic(ServerLogic):
    """Every server answers from its own disjoint five-entry stock."""

    def handle(self, server, message, network):
        assert isinstance(message, LookupRequest)
        stock = make_entries(5, start=1 + 5 * server.server_id)
        if message.target <= 0 or message.target >= len(stock):
            return list(stock)
        return stock[: message.target]


def make_cluster(size=10, seed=42):
    cluster = Cluster(size, seed=seed)
    logic = _StockLogic()
    for server in cluster.servers:
        server.install_logic("k", logic)
    return cluster


class TestUnifiedLookup:
    def test_default_order_is_random(self):
        result = Client(make_cluster()).lookup("k", 8)
        assert len(result) == 8
        assert result.success

    def test_stride_order_draws_start_from_cluster_rng(self):
        # The Stride path must consume exactly one random_server_id
        # draw, like the legacy method — a seeded replay depends on it.
        probe = make_cluster()
        expected_start = probe.rng.randrange(probe.size)
        cluster = make_cluster()
        result = Client(cluster).lookup("k", 50, order=Stride(1))
        contacted = list(result.servers_contacted)
        assert contacted[0] == expected_start
        n = cluster.size
        assert contacted == [(expected_start + i) % n for i in range(n)]

    def test_prebuilt_options_object(self):
        options = LookupOptions(order=Stride(2), per_server_target=2)
        result = Client(make_cluster()).lookup("k", 6, options=options)
        assert len(result) == 6
        # 2 fresh entries per server -> 3 servers contacted.
        assert result.lookup_cost == 3

    def test_options_conflicts_with_individual_keywords(self):
        client = Client(make_cluster())
        with pytest.raises(InvalidParameterError):
            client.lookup(
                "k", 5, max_servers=1, options=LookupOptions()
            )

    def test_invalid_order_rejected(self):
        with pytest.raises(InvalidParameterError):
            LookupOptions(order="stride")
        with pytest.raises(InvalidParameterError):
            Client(make_cluster()).lookup("k", 5, order="zigzag")

    def test_stride_validation(self):
        with pytest.raises(InvalidParameterError):
            Stride(0)
        with pytest.raises(InvalidParameterError):
            Stride(-2)
        assert str(Stride(4)) == "stride(4)"

    def test_per_call_retry_override(self):
        cluster = make_cluster(size=4)
        for server_id in (1, 2, 3):
            cluster.fail(server_id)
        client = Client(
            cluster, retry_policy=RetryPolicy(max_attempts=3)
        )
        # The override forces the paper's single-pass behaviour.
        single = client.lookup(
            "k", 20, retry=RetryPolicy(max_attempts=1)
        )
        assert single.retries == 0
        assert single.degraded

    def test_removed_shims_raise_with_hint(self):
        client = Client(make_cluster())
        with pytest.raises(AttributeError, match=r"Client\.lookup\(.*max_servers"):
            client.lookup_random("k", 5)
        with pytest.raises(AttributeError, match=r"order=Stride\(y\)"):
            client.lookup_stride("k", 5, 2)
        # Unknown attributes still raise the ordinary message.
        with pytest.raises(AttributeError, match="no attribute"):
            client.lookup_backwards


class TestLookupObservability:
    def test_span_per_lookup_with_contact_events(self):
        tracer = Tracer(run_id="api")
        client = Client(make_cluster(), tracer=tracer)
        result = client.lookup("k", 8)
        (span,) = tracer.spans("lookup")
        assert span.fields["order"] == "random"
        assert span.fields["entries"] == 8
        assert span.fields["messages"] == result.messages
        contacts = tracer.events("contact")
        assert len(contacts) == result.messages
        assert all(c.span_id == span.span_id for c in contacts)

    def test_failed_contacts_traced_with_outcome(self):
        tracer = Tracer(run_id="api")
        cluster = make_cluster(size=3)
        cluster.fail(1)
        client = Client(cluster, tracer=tracer)
        client.lookup("k", 15)
        outcomes = {
            c.fields["server"]: c.fields["outcome"]
            for c in tracer.events("contact")
        }
        assert outcomes[1] == "failed"
        assert sum(1 for o in outcomes.values() if o == "delivered") == 2

    def test_per_call_tracer_overrides_client_tracer(self):
        default = Tracer(run_id="default")
        override = Tracer(run_id="override")
        client = Client(make_cluster(), tracer=default)
        client.lookup("k", 5, tracer=override)
        assert len(default) == 0
        assert len(override.spans("lookup")) == 1

    def test_explicit_collect_orders_trace_as_explicit(self):
        tracer = Tracer(run_id="api")
        client = Client(make_cluster(), tracer=tracer)
        client.collect("k", 5, order=[0, 1, 2])
        (span,) = tracer.spans("lookup")
        assert span.fields["order"] == "explicit"

    def test_metrics_publishing(self):
        metrics = MetricsRegistry()
        client = Client(make_cluster(), metrics=metrics)
        for _ in range(4):
            client.lookup("k", 8)
        snapshot = metrics.snapshot()
        assert snapshot["client.lookups"] == 4
        assert snapshot["client.lookup_cost.count"] == 4
        assert snapshot["client.lookup_cost.mean"] == 2.0

    def test_degraded_lookup_counts(self):
        metrics = MetricsRegistry()
        cluster = make_cluster(size=2)
        client = Client(cluster, metrics=metrics)
        client.lookup("k", 50)  # only 10 entries exist
        assert metrics.snapshot()["client.degraded"] == 1

    def test_no_tracer_no_records_no_rng_drift(self):
        # Identically seeded clusters, one traced, one not: results equal.
        traced = Client(make_cluster(), tracer=Tracer(run_id="x"))
        plain = Client(make_cluster())
        assert traced.lookup("k", 8) == plain.lookup("k", 8)


class TestRetryPolicyValidation:
    def test_negative_jitter_rejected(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter=-0.1)

    def test_jitter_above_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter=1.5)

    def test_jitter_bounds_accepted(self):
        assert RetryPolicy(jitter=0.0).jitter == 0.0
        assert RetryPolicy(jitter=1.0).jitter == 1.0
