"""MetricsRegistry: instruments, publishing semantics, snapshots."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.obs import MetricsRegistry


def test_counter_accumulates_and_rejects_negative_inc():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(2.0)
    assert counter.value == 3.0
    with pytest.raises(InvalidParameterError):
        counter.inc(-1.0)


def test_counter_set_to_is_idempotent_but_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("ledger")
    counter.set_to(10)
    counter.set_to(10)  # republishing the same total is fine
    counter.set_to(12)
    assert counter.value == 12
    with pytest.raises(InvalidParameterError):
        counter.set_to(5)  # a ledger running backwards is a bug


def test_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    assert len(registry) == 3


def test_cross_kind_name_collision_is_an_error():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(InvalidParameterError):
        registry.gauge("x")
    with pytest.raises(InvalidParameterError):
        registry.histogram("x")


def test_histogram_summary_statistics():
    registry = MetricsRegistry()
    histogram = registry.histogram("cost")
    for value in (1.0, 3.0, 2.0):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.total == 6.0
    assert histogram.mean == 2.0
    assert (histogram.min, histogram.max) == (1.0, 3.0)


def test_snapshot_flattens_and_sorts():
    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.gauge("a").set(1.5)
    registry.histogram("h").observe(4.0)
    snapshot = registry.snapshot()
    assert list(snapshot) == sorted(snapshot)
    assert snapshot["a"] == 1.5
    assert snapshot["b"] == 2.0
    assert snapshot["h.count"] == 1.0
    assert snapshot["h.mean"] == 4.0
    assert snapshot["h.min"] == 4.0 and snapshot["h.max"] == 4.0


def test_empty_histogram_omits_min_max_from_snapshot():
    registry = MetricsRegistry()
    registry.histogram("empty")
    snapshot = registry.snapshot()
    assert snapshot["empty.count"] == 0.0
    assert "empty.min" not in snapshot and "empty.max" not in snapshot


def test_message_stats_publish_round_trip():
    from repro.cluster.cluster import Cluster
    from repro.cluster.messages import LookupRequest
    from repro.core.entry import make_entries
    from repro.strategies.registry import create_strategy

    cluster = Cluster(5, seed=0)
    strategy = create_strategy("random_server", cluster, x=5)
    strategy.place(make_entries(10))
    cluster.network.send(0, strategy.key, LookupRequest(3))
    registry = MetricsRegistry()
    cluster.network.stats.publish(registry)
    snapshot = registry.snapshot()
    assert snapshot["net.messages.total"] == cluster.network.stats.total
    assert snapshot["net.messages.lookup"] == 1.0
    assert (
        snapshot["net.messages.update"]
        == cluster.network.stats.update_messages
    )
    # Republishing the same ledger is a no-op, not an error.
    cluster.network.stats.publish(registry)
    assert registry.snapshot() == snapshot


def test_fault_stats_publish_uses_ledger_keys():
    from repro.cluster.faults import FaultStats

    stats = FaultStats(attempted=5, delivered=3, dropped=2)
    registry = MetricsRegistry()
    stats.publish(registry)
    snapshot = registry.snapshot()
    assert snapshot["faults.attempted"] == 5
    assert snapshot["faults.dropped"] == 2
    assert snapshot["faults.crashes"] == 0
