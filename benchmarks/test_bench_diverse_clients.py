"""Benchmark: the §4.3 diverse-clients mix at a matched budget.

Every scheme serves the small-target majority in one contact; the
want-everything crawlers separate the schemes exactly as §4.3's
coverage analysis predicts: Round-Robin serves them in exactly n/y
contacts, Hash needs nearly all servers, RandomServer's ~89-entry
expected coverage fails them, and Fixed-x fails them instantly.
"""

from _bench_utils import render_and_print

from repro.experiments.diverse_clients import DiverseClientsConfig, run


def test_bench_diverse_clients(benchmark):
    config = DiverseClientsConfig(runs=10)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    for row in result.rows:
        # The small-target majority is one-contact, zero-failure for
        # every scheme — the partial-lookup sweet spot.
        assert row["small_cost"] <= 1.2
        assert row["small_fail"] == 0.0

    assert result.row_for(scheme="fixed")["crawler_fail"] == 1.0
    assert result.row_for(scheme="random_server")["crawler_fail"] > 0.9
    assert result.row_for(scheme="round_robin")["crawler_fail"] == 0.0
    assert result.row_for(scheme="hash")["crawler_fail"] == 0.0
    # Round-Robin's stride serves a full crawl in exactly n/y contacts.
    assert result.row_for(scheme="round_robin")["crawler_cost"] == 5.0
    assert result.row_for(scheme="hash")["crawler_cost"] > 5.0
