"""Unit tests for the PlacementStrategy base machinery."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.core.exceptions import InvalidParameterError
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.round_robin import RoundRobinY


class TestPlaceSemantics:
    def test_place_resets_previous_placement(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(10))
        strategy.place(make_entries(3, prefix="w"))
        assert strategy.lookup_all() == set(make_entries(3, prefix="w"))
        assert strategy.storage_cost() == 30

    def test_place_resets_strategy_state(self, cluster):
        strategy = RoundRobinY(cluster, y=2)
        strategy.place(make_entries(10))
        strategy.delete(Entry("v5"))
        assert strategy.head == 1
        strategy.place(make_entries(4))
        assert strategy.head == 0
        assert strategy.tail == 4

    def test_place_rejects_duplicate_entries(self, cluster):
        strategy = FullReplication(cluster)
        with pytest.raises(ValueError, match="duplicate"):
            strategy.place([Entry("a"), Entry("a")])

    def test_place_coerces_strings(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(["x", "y"])
        assert strategy.lookup_all() == {Entry("x"), Entry("y")}


class TestMeasuredAccounting:
    def test_update_results_isolate_their_own_messages(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(5))
        first = strategy.add(Entry("a"))
        second = strategy.add(Entry("b"))
        # Each result counts only its own operation's messages.
        assert first.messages == second.messages == 11

    def test_lookup_messages_not_counted_as_update(self, cluster):
        strategy = FullReplication(cluster)
        strategy.place(make_entries(5))
        before = cluster.network.stats.update_messages
        strategy.partial_lookup(2)
        assert cluster.network.stats.update_messages == before

    def test_broadcast_flag(self, cluster):
        strategy = FixedX(cluster, x=3)
        strategy.place(make_entries(10))
        ignored = strategy.add(Entry("zz"))  # store full: no broadcast
        assert not ignored.broadcast
        acted = strategy.delete(Entry("v1"))
        assert acted.broadcast

    def test_operation_names(self, cluster):
        strategy = FullReplication(cluster)
        assert strategy.place(make_entries(2)).operation == "place"
        assert strategy.add(Entry("q")).operation == "add"
        assert strategy.delete(Entry("q")).operation == "delete"


class TestCommonHelpers:
    def test_n_property(self, cluster):
        assert FullReplication(cluster).n == 10

    def test_repr_includes_params(self, cluster):
        text = repr(FixedX(cluster, x=7))
        assert "FixedX" in text and "x=7" in text

    def test_require_positive(self, cluster):
        with pytest.raises(InvalidParameterError):
            FixedX(cluster, x=-3)

    def test_keys_isolated_on_shared_cluster(self, cluster):
        a = FixedX(cluster, x=5, key="a")
        b = FullReplication(cluster, key="b")
        a.place(make_entries(20))
        b.place(make_entries(4, prefix="w"))
        assert a.coverage() == 5
        assert b.coverage() == 4
        assert a.lookup_all().isdisjoint(b.lookup_all())
