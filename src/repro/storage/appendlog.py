"""Append-log storage backend: journaled mutations + snapshot-and-compact.

One :class:`AppendLogJournal` serves a whole process (all keys, all
hosted servers).  Every store mutation is appended as one JSON line to
the live log file *before* the caller observes the mutation's effects
downstream (the writer fans out deltas only after the journal write
returns).  On cold start the journal replays snapshot + surviving log
files into a :class:`RecoveredImage` which callers apply back onto a
fresh cluster — rebuilding ordered entry lists, dense interner index
assignments, and coverage bitmasks bit-identically to a never-crashed
process.

Durability model
----------------
Each record is ``flush()``-ed to the OS page cache, which survives the
*process* dying (SIGKILL) — the crash mode the chaos harness and smoke
tests exercise.  Surviving power loss additionally needs ``fsync=True``
(one ``os.fsync`` per record), which the service deliberately does not
default to; the paper's replication schemes already tolerate losing a
whole server.

Compaction
----------
Logs rotate by serial: the live log is ``journal.<serial>.log`` and a
snapshot stamped with serial ``t`` folds in every file with serial
``< t``.  ``compact()`` (1) opens the next serial's empty log, (2)
atomically replaces ``snapshot.json`` via a temp file + ``os.replace``,
(3) unlinks the folded logs.  A crash between any two steps is safe:
replay applies the snapshot, then every log file with serial ``>=`` the
snapshot's, in order — stale lower-serial files are ignored and swept
on the next compaction.

Replay determinism
------------------
Randomized mutations journal their *outcome*, not their inputs:
``pop_random`` appends the popped entry's id as a plain ``drop``
record, so replay never consumes RNG.  The cluster RNG's state is
journaled separately (``rng`` records, deduped) so a recovered process
resumes the exact random stream of the crashed one.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import random
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Union

from repro.core.entry import Entry
from repro.core.exceptions import ReproError
from repro.core.storage import MemoryBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster

PathLike = Union[str, pathlib.Path]

SNAPSHOT_SCHEMA = 1

#: Strategy scratch-state keys that are transient between operations
#: and must not be persisted (mirrors ``repro.cluster.snapshots``).
_TRANSIENT_STATE_KEYS = ("migrations",)

_LOG_NAME_RE = re.compile(r"^journal\.(\d{6})\.log$")


class RecoveryError(ReproError):
    """The journal's contents contradict themselves during replay.

    A *torn tail* (a final line cut short by the crash) is expected and
    silently dropped; an interner index recorded for an ``add`` that
    disagrees with replay order is not — it means the journal and the
    recovery procedure no longer describe the same history.
    """


def _rng_to_jsonable(state: Any) -> list:
    """``random.Random.getstate()`` → JSON-safe nested lists."""
    return [state[0], list(state[1]), state[2]]


def _rng_from_jsonable(state: Any) -> tuple:
    """Inverse of :func:`_rng_to_jsonable`."""
    return (state[0], tuple(state[1]), state[2])


def _persistable_state(state: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in state.items() if k not in _TRANSIENT_STATE_KEYS}


@dataclass
class RecoveredImage:
    """Everything a crashed process needs to become its former self.

    ``interners`` lists ``[entry_id, payload]`` pairs in *dense index
    order* — replaying them first guarantees every store rebuild
    re-derives identical bitmask bit positions.  ``stores`` lists each
    server's entries in insertion order, which is what makes sampling
    with a restored RNG byte-identical.
    """

    interners: Dict[str, List[List[Any]]] = field(default_factory=dict)
    stores: Dict[str, Dict[int, List[List[Any]]]] = field(default_factory=dict)
    states: Dict[str, Dict[int, Dict[str, Any]]] = field(default_factory=dict)
    rng_state: Optional[list] = None
    epochs: Dict[str, int] = field(default_factory=dict)
    params: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    # Per-key id → index maps, derived; not part of the snapshot.
    _index_by_id: Dict[str, Dict[str, int]] = field(default_factory=dict, repr=False)

    def is_empty(self) -> bool:
        return not self.interners and not self.stores and self.rng_state is None

    # -- record application -------------------------------------------------

    def _intern(self, key: str, entry_id: str, payload: Any) -> int:
        by_id = self._index_by_id.setdefault(key, {})
        index = by_id.get(entry_id)
        if index is None:
            order = self.interners.setdefault(key, [])
            index = len(order)
            by_id[entry_id] = index
            order.append([entry_id, payload])
        return index

    def _store(self, key: str, server_id: int) -> List[List[Any]]:
        return self.stores.setdefault(key, {}).setdefault(server_id, [])

    def apply(self, record: Dict[str, Any]) -> None:
        """Fold one journal record into the image."""
        op = record["op"]
        if op == "add":
            index = self._intern(record["k"], record["e"][0], record["e"][1])
            if "i" in record and record["i"] != index:
                raise RecoveryError(
                    f"journal add for {record['e'][0]!r} recorded dense index "
                    f"{record['i']} but replay assigned {index}"
                )
            store = self._store(record["k"], record["s"])
            if all(pair[0] != record["e"][0] for pair in store):
                store.append(list(record["e"]))
        elif op == "drop":
            store = self._store(record["k"], record["s"])
            for position, pair in enumerate(store):
                if pair[0] == record["id"]:
                    store.pop(position)
                    break
        elif op == "swap":
            index = self._intern(record["k"], record["e"][0], record["e"][1])
            if "i" in record and record["i"] != index:
                raise RecoveryError(
                    f"journal swap for {record['e'][0]!r} recorded dense index "
                    f"{record['i']} but replay assigned {index}"
                )
            store = self._store(record["k"], record["s"])
            for position, pair in enumerate(store):
                if pair[0] == record["old"]:
                    store[position] = list(record["e"])
                    break
        elif op == "reset":
            for entry_id, payload in record["entries"]:
                self._intern(record["k"], entry_id, payload)
            self.stores.setdefault(record["k"], {})[record["s"]] = [
                list(pair) for pair in record["entries"]
            ]
        elif op == "clear":
            self.stores.setdefault(record["k"], {})[record["s"]] = []
        elif op == "state":
            self.states.setdefault(record["k"], {})[record["s"]] = record["state"]
        elif op == "rng":
            self.rng_state = record["state"]
        elif op == "epoch":
            key = record["k"]
            self.epochs[key] = max(self.epochs.get(key, 0), record["n"])
        elif op == "params":
            self.params.update(record["schemes"])
        else:
            raise RecoveryError(f"unknown journal record op {op!r}")

    # -- snapshot round-trip ------------------------------------------------

    def to_snapshot(self) -> Dict[str, Any]:
        return {
            "interners": self.interners,
            "stores": {
                key: {str(sid): pairs for sid, pairs in by_server.items()}
                for key, by_server in self.stores.items()
            },
            "states": {
                key: {str(sid): state for sid, state in by_server.items()}
                for key, by_server in self.states.items()
            },
            "rng": self.rng_state,
            "epochs": self.epochs,
            "params": self.params,
        }

    @classmethod
    def from_snapshot(cls, image: Dict[str, Any]) -> "RecoveredImage":
        out = cls(
            interners={k: [list(p) for p in v] for k, v in image["interners"].items()},
            stores={
                key: {
                    int(sid): [list(p) for p in pairs]
                    for sid, pairs in by_server.items()
                }
                for key, by_server in image["stores"].items()
            },
            states={
                key: {int(sid): dict(state) for sid, state in by_server.items()}
                for key, by_server in image["states"].items()
            },
            rng_state=image.get("rng"),
            epochs=dict(image.get("epochs", {})),
            params={k: dict(v) for k, v in image.get("params", {}).items()},
        )
        for key, order in out.interners.items():
            out._index_by_id[key] = {pair[0]: i for i, pair in enumerate(order)}
        return out


class AppendLogJournal:
    """JSON-lines mutation journal with serial-rotated compaction.

    Parameters
    ----------
    data_dir:
        Directory holding ``journal.<serial>.log`` files and
        ``snapshot.json``.  Created on first write.
    read_only:
        A read-only journal never writes (``append`` is a no-op); used
        by reader workers that recover from the writer's journal.
    fsync:
        ``os.fsync`` after every record (power-loss durability); off by
        default — ``flush()`` alone survives SIGKILL.
    compact_every:
        Auto-compact after this many records since the last compaction
        (see :meth:`maybe_compact`); ``0`` disables auto-compaction.
    """

    def __init__(
        self,
        data_dir: PathLike,
        read_only: bool = False,
        fsync: bool = False,
        compact_every: int = 0,
    ) -> None:
        self.data_dir = pathlib.Path(data_dir)
        self.read_only = read_only
        self.fsync = fsync
        self.compact_every = compact_every
        #: While True, ``append`` is suppressed — set during replay so
        #: rebuilding stores does not re-journal its own history.
        self.replaying = False
        self.log_records = 0
        self.compactions = 0
        self.last_compaction_epoch = 0
        self._serial = 1
        self._fh: Optional[Any] = None
        self._records_since_compact = 0
        self._last_blob: Dict[Any, str] = {}
        if not read_only:
            self.data_dir.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    @property
    def snapshot_path(self) -> pathlib.Path:
        return self.data_dir / "snapshot.json"

    def _log_path(self, serial: int) -> pathlib.Path:
        return self.data_dir / f"journal.{serial:06d}.log"

    def _log_serials(self) -> List[int]:
        if not self.data_dir.is_dir():
            return []
        serials = []
        for name in os.listdir(self.data_dir):
            match = _LOG_NAME_RE.match(name)
            if match:
                serials.append(int(match.group(1)))
        return sorted(serials)

    def has_data(self) -> bool:
        """True if a previous process left anything to recover."""
        if self.snapshot_path.exists():
            return True
        return any(
            self._log_path(serial).stat().st_size > 0
            for serial in self._log_serials()
        )

    @property
    def log_bytes(self) -> int:
        """Total size of the live (un-compacted) log files."""
        total = 0
        for serial in self._log_serials():
            if serial >= self._serial:
                with contextlib.suppress(OSError):
                    total += self._log_path(serial).stat().st_size
        return total

    # -- writing -------------------------------------------------------------

    @contextlib.contextmanager
    def suspended(self):
        """Temporarily suppress journaling (used while applying replay)."""
        previous = self.replaying
        self.replaying = True
        try:
            yield
        finally:
            self.replaying = previous

    def append(self, record: Dict[str, Any]) -> bool:
        """Write one record; returns False when suppressed."""
        if self.read_only or self.replaying:
            return False
        if self._fh is None:
            self._fh = open(self._log_path(self._serial), "a", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.log_records += 1
        self._records_since_compact += 1
        return True

    def record_add(self, key: str, server_id: int, index: int, entry: Entry) -> None:
        self.append(
            {
                "op": "add",
                "k": key,
                "s": server_id,
                "i": index,
                "e": [entry.entry_id, entry.payload],
            }
        )

    def record_drop(self, key: str, server_id: int, entry_id: str) -> None:
        self.append({"op": "drop", "k": key, "s": server_id, "id": entry_id})

    def record_replace(
        self, key: str, server_id: int, old_id: str, index: int, entry: Entry
    ) -> None:
        self.append(
            {
                "op": "swap",
                "k": key,
                "s": server_id,
                "old": old_id,
                "i": index,
                "e": [entry.entry_id, entry.payload],
            }
        )

    def record_reset(
        self, key: str, server_id: int, entries: Iterable[Entry]
    ) -> None:
        self.append(
            {
                "op": "reset",
                "k": key,
                "s": server_id,
                "entries": [[e.entry_id, e.payload] for e in entries],
            }
        )

    def record_clear(self, key: str, server_id: int) -> None:
        self.append({"op": "clear", "k": key, "s": server_id})

    def record_state(self, key: str, server_id: int, state: Dict[str, Any]) -> None:
        """Journal a strategy scratch state, skipping no-op rewrites."""
        payload = _persistable_state(state)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        slot = ("state", key, server_id)
        if self._last_blob.get(slot) == blob:
            return
        if not payload and slot not in self._last_blob:
            return  # never journal a state that was always empty
        if self.append({"op": "state", "k": key, "s": server_id, "state": payload}):
            self._last_blob[slot] = blob

    def record_rng(self, rng: random.Random) -> None:
        """Journal the cluster RNG state, skipping no-op rewrites."""
        state = _rng_to_jsonable(rng.getstate())
        blob = json.dumps(state, separators=(",", ":"))
        if self._last_blob.get("rng") == blob:
            return
        if self.append({"op": "rng", "state": state}):
            self._last_blob["rng"] = blob

    def record_epoch(self, key: str, epoch: int) -> None:
        self.append({"op": "epoch", "k": key, "n": epoch})

    def record_params(self, schemes: Dict[str, Dict[str, Any]]) -> None:
        """Journal effective strategy params, skipping no-op rewrites."""
        blob = json.dumps(schemes, sort_keys=True, separators=(",", ":"))
        if self._last_blob.get("params") == blob:
            return
        if self.append({"op": "params", "schemes": schemes}):
            self._last_blob["params"] = blob

    # -- reading -------------------------------------------------------------

    def load(self) -> RecoveredImage:
        """Replay snapshot + surviving logs into a recovered image.

        Also positions the journal's write serial after the newest log
        file, so subsequent appends continue the surviving history.
        """
        image = RecoveredImage()
        snapshot_serial = 0
        if self.snapshot_path.exists():
            snapshot = json.loads(self.snapshot_path.read_text())
            if snapshot.get("schema") != SNAPSHOT_SCHEMA:
                raise RecoveryError(
                    f"snapshot schema {snapshot.get('schema')!r} is not "
                    f"{SNAPSHOT_SCHEMA}"
                )
            snapshot_serial = snapshot.get("serial", 0)
            self.compactions = snapshot.get("compactions", 0)
            self.last_compaction_epoch = snapshot.get("last_compaction_epoch", 0)
            image = RecoveredImage.from_snapshot(snapshot["image"])
        records = 0
        serials = [s for s in self._log_serials() if s >= snapshot_serial]
        for serial in serials:
            records += self._replay_file(self._log_path(serial), image)
        self._serial = max([snapshot_serial, 1] + serials)
        self.log_records = records
        # Seed the dedupe cache so the first post-recovery state/rng
        # record is only written if it actually differs.
        for key, by_server in image.states.items():
            for sid, state in by_server.items():
                self._last_blob[("state", key, sid)] = json.dumps(
                    state, sort_keys=True, separators=(",", ":")
                )
        if image.rng_state is not None:
            self._last_blob["rng"] = json.dumps(
                image.rng_state, separators=(",", ":")
            )
        if image.params:
            self._last_blob["params"] = json.dumps(
                image.params, sort_keys=True, separators=(",", ":")
            )
        return image

    def _replay_file(self, path: pathlib.Path, image: RecoveredImage) -> int:
        records = 0
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return 0
        for line in text.split("\n"):
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # Torn tail: the crash cut a record short.  Everything
                # before it is intact; nothing after it can exist.
                break
            image.apply(record)
            records += 1
        return records

    # -- compaction ----------------------------------------------------------

    def compact(self, image: RecoveredImage, epoch: int = 0) -> None:
        """Fold the live logs into ``snapshot.json`` and rotate.

        ``image`` must describe the *current* full state (see
        :func:`build_image`); ``epoch`` stamps the snapshot for the
        ``last_compaction_epoch`` capability/metric.
        """
        if self.read_only:
            return
        folded = [s for s in self._log_serials() if s <= self._serial]
        # (1) open the next serial's log so new records land past the
        # snapshot's coverage...
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._serial += 1
        self._fh = open(self._log_path(self._serial), "a", encoding="utf-8")
        # (2) ...then publish the snapshot atomically...
        payload = {
            "schema": SNAPSHOT_SCHEMA,
            "serial": self._serial,
            "compactions": self.compactions + 1,
            "last_compaction_epoch": epoch,
            "image": image.to_snapshot(),
        }
        tmp = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.snapshot_path)
        # (3) ...and only then drop the folded logs.
        for serial in folded:
            with contextlib.suppress(OSError):
                self._log_path(serial).unlink()
        self.compactions += 1
        self.last_compaction_epoch = epoch
        self.log_records = 0
        self._records_since_compact = 0

    def should_compact(self) -> bool:
        return (
            not self.read_only
            and self.compact_every > 0
            and self._records_since_compact >= self.compact_every
        )

    # -- bookkeeping ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Capability/metric view of the journal."""
        return {
            "kind": "log",
            "data_dir": str(self.data_dir),
            "read_only": self.read_only,
            "log_records": self.log_records,
            "log_bytes": self.log_bytes,
            "compactions": self.compactions,
            "last_compaction_epoch": self.last_compaction_epoch,
        }

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class LogBackend(MemoryBackend):
    """The in-memory backend with every mutation journaled.

    Representation-identical to :class:`MemoryBackend` — same slots,
    same ordered lists, same bitmask — so the read path (sampling,
    membership, the bitset kernel's ``_indices`` access) costs exactly
    the same.  Each mutator delegates to ``super()`` first and journals
    only mutations that actually happened, recording *outcomes* (the
    popped entry's id, the assigned dense index) so replay is
    deterministic and RNG-free.
    """

    __slots__ = ("_journal", "_key", "_server_id")

    def __init__(
        self,
        journal: AppendLogJournal,
        key: str,
        server_id: int,
        interner=None,
    ) -> None:
        self._journal = journal
        self._key = key
        self._server_id = server_id
        super().__init__(interner=interner)

    def add(self, entry: Entry) -> bool:
        added = super().add(entry)
        if added:
            self._journal.record_add(
                self._key, self._server_id, self._indices[-1], entry
            )
        return added

    def discard(self, entry: Entry) -> bool:
        removed = super().discard(entry)
        if removed:
            self._journal.record_drop(self._key, self._server_id, entry.entry_id)
        return removed

    def replace(self, old: Entry, new: Entry) -> bool:
        swapped = super().replace(old, new)
        if swapped:
            self._journal.record_replace(
                self._key,
                self._server_id,
                old.entry_id,
                self._interner.index_of(new.entry_id),
                new,
            )
        return swapped

    def pop_random(self, rng: random.Random) -> Entry:
        entry = super().pop_random(rng)
        self._journal.record_drop(self._key, self._server_id, entry.entry_id)
        return entry

    def clear(self) -> None:
        had_entries = len(self._entries) > 0
        super().clear()
        if had_entries:
            self._journal.record_clear(self._key, self._server_id)

    def restore(self, entries: Iterable[Entry]) -> None:
        """Replace contents, journaled as one ``reset`` record."""
        entries = list(entries)
        with self._journal.suspended():
            super().restore(entries)
        self._journal.record_reset(self._key, self._server_id, entries)


def build_image(
    cluster: "Cluster",
    epochs: Optional[Dict[str, int]] = None,
    params: Optional[Dict[str, Dict[str, Any]]] = None,
) -> RecoveredImage:
    """Capture a cluster's full durable state as a snapshot image."""
    image = RecoveredImage()
    keys: List[str] = []
    for server in cluster.servers:
        for key in server.keys():
            if key not in keys:
                keys.append(key)
    for key in keys:
        interner = cluster.interner(key)
        order = [interner.entry_at(i) for i in range(len(interner))]
        image.interners[key] = [[e.entry_id, e.payload] for e in order]
        image._index_by_id[key] = {e.entry_id: i for i, e in enumerate(order)}
    for server in cluster.servers:
        for key in server.keys():
            store = server.store(key)
            image.stores.setdefault(key, {})[server.server_id] = [
                [e.entry_id, e.payload] for e in store.as_list()
            ]
            state = _persistable_state(server.state(key))
            if state:
                image.states.setdefault(key, {})[server.server_id] = dict(state)
    image.rng_state = _rng_to_jsonable(cluster.rng.getstate())
    if epochs:
        image.epochs = dict(epochs)
    if params:
        image.params = {name: dict(p) for name, p in params.items()}
    return image


def apply_image(
    image: RecoveredImage,
    cluster: "Cluster",
    journal: Optional[AppendLogJournal] = None,
) -> None:
    """Rebuild a fresh cluster's stores/state/RNG from an image.

    Interners are replayed first, in recorded dense-index order, so
    every store rebuild re-derives identical bit positions regardless
    of which server's entries are applied first.  Journaling is
    suspended while applying so recovery does not re-journal itself.
    """
    suspend = journal.suspended() if journal is not None else contextlib.nullcontext()
    with suspend:
        for key, order in image.interners.items():
            interner = cluster.interner(key)
            for entry_id, payload in order:
                interner.intern(Entry(entry_id, payload))
        for key, by_server in image.stores.items():
            for server_id, pairs in by_server.items():
                store = cluster.server(server_id).store(key)
                for entry_id, payload in pairs:
                    store.add(Entry(entry_id, payload))
        for key, by_server in image.states.items():
            for server_id, state in by_server.items():
                cluster.server(server_id).state(key).update(state)
        if image.rng_state is not None:
            cluster.rng.setstate(_rng_from_jsonable(image.rng_state))


__all__ = [
    "AppendLogJournal",
    "LogBackend",
    "RecoveredImage",
    "RecoveryError",
    "apply_image",
    "build_image",
]
