"""Figure 13: RandomServer-x unfairness deterioration under churn.

Paper setup: 10 servers, 20 entries per server (x = 20), expected 100
entries in the system; unfairness measured after 0..4000 updates.

Expected shape: unfairness rises rapidly and stabilizes as updates
accumulate — deleted entries are replaced by newer insertions, biasing
answers toward the new — ending only about a factor of 2 better than
Fixed-x's constant 2.0 (instead of the order of magnitude seen
statically).

Unfairness at each checkpoint is computed over the entries *currently
live* in the system (the churn replaces the population, so the
universe moves with it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs
from repro.metrics.unfairness import estimate_unfairness
from repro.simulation.events import AddEvent, DeleteEvent
from repro.strategies.random_server import RandomServerX
from repro.workload.generator import SteadyStateWorkload


@dataclass(frozen=True)
class Fig13Config:
    entry_count: int = 100
    server_count: int = 10
    x: int = 20
    target: int = 35
    checkpoints: Tuple[int, ...] = (0, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000)
    #: Lookups per unfairness estimate (paper: 10000).
    lookups: int = 2000
    #: Runs per data point.
    runs: int = 6
    seed: int = 13


def unfairness_after_updates(
    config: Fig13Config, updates: int, seed: int
) -> float:
    """One run: place, apply ``updates`` churn events, measure unfairness."""
    rng = random.Random(seed)
    workload = SteadyStateWorkload(config.entry_count, rng=rng)
    trace = workload.generate(updates)
    cluster = Cluster(config.server_count, seed=seed)
    strategy = RandomServerX(cluster, x=config.x)
    strategy.place(trace.initial_entries)
    live: Dict[str, Entry] = {e.entry_id: e for e in trace.initial_entries}
    for event in trace.events:
        if isinstance(event, AddEvent):
            strategy.add(event.entry)
            live[event.entry.entry_id] = event.entry
        elif isinstance(event, DeleteEvent):
            strategy.delete(event.entry)
            live.pop(event.entry.entry_id, None)
    universe: List[Entry] = list(live.values())
    estimate = estimate_unfairness(
        strategy, config.target, universe, config.lookups
    )
    return estimate.unfairness


def run(
    config: Fig13Config = Fig13Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Figure 13: unfairness vs number of updates."""
    result = ExperimentResult(
        name="Figure 13: RandomServer-x unfairness under churn",
        headers=["updates", "random_server"],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "x": config.x,
            "t": config.target,
            "runs": config.runs,
        },
    )
    with make_executor(jobs) as executor:
        for updates in config.checkpoints:
            averaged = average_runs(
                partial(unfairness_after_updates, config, updates),
                master_seed=config.seed + updates,
                runs=config.runs,
                executor=executor,
            )
            result.rows.append(
                {"updates": updates, "random_server": round(averaged.mean, 4)}
            )
    return result
