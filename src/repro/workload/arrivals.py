"""Poisson arrival process for add events.

The paper generates adds "using the Poisson arrival model with an
expectation λ = 10, i.e., one add event per 10 time units": the
*inter-arrival gap* has mean λ.  We keep that (slightly unusual)
convention — ``mean_gap`` is the paper's λ — and expose the equivalent
rate for readers who think in events per time unit.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.core.exceptions import InvalidParameterError


class PoissonArrivals:
    """Exponentially-distributed inter-arrival times with mean ``mean_gap``.

    >>> arrivals = PoissonArrivals(mean_gap=10.0, rng=random.Random(1))
    >>> times = arrivals.first(1000)
    >>> 8.0 < times[-1] / 1000 < 12.0   # ~10 time units between arrivals
    True
    """

    def __init__(self, mean_gap: float, rng: random.Random) -> None:
        if mean_gap <= 0:
            raise InvalidParameterError(f"mean_gap must be positive, got {mean_gap}")
        self.mean_gap = mean_gap
        self._rng = rng

    @property
    def rate(self) -> float:
        """Arrivals per time unit (``1 / mean_gap``)."""
        return 1.0 / self.mean_gap

    def __iter__(self) -> Iterator[float]:
        """Yield arrival timestamps forever."""
        now = 0.0
        while True:
            now += self._rng.expovariate(self.rate)
            yield now

    def first(self, count: int) -> List[float]:
        """The first ``count`` arrival timestamps."""
        iterator = iter(self)
        return [next(iterator) for _ in range(count)]
