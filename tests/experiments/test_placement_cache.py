"""PlacementCache: reuse must never change a measured number.

The cache's promise is byte-identity: a consumer of a cached handout
measures exactly what a consumer of a fresh placement would — same
stores, same RNG state, same message counters.
"""

from __future__ import annotations

from repro.experiments.placement_cache import PlacementCache
from repro.metrics.unfairness import estimate_unfairness


def _measurement(strategy, entries):
    estimate = estimate_unfairness(strategy, 15, entries, lookups=300)
    return estimate.unfairness, strategy.cluster.rng.getstate()


def test_handouts_are_byte_identical():
    cache = PlacementCache()
    strategy, entries = cache.placed("random_server", 40, 8, seed=3, x=10)
    first = _measurement(strategy, entries)
    strategy2, entries2 = cache.placed("random_server", 40, 8, seed=3, x=10)
    assert strategy2 is strategy  # one build, handed out again
    assert entries2 == entries
    second = _measurement(strategy2, entries2)
    assert first == second  # same value AND same post-measurement RNG state
    assert cache.size == 1
    assert cache.hits == 1


def test_distinct_keys_build_distinct_placements():
    cache = PlacementCache()
    a, _ = cache.placed("random_server", 40, 8, seed=3, x=10)
    b, _ = cache.placed("random_server", 40, 8, seed=4, x=10)
    c, _ = cache.placed("random_server", 40, 8, seed=3, x=5)
    assert a is not b and a is not c
    assert cache.size == 3
    assert cache.hits == 0


def test_mutation_is_detected_and_restored():
    cache = PlacementCache()
    strategy, entries = cache.placed("round_robin", 40, 8, seed=9, y=2)
    baseline = _measurement(strategy, entries)
    # A churn consumer mutates the placement...
    strategy.delete(entries[0])
    strategy.delete(entries[1])
    # ...the next handout must present the pristine placement again.
    strategy2, entries2 = cache.placed("round_robin", 40, 8, seed=9, y=2)
    assert strategy2 is strategy
    assert strategy2.coverage() == 40
    assert _measurement(strategy2, entries2) == baseline


def test_invalidate_and_clear():
    cache = PlacementCache()
    cache.placed("fixed", 40, 8, seed=1, x=10)
    assert cache.invalidate("fixed", 40, 8, seed=1, x=10) is True
    assert cache.invalidate("fixed", 40, 8, seed=1, x=10) is False
    assert cache.size == 0
    cache.placed("fixed", 40, 8, seed=1, x=10)
    cache.placed("fixed", 40, 8, seed=2, x=10)
    cache.clear()
    assert cache.size == 0


def test_placed_group_shares_one_cluster():
    cache = PlacementCache()
    specs = (
        ("rr", "round_robin", "rr", (("y", 2),)),
        ("rs", "random_server", "rs", (("x", 10),)),
    )
    strategies, entries = cache.placed_group(specs, 40, 8, seed=7)
    assert set(strategies) == {"rr", "rs"}
    assert strategies["rr"].cluster is strategies["rs"].cluster
    first = _measurement(strategies["rr"], entries)
    strategies2, entries2 = cache.placed_group(specs, 40, 8, seed=7)
    assert strategies2["rr"] is strategies["rr"]
    assert _measurement(strategies2["rr"], entries2) == first
    assert cache.hits == 1
