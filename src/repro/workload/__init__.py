"""Synthetic workload generation (paper §6.1).

Adds arrive as a Poisson process (one per ``λ = 10`` time units in the
paper); each added entry lives for a lifetime drawn from an exponential
or Zipf-like distribution scaled so the system holds ``h`` entries in
steady state; deletes fire when lifetimes expire.
"""

from repro.workload.arrivals import PoissonArrivals
from repro.workload.lifetimes import (
    ExponentialLifetime,
    FixedLifetime,
    LifetimeDistribution,
    ZipfLifetime,
)
from repro.workload.generator import SteadyStateWorkload
from repro.workload.lookups import LookupWorkload

__all__ = [
    "PoissonArrivals",
    "LifetimeDistribution",
    "ExponentialLifetime",
    "ZipfLifetime",
    "FixedLifetime",
    "SteadyStateWorkload",
    "LookupWorkload",
]
