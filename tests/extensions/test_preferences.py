"""Unit tests for the §7.1 client-preference extension."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.extensions.preferences import (
    PreferenceClient,
    attribute_cost,
    latency_bandwidth_cost,
)
from repro.strategies.full_replication import FullReplication
from repro.strategies.round_robin import RoundRobinY


def _annotated_entries(count):
    """Entries whose payload latency increases with their index."""
    return [
        Entry(f"host{i}", payload={"latency_ms": float(i), "bandwidth_mbps": 100.0 - i})
        for i in range(1, count + 1)
    ]


@pytest.fixture
def strategy(cluster):
    s = FullReplication(cluster)
    s.place(_annotated_entries(30))
    return s


class TestCostFunctions:
    def test_attribute_cost_reads_payload(self):
        cost = attribute_cost("latency_ms")
        assert cost(Entry("a", payload={"latency_ms": 5})) == 5.0

    def test_attribute_cost_default_for_missing(self):
        cost = attribute_cost("latency_ms")
        assert cost(Entry("a")) == float("inf")

    def test_latency_bandwidth_tradeoff(self):
        cost = latency_bandwidth_cost(latency_weight=1.0, bandwidth_weight=2.0)
        fast_far = Entry("a", payload={"latency_ms": 50, "bandwidth_mbps": 100})
        slow_near = Entry("b", payload={"latency_ms": 10, "bandwidth_mbps": 1})
        assert cost(fast_far) < cost(slow_near)


class TestBestLookup:
    def test_returns_the_true_t_best(self, strategy):
        client = PreferenceClient(strategy, attribute_cost("latency_ms"))
        result = client.best_lookup(3)
        assert {e.entry_id for e in result.entries} == {"host1", "host2", "host3"}

    def test_result_meets_partial_contract(self, strategy):
        client = PreferenceClient(strategy, attribute_cost("latency_ms"))
        result = client.best_lookup(5)
        assert result.success and result.target == 5

    def test_validation(self, strategy):
        client = PreferenceClient(strategy, attribute_cost("latency_ms"))
        with pytest.raises(InvalidParameterError):
            client.best_lookup(0)


class TestProbingLookup:
    def test_probing_respects_server_cap(self):
        strategy = RoundRobinY(Cluster(10, seed=2), y=2)
        strategy.place(_annotated_entries(50))
        client = PreferenceClient(strategy, attribute_cost("latency_ms"))
        result = client.probing_lookup(5, max_servers=2)
        assert result.lookup_cost <= 2
        assert len(result) == 5

    def test_probing_optimal_under_full_replication(self, strategy):
        # Every server has everything, so one probe is already optimal.
        client = PreferenceClient(strategy, attribute_cost("latency_ms"))
        result = client.probing_lookup(4, max_servers=1)
        assert client.regret(result) == 0.0

    def test_probing_regret_nonnegative(self):
        strategy = RoundRobinY(Cluster(10, seed=3), y=1)
        strategy.place(_annotated_entries(40))
        client = PreferenceClient(strategy, attribute_cost("latency_ms"))
        for _ in range(5):
            result = client.probing_lookup(5, max_servers=2)
            assert client.regret(result) >= 0.0

    def test_probing_can_be_suboptimal_with_partition(self):
        # With y=1 each server holds a 4-entry slice; 1 probe cannot
        # see host1..host4 unless it hits their server.
        strategy = RoundRobinY(Cluster(10, seed=4), y=1)
        strategy.place(_annotated_entries(40))
        client = PreferenceClient(strategy, attribute_cost("latency_ms"))
        regrets = [
            client.regret(client.probing_lookup(4, max_servers=1))
            for _ in range(30)
        ]
        assert any(r > 0 for r in regrets)

    def test_more_probes_weakly_better_on_average(self):
        strategy = RoundRobinY(Cluster(10, seed=5), y=1)
        strategy.place(_annotated_entries(40))
        client = PreferenceClient(strategy, attribute_cost("latency_ms"))
        few = sum(
            client.regret(client.probing_lookup(4, max_servers=1))
            for _ in range(30)
        )
        many = sum(
            client.regret(client.probing_lookup(4, max_servers=8))
            for _ in range(30)
        )
        assert many <= few
