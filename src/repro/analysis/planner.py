"""Capacity planner: every analytic prediction for a deployment at once.

The selector (:mod:`repro.strategies.selector`) ranks schemes
qualitatively; this module computes the *numbers* an operator would
size a deployment with — for each scheme at a given (h, n, storage
budget, target, update rate): parameters, storage, expected lookup
cost, expected coverage, worst-case fault tolerance, and expected
update message cost, all from the paper's closed forms (with clearly
marked simulation-only cells where no closed form exists).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.crossover import (
    expected_update_cost_fixed,
    expected_update_cost_hash,
)
from repro.analysis.formulas import (
    expected_coverage_random_server,
    expected_storage,
    fault_tolerance_round_robin,
    lookup_cost_round_robin,
    solve_x_from_budget,
    solve_y_from_budget,
)
from repro.core import columns
from repro.core.exceptions import InvalidParameterError

#: Marker for quantities with no closed form (measure via simulation).
SIMULATION_ONLY = "simulate"


@dataclass(frozen=True)
class DeploymentSpec:
    """What the operator knows up front."""

    entry_count: int
    server_count: int
    storage_budget: int
    target_answer_size: int
    updates_per_lookup: float = 0.0

    def __post_init__(self) -> None:
        if min(self.entry_count, self.server_count, self.storage_budget) < 1:
            raise InvalidParameterError(
                "entry_count, server_count, storage_budget must be >= 1"
            )
        if self.target_answer_size < 1:
            raise InvalidParameterError("target_answer_size must be >= 1")
        if self.updates_per_lookup < 0:
            raise InvalidParameterError("updates_per_lookup must be >= 0")


@dataclass(frozen=True)
class SchemePlan:
    """One scheme's predicted behaviour for a deployment."""

    scheme: str
    parameters: Dict[str, int]
    expected_storage: float
    expected_lookup_cost: object  # float or SIMULATION_ONLY
    expected_coverage: float
    worst_case_fault_tolerance: object  # int or SIMULATION_ONLY
    expected_update_messages: object  # float or SIMULATION_ONLY
    notes: str = ""


def plan(spec: DeploymentSpec) -> List[SchemePlan]:
    """Predictions for every scheme, best-effort analytic.

    >>> plans = plan(DeploymentSpec(100, 10, 200, 15))
    >>> {p.scheme for p in plans} >= {"fixed", "round_robin", "hash"}
    True
    """
    h, n = spec.entry_count, spec.server_count
    t = spec.target_answer_size
    x = solve_x_from_budget(spec.storage_budget, n)
    y = min(n, solve_y_from_budget(spec.storage_budget, h))
    plans: List[SchemePlan] = []

    plans.append(
        SchemePlan(
            scheme="full_replication",
            parameters={},
            expected_storage=expected_storage("full_replication", h, n),
            expected_lookup_cost=1.0,
            expected_coverage=float(h),
            worst_case_fault_tolerance=n - 1,
            expected_update_messages=1.0 + n,
            notes="ignores the budget: storage is h*n by definition",
        )
    )
    fixed_coverage = float(min(x, h))
    plans.append(
        SchemePlan(
            scheme="fixed",
            parameters={"x": x},
            expected_storage=expected_storage("fixed", h, n, x=x),
            expected_lookup_cost=1.0 if t <= x else math.inf,
            expected_coverage=fixed_coverage,
            worst_case_fault_tolerance=(n - 1) if t <= x else 0,
            expected_update_messages=expected_update_cost_fixed(x, h, n),
            notes="" if t <= x else f"t={t} exceeds coverage x={x}: unusable",
        )
    )
    plans.append(
        SchemePlan(
            scheme="random_server",
            parameters={"x": x},
            expected_storage=expected_storage("random_server", h, n, x=x),
            expected_lookup_cost=SIMULATION_ONLY,
            expected_coverage=expected_coverage_random_server(h, n, x),
            worst_case_fault_tolerance=SIMULATION_ONLY,
            expected_update_messages=1.0 + n,
            notes="lookup cost and fault tolerance need simulation (§4.2, §4.4)",
        )
    )
    plans.append(
        SchemePlan(
            scheme="round_robin",
            parameters={"y": y},
            expected_storage=expected_storage("round_robin", h, n, y=y),
            expected_lookup_cost=float(lookup_cost_round_robin(t, h, n, y)),
            expected_coverage=float(h),
            worst_case_fault_tolerance=fault_tolerance_round_robin(t, h, n, y),
            expected_update_messages=SIMULATION_ONLY,
            notes="update cost depends on the delete-migration mix (§5.4)",
        )
    )
    plans.append(
        SchemePlan(
            scheme="hash",
            parameters={"y": y},
            expected_storage=expected_storage("hash", h, n, y=y),
            expected_lookup_cost=SIMULATION_ONLY,
            expected_coverage=float(h),
            worst_case_fault_tolerance=SIMULATION_ONLY,
            expected_update_messages=expected_update_cost_hash(y),
            notes="per-server loads are unbounded below (§3.5)",
        )
    )
    return plans


def cheapest_for_updates(spec: DeploymentSpec) -> str:
    """The scheme with the lowest *analytic* per-update message cost.

    Only Fixed-x and Hash-y have closed-form update costs (§6.4); this
    returns the cheaper of the two — the paper's own head-to-head.
    """
    h, n = spec.entry_count, spec.server_count
    x = solve_x_from_budget(spec.storage_budget, n)
    y = min(n, solve_y_from_budget(spec.storage_budget, h))
    fixed_cost = expected_update_cost_fixed(x, h, n)
    hash_cost = expected_update_cost_hash(y)
    return "fixed" if fixed_cost < hash_cost else "hash"


def plan_rows(spec: DeploymentSpec) -> List[Dict[str, object]]:
    """The plan as report-renderable rows.

    Row keys follow :data:`repro.core.columns.PLAN_COLUMNS` — the same
    tuple the CLI renders with, so the planner cannot silently drift
    from its own table.
    """
    rows = []
    for scheme_plan in plan(spec):
        rows.append(
            {
                "scheme": scheme_plan.scheme,
                columns.PARAMS: ",".join(
                    f"{k}={v}" for k, v in scheme_plan.parameters.items()
                ) or "-",
                columns.STORAGE: round(scheme_plan.expected_storage, 1),
                columns.LOOKUP_COST: scheme_plan.expected_lookup_cost
                if isinstance(scheme_plan.expected_lookup_cost, str)
                else round(float(scheme_plan.expected_lookup_cost), 2),
                columns.COVERAGE: round(scheme_plan.expected_coverage, 1),
                columns.FAULT_TOL: scheme_plan.worst_case_fault_tolerance,
                columns.UPDATE_MSGS: scheme_plan.expected_update_messages
                if isinstance(scheme_plan.expected_update_messages, str)
                else round(float(scheme_plan.expected_update_messages), 2),
                columns.NOTES: scheme_plan.notes,
            }
        )
    return rows
