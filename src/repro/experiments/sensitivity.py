"""Sensitivity analysis: do the paper's conclusions survive other n?

Every evaluation in the paper fixes n = 10 servers.  A reproduction
should check that the qualitative conclusions aren't artifacts of that
choice: this experiment re-runs the core lookup-cost and
fault-tolerance comparisons at several cluster sizes (with the storage
budget scaled to keep two copies' worth of storage per entry, i.e.
the same x·n = y·h = 2h regime) and reports whether each of the
paper's orderings holds at each n.

Checked claims, per n:

- Round-Robin's lookup cost ≤ RandomServer's ≤ ~Hash's at the
  mid-range target (§4.2's ordering at t just above one server's
  holdings);
- Round-Robin's fault tolerance equals its closed form;
- RandomServer's fault tolerance ≥ Round-Robin's (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from repro.analysis.formulas import fault_tolerance_round_robin
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs_multi
from repro.metrics.fault_tolerance import greedy_fault_tolerance
from repro.metrics.lookup_cost import estimate_lookup_cost
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class SensitivityConfig:
    entry_count: int = 100
    server_counts: Tuple[int, ...] = (5, 10, 20)
    #: Target just above one server's holdings in the 2-copy regime.
    #: Per-server entries = 2h/n, so t = 2h/n + h/10 scales with it.
    runs: int = 10
    lookups_per_run: int = 300
    seed: int = 55


def measure_point(config: SensitivityConfig, n: int, seed: int) -> Dict[str, float]:
    h = config.entry_count
    budget = 2 * h
    x = max(1, budget // n)
    y = 2
    per_server = budget // n
    target = min(h, per_server + max(1, per_server // 4))

    cluster = Cluster(n, seed=seed)
    schemes = {
        "round_robin": RoundRobinY(cluster, y=y, key="rr"),
        "random_server": RandomServerX(cluster, x=x, key="rs"),
        "hash": HashY(cluster, y=y, key="h"),
    }
    entries = make_entries(h)
    samples: Dict[str, float] = {"target": float(target)}
    for label, strategy in schemes.items():
        strategy.place(entries)
        samples[f"{label}_cost"] = estimate_lookup_cost(
            strategy, target, config.lookups_per_run
        ).mean_cost
        samples[f"{label}_ft"] = float(greedy_fault_tolerance(strategy, target))
    return samples


def run(
    config: SensitivityConfig = SensitivityConfig(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Orderings per cluster size; ``holds_*`` columns are the verdicts."""
    result = ExperimentResult(
        name="Sensitivity: §4.2/§4.4 orderings across cluster sizes",
        headers=[
            "n",
            "target",
            "round_robin_cost",
            "random_server_cost",
            "hash_cost",
            "round_robin_ft",
            "random_server_ft",
            "hash_ft",
            "rr_ft_formula",
            "holds_cost_order",
            "holds_ft_order",
        ],
        meta={"h": config.entry_count, "budget": "2h", "runs": config.runs},
    )
    with make_executor(jobs) as executor:
        for n in config.server_counts:
            averaged = average_runs_multi(
                partial(measure_point, config, n),
                master_seed=config.seed + n,
                runs=config.runs,
                executor=executor,
            )
            target = int(averaged["target"].mean)
            rr_cost = averaged["round_robin_cost"].mean
            rs_cost = averaged["random_server_cost"].mean
            hash_cost = averaged["hash_cost"].mean
            rr_ft = averaged["round_robin_ft"].mean
            rs_ft = averaged["random_server_ft"].mean
            formula = fault_tolerance_round_robin(target, config.entry_count, n, 2)
            result.rows.append(
                {
                    "n": n,
                    "target": target,
                    "round_robin_cost": round(rr_cost, 3),
                    "random_server_cost": round(rs_cost, 3),
                    "hash_cost": round(hash_cost, 3),
                    "round_robin_ft": round(rr_ft, 2),
                    "random_server_ft": round(rs_ft, 2),
                    "hash_ft": round(averaged["hash_ft"].mean, 2),
                    "rr_ft_formula": formula,
                    "holds_cost_order": rr_cost <= rs_cost + 1e-9,
                    "holds_ft_order": rs_ft >= rr_ft - 0.25,
                }
            )
    return result
