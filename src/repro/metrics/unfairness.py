"""Unfairness: bias in which entries lookups return (paper §4.5).

A fair strategy returns every one of the ``h`` entries with the ideal
probability ``t/h`` on a size-``t`` lookup.  The paper's unfairness of
a placement *instance* is the coefficient of variation of the actual
per-entry retrieval probabilities around that ideal (equation 1):

    U_I = (h/t) · sqrt( Σ_j (p_I(j) − t/h)² / h )

and a *strategy's* unfairness averages ``U_I`` over the instances its
randomness produces.  Retrieval probabilities are estimated by
Monte-Carlo (10000 lookups per instance in the paper), with an exact
path for strategies whose lookups are deterministic enough to
enumerate.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.cluster.kernel import plan_kernel, run_retrieval_kernel
from repro.strategies.base import PlacementStrategy


def instance_unfairness(
    probabilities: Sequence[float], target: int, entry_count: Optional[int] = None
) -> float:
    """Equation (1) on explicit per-entry retrieval probabilities.

    Parameters
    ----------
    probabilities:
        ``p_I(j)`` for each entry ``j`` that exists in the system.
        Entries with zero probability (outside the coverage) must be
        included — they are exactly what drives Figure 9's
        coverage-bound unfairness floor.
    target:
        The lookup target answer size ``t``.
    entry_count:
        ``h``; defaults to ``len(probabilities)``.

    >>> instance_unfairness([1.0, 0.0], target=1)   # Fixed-1, 2 entries
    1.0
    >>> instance_unfairness([0.5, 0.5], target=1)   # perfectly fair
    0.0
    """
    h = entry_count if entry_count is not None else len(probabilities)
    if h < 1:
        raise InvalidParameterError("need at least one entry")
    if target < 1:
        raise InvalidParameterError("target must be >= 1")
    ideal = target / h
    variance = sum((p - ideal) ** 2 for p in probabilities)
    # Entries not listed (when entry_count > len) have probability 0.
    variance += (h - len(probabilities)) * ideal**2
    return (h / target) * math.sqrt(variance / h)


def retrieval_probabilities(
    strategy: PlacementStrategy,
    target: int,
    universe: Iterable[Entry],
    lookups: int = 10000,
) -> Dict[Entry, float]:
    """Monte-Carlo estimate of ``p_I(j)`` for each entry of ``universe``.

    Issues ``lookups`` real partial lookups against the current
    placement and counts how often each entry appears in an answer.
    When the strategy declares a plain-skeleton
    :meth:`~repro.strategies.base.PlacementStrategy.lookup_profile`
    and nothing non-replayable is installed (no faults, tracers,
    retries, or metrics), the loop runs on the bitset kernel
    (:mod:`repro.cluster.kernel`) — bit-identical RNG stream and
    message counters, several times faster.
    """
    if lookups < 1:
        raise InvalidParameterError(f"lookups must be >= 1, got {lookups}")
    entries = list(universe)
    seen_ids: set = set()
    for entry in entries:
        if entry.entry_id in seen_ids:
            raise InvalidParameterError(
                f"duplicate entry id in universe: {entry.entry_id!r}"
            )
        seen_ids.add(entry.entry_id)

    plan = plan_kernel(strategy, target)
    if plan is not None:
        index_counts = run_retrieval_kernel(plan, target, lookups)
        interner = strategy.cluster.interner(strategy.key)
        out: Dict[Entry, float] = {}
        for entry in entries:
            index = interner.index_of(entry.entry_id)
            count = index_counts[index] if index is not None else 0
            out[entry] = count / lookups
        return out

    # Counter.update over a generator stays in C for the whole answer;
    # this loop dominates fig9/fig13-class runs, so it matters.
    counts: Counter = Counter()
    for _ in range(lookups):
        result = strategy.partial_lookup(target)
        counts.update(entry.entry_id for entry in result.entries)
    return {entry: counts[entry.entry_id] / lookups for entry in entries}


@dataclass(frozen=True)
class UnfairnessEstimate:
    """One instance's estimated unfairness, with its inputs.

    ``lookups == 0`` marks a closed-form (exact-estimator) value: no
    Monte-Carlo lookups were issued at all.
    """

    unfairness: float
    target: int
    entry_count: int
    lookups: int
    zero_probability_entries: int


def estimate_unfairness(
    strategy: PlacementStrategy,
    target: int,
    universe: Iterable[Entry],
    lookups: int = 10000,
    estimator: str = "mc",
) -> UnfairnessEstimate:
    """Estimate the unfairness of the strategy's *current* instance.

    Averaging this over freshly re-placed instances gives the paper's
    strategy-level unfairness; :mod:`repro.experiments.fig9_unfairness`
    does exactly that.

    ``estimator`` selects how per-entry retrieval probabilities are
    obtained:

    * ``"mc"`` (default): Monte-Carlo over ``lookups`` real partial
      lookups, the paper's method — seeded outputs are unchanged.
    * ``"exact"``: closed form via
      :func:`repro.analysis.exact.exact_retrieval_probabilities`;
      raises :class:`InvalidParameterError` when the current
      strategy/instance has no exact form (Hash-y, RandomServer-x).
      Consumes no RNG.
    * ``"auto"``: exact when available, Monte-Carlo fallback
      otherwise.  Note the fallback consumes RNG while the exact path
      does not, so mixed-strategy sweeps under ``"auto"`` are *not*
      draw-for-draw comparable with all-MC runs.
    """
    if estimator not in ("mc", "exact", "auto"):
        raise InvalidParameterError(
            f"estimator must be 'mc', 'exact', or 'auto', got {estimator!r}"
        )
    entries = list(universe)
    probabilities = None
    if estimator in ("exact", "auto"):
        from repro.analysis.exact import exact_retrieval_probabilities

        probabilities = exact_retrieval_probabilities(strategy, target, entries)
        if probabilities is None and estimator == "exact":
            raise InvalidParameterError(
                f"no exact retrieval-probability form for "
                f"{type(strategy).__name__} (use estimator='mc' or 'auto')"
            )
    used_lookups = lookups
    if probabilities is None:
        probabilities = retrieval_probabilities(strategy, target, entries, lookups)
    else:
        used_lookups = 0
    value = instance_unfairness(
        [probabilities[entry] for entry in entries], target, len(entries)
    )
    zero = sum(1 for entry in entries if probabilities[entry] == 0.0)
    return UnfairnessEstimate(
        unfairness=value,
        target=target,
        entry_count=len(entries),
        lookups=used_lookups,
        zero_probability_entries=zero,
    )


def exact_unfairness_uniform_subset(
    covered: int, entry_count: int, target: int
) -> float:
    """Closed-form unfairness when lookups uniformly return a fixed subset.

    If exactly ``covered`` of ``h`` entries are ever returned, each
    with equal probability ``t/covered``, equation (1) reduces to
    ``sqrt(h/covered - 1)`` — e.g. Fixed-20 of 100 entries gives
    ``sqrt(5 - 1) = 2``, the constant the paper quotes in §6.3.

    >>> round(exact_unfairness_uniform_subset(20, 100, 35), 10)
    2.0
    """
    if not 1 <= covered <= entry_count:
        raise InvalidParameterError("need 1 <= covered <= entry_count")
    if target < 1:
        raise InvalidParameterError("target must be >= 1")
    return math.sqrt(entry_count / covered - 1)
