"""Benchmark: regenerate Figure 9 (unfairness vs total storage).

Paper shape: RandomServer-x decreases in two phases (coverage-bound
exponential decay, then a slow linear tail to ~0 at budget 1000);
Hash-y *rises* through phase 1 and only drifts down after; Fixed-x is
an order of magnitude worse than RandomServer-x (closed-form column).
Absolute scale follows equation (1) as printed — see EXPERIMENTS.md
for the reconciliation with Figure 9's printed axis.
"""

from _bench_utils import render_and_print

from repro.experiments.fig9_unfairness import Fig9Config, run


def test_bench_fig9_unfairness(benchmark):
    config = Fig9Config(runs=10, lookups_per_instance=4000)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    random_server = result.column("random_server")
    # Phase structure: big early drop, near-fair at full storage.
    assert random_server[0] > 2 * random_server[-3]
    assert random_server[-1] < 0.08

    # Hash rises in phase 1 then never exceeds its plateau much.
    hash_curve = result.column("hash")
    assert max(hash_curve[1:4]) > hash_curve[0]
    assert max(hash_curve) < 1.0

    # Fixed-x: order of magnitude worse at mid budgets.
    mid = result.row_for(budget=300)
    assert mid["fixed_exact"] > 3 * mid["random_server"]
