"""Every closed-form expression the paper states, as checked functions.

Table 1 (storage cost for ``h`` entries on ``n`` servers):

====================  =============================
Strategy              Storage cost
====================  =============================
Full replication      ``h·n``
Fixed-x               ``x·n``
RandomServer-x        ``x·n``
Round-Robin-y         ``h·y``
Hash-y                ``h·n·(1 − (1 − 1/n)^y)``  (expected)
====================  =============================

plus §4.2's Round-y lookup cost ``⌈t·n/(y·h)⌉``, §4.3's RandomServer
expected coverage ``h·(1 − (1 − x/h)^n)``, and §4.4's Round-y fault
tolerance ``n − ⌈t·n/h⌉ + y − 1``.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.exceptions import InvalidParameterError


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise InvalidParameterError(f"{name} must be positive, got {value}")


def expected_storage(
    strategy: str, entry_count: int, server_count: int, x: int = 0, y: int = 0
) -> float:
    """Table 1's storage cost for the named strategy.

    ``x`` is required for fixed/random_server, ``y`` for
    round_robin/hash; full replication needs neither.

    >>> expected_storage("full_replication", 100, 10)
    1000.0
    >>> expected_storage("fixed", 100, 10, x=20)
    200.0
    >>> round(expected_storage("hash", 100, 10, y=2), 1)
    190.0
    """
    _check_positive(entry_count=entry_count, server_count=server_count)
    h, n = entry_count, server_count
    if strategy == "full_replication":
        return float(h * n)
    if strategy in ("fixed", "random_server"):
        _check_positive(x=x)
        return float(x * n)
    if strategy == "round_robin":
        _check_positive(y=y)
        return float(h * y)
    if strategy == "hash":
        _check_positive(y=y)
        return h * n * (1.0 - (1.0 - 1.0 / n) ** y)
    raise InvalidParameterError(f"unknown strategy {strategy!r}")


def expected_coverage_random_server(
    entry_count: int, server_count: int, x: int
) -> float:
    """§4.3: ``E[coverage] = h·(1 − (1 − x/h)^n)`` for RandomServer-x.

    ``(1 − x/h)^n`` is the probability a specific entry is missing
    from every server's independent random ``x``-subset.
    """
    _check_positive(entry_count=entry_count, server_count=server_count, x=x)
    h, n = entry_count, server_count
    if x >= h:
        return float(h)
    return h * (1.0 - (1.0 - x / h) ** n)


def lookup_cost_round_robin(
    target: int, entry_count: int, server_count: int, y: int
) -> int:
    """§4.2: Round-y contacts ``⌈t·n/(y·h)⌉`` servers... with a wrinkle.

    Each Round-y server stores ``y·h/n`` entries and the stride walk
    makes consecutive contacts disjoint, so the *first* contact yields
    ``y·h/n`` entries and each subsequent one ``h/n`` *new* entries
    — hence the paper's step curve rising by 1 per ``y·h/n`` of target
    in the Figure 4 regime.  The paper's own closed form ``⌈tn/yh⌉``
    describes exactly that regime (every contacted server disjoint,
    which the stride walk achieves while ``t <= h``).
    """
    _check_positive(
        target=target, entry_count=entry_count, server_count=server_count, y=y
    )
    per_server = y * entry_count / server_count
    return max(1, math.ceil(target / per_server))


def fault_tolerance_round_robin(
    target: int, entry_count: int, server_count: int, y: int
) -> int:
    """§4.4: Round-y tolerates ``n − ⌈t·n/h⌉ + y − 1`` failures.

    The first surviving server contributes ``y·h/n`` entries; each
    further survivor adds ``h/n`` distinct ones.  Clamped to
    ``[0, n−1]`` since at least one server must survive.
    """
    _check_positive(
        target=target, entry_count=entry_count, server_count=server_count, y=y
    )
    n, h = server_count, entry_count
    value = n - math.ceil(target * n / h) + y - 1
    return max(0, min(n - 1, value))


def solve_x_from_budget(storage_budget: int, server_count: int) -> int:
    """Invert Table 1 for Fixed/RandomServer: ``x = budget / n``."""
    _check_positive(storage_budget=storage_budget, server_count=server_count)
    return max(1, storage_budget // server_count)


def solve_y_from_budget(storage_budget: int, entry_count: int) -> int:
    """Invert Table 1 for Round-Robin (and Hash, approximately):
    ``y = budget / h``.

    For Hash-y this slightly overshoots the budget on average since
    collisions make actual storage less than ``h·y``; the paper uses
    the same simple inversion (budget 200, h 100 → Hash-2).
    """
    _check_positive(storage_budget=storage_budget, entry_count=entry_count)
    return max(1, storage_budget // entry_count)


def storage_table(entry_count: int, server_count: int, x: int, y: int) -> Dict[str, float]:
    """Table 1 evaluated for all five strategies at once."""
    return {
        "full_replication": expected_storage(
            "full_replication", entry_count, server_count
        ),
        "fixed": expected_storage("fixed", entry_count, server_count, x=x),
        "random_server": expected_storage(
            "random_server", entry_count, server_count, x=x
        ),
        "round_robin": expected_storage("round_robin", entry_count, server_count, y=y),
        "hash": expected_storage("hash", entry_count, server_count, y=y),
    }
