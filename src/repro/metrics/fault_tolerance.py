"""Worst-case fault tolerance (paper §4.4 and Appendix A).

The metric: the maximum number of server failures, chosen
adversarially, that the placement survives while still covering at
least ``t`` distinct entries — one less than the *minimum* failures
that break a size-``t`` lookup.  Finding the true minimum is
SET-COVER-hard, so the paper uses a greedy heuristic: score each
server by ``X_S = Σ_{e ∈ V_S} 1/f_e`` (``f_e`` = how many operational
servers hold entry ``e``; rare entries make a server important), fail
the highest-scoring server, recompute, repeat while coverage allows.

For small instances :func:`exact_fault_tolerance` brute-forces the
true optimum, used in tests and the ablation bench to quantify the
heuristic's gap.  Note the direction of the approximation: the greedy
adversary may miss the true minimum breaking set, so
``greedy_fault_tolerance >= exact_fault_tolerance`` always — the
heuristic is an *optimistic* estimate of worst-case tolerance.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Set

from repro.core.exceptions import InvalidParameterError
from repro.strategies.base import PlacementStrategy


def _alive_masks(strategy: PlacementStrategy) -> Dict[int, int]:
    """Operational servers' stores as interned bitmasks (see
    :mod:`repro.core.interning`); coverage is a union + popcount."""
    key = strategy.key
    return {
        server.server_id: server.store(key).mask
        for server in strategy.cluster.servers
        if server.alive
    }


def _mask_importance(masks: Dict[int, int]) -> Dict[int, float]:
    """``X_S = Σ 1/f_e`` computed over bitmasks.

    Same quantity as :func:`server_importance`, but replica counts come
    from bit iteration and each server's sum runs in ascending entry
    index — a fixed order, unlike set iteration, so the scores are
    reproducible across hash seeds.
    """
    replica_counts: Dict[int, int] = {}
    for mask in masks.values():
        while mask:
            low = mask & -mask
            index = low.bit_length() - 1
            replica_counts[index] = replica_counts.get(index, 0) + 1
            mask &= mask - 1
    importance: Dict[int, float] = {}
    for server_id, mask in masks.items():
        total = 0.0
        while mask:
            low = mask & -mask
            total += 1.0 / replica_counts[low.bit_length() - 1]
            mask &= mask - 1
        importance[server_id] = total
    return importance


def server_importance(placement: Dict[int, Set]) -> Dict[int, float]:
    """Appendix A step 1: ``X_S = Σ 1/f_e`` over each server's entries.

    ``placement`` maps server id → set of entries, covering only the
    servers still operational.  A server holding an entry nobody else
    has contributes 1.0 for it; an entry on every server contributes
    only ``1/n``.
    """
    replica_counts: Dict[object, int] = {}
    for entries in placement.values():
        for entry in entries:
            replica_counts[entry] = replica_counts.get(entry, 0) + 1
    return {
        server_id: sum(1.0 / replica_counts[entry] for entry in entries)
        for server_id, entries in placement.items()
    }


def greedy_fault_tolerance(
    strategy: PlacementStrategy,
    target: int,
    return_order: bool = False,
):
    """Appendix A's greedy heuristic for tolerable failures.

    Repeatedly fails the most-important operational server while the
    *remaining* servers still cover at least ``target`` entries.
    Returns the number of servers failed (and, optionally, the failure
    order).  The cluster itself is never mutated — the heuristic works
    on a copy of the placement.

    Ties on importance break toward the lowest server id, for
    determinism.
    """
    if target < 0:
        raise InvalidParameterError(f"target must be >= 0, got {target}")
    masks = _alive_masks(strategy)
    failed_order: List[int] = []
    while masks:
        importance = _mask_importance(masks)
        victim = max(importance, key=lambda sid: (importance[sid], -sid))
        survivors_cover = 0
        for server_id, mask in masks.items():
            if server_id != victim:
                survivors_cover |= mask
        if survivors_cover.bit_count() < target:
            break
        del masks[victim]
        failed_order.append(victim)
    tolerated = len(failed_order)
    # Never report "all n can fail": with zero operational servers no
    # lookup can be answered at all, whatever the target.
    if tolerated == strategy.cluster.size:
        tolerated -= 1
        failed_order = failed_order[:-1]
    if return_order:
        return tolerated, failed_order
    return tolerated


def exact_fault_tolerance(strategy: PlacementStrategy, target: int) -> int:
    """Brute-force the true worst-case tolerable failures.

    Checks all failure subsets in increasing size; the answer is
    ``k - 1`` where ``k`` is the smallest subset whose removal drops
    coverage below ``target``.  Exponential in ``n`` — for tests and
    ablations on small clusters only.
    """
    if target < 0:
        raise InvalidParameterError(f"target must be >= 0, got {target}")
    masks = _alive_masks(strategy)
    server_ids = sorted(masks)
    n = len(server_ids)
    for failures in range(1, n + 1):
        for failed in combinations(server_ids, failures):
            failed_set = set(failed)
            cover = 0
            for server_id in server_ids:
                if server_id not in failed_set:
                    cover |= masks[server_id]
            if cover.bit_count() < target:
                return failures - 1
    return n - 1
