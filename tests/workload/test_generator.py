"""Unit tests for the steady-state workload generator (§6.1)."""

import random
import statistics

import pytest

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.simulation.events import AddEvent, DeleteEvent
from repro.workload.generator import SteadyStateWorkload
from repro.workload.lifetimes import FixedLifetime


class TestTraceShape:
    def test_exact_update_count(self):
        workload = SteadyStateWorkload(100, rng=random.Random(1))
        assert workload.generate(5000).update_count == 5000

    def test_initial_population_size(self):
        workload = SteadyStateWorkload(50, rng=random.Random(2))
        assert len(workload.generate(100).initial_entries) == 50

    def test_events_sorted_by_time(self):
        trace = SteadyStateWorkload(100, rng=random.Random(3)).generate(2000)
        times = [e.time for e in trace.events]
        assert times == sorted(times)

    def test_adds_and_deletes_roughly_balanced(self):
        trace = SteadyStateWorkload(100, rng=random.Random(4)).generate(4000)
        assert abs(len(trace.adds()) - len(trace.deletes())) < 400

    def test_every_delete_has_a_placement_or_add(self):
        trace = SteadyStateWorkload(100, rng=random.Random(5)).generate(3000)
        known = {e.entry_id for e in trace.initial_entries}
        for event in trace.events:
            if isinstance(event, AddEvent):
                known.add(event.entry.entry_id)
            else:
                assert event.entry.entry_id in known

    def test_no_duplicate_adds(self):
        trace = SteadyStateWorkload(100, rng=random.Random(6)).generate(3000)
        added = [e.entry.entry_id for e in trace.adds()]
        assert len(added) == len(set(added))

    def test_zero_updates(self):
        trace = SteadyStateWorkload(10, rng=random.Random(7)).generate(0)
        assert trace.update_count == 0

    def test_negative_updates_rejected(self):
        with pytest.raises(InvalidParameterError):
            SteadyStateWorkload(10, rng=random.Random(1)).generate(-1)


class TestSteadyState:
    def test_population_stays_near_target(self):
        """Little's law: the live population hovers around h."""
        workload = SteadyStateWorkload(100, rng=random.Random(8))
        trace = workload.generate(6000)
        live = {e.entry_id for e in trace.initial_entries}
        sizes = []
        for event in trace.events:
            if isinstance(event, AddEvent):
                live.add(event.entry.entry_id)
            else:
                live.discard(event.entry.entry_id)
            sizes.append(len(live))
        # Ignore warm-up; steady state should average near 100.
        steady = sizes[len(sizes) // 3:]
        assert abs(statistics.mean(steady) - 100) < 20

    def test_deterministic_lifetime_turnover(self):
        # With constant lifetime L = gap * h, the population is an
        # exact conveyor: each initial delete at time L, etc.
        workload = SteadyStateWorkload(
            10, arrival_gap=10.0, lifetime=FixedLifetime(100.0),
            rng=random.Random(9),
        )
        trace = workload.generate(200)
        initial_deletes = [
            e for e in trace.events
            if isinstance(e, DeleteEvent) and e.entry.entry_id.startswith("v")
        ]
        assert all(e.time == pytest.approx(100.0) for e in initial_deletes)

    def test_seeded_reproducibility(self):
        a = SteadyStateWorkload(50, rng=random.Random(10)).generate(500)
        b = SteadyStateWorkload(50, rng=random.Random(10)).generate(500)
        assert [(type(x).__name__, x.time, x.entry.entry_id) for x in a.events] == [
            (type(x).__name__, x.time, x.entry.entry_id) for x in b.events
        ]
