"""Hot-key reply cache: packed lookup replies, epoch-invalidated.

Production lookup traffic is Zipf-shaped: a handful of hot keys absorb
most requests, and the service re-runs the same deterministic
per-server answer — and re-encodes the same reply bytes — for every
one of them.  :class:`ReplyCache` short-circuits that path: it is an
LRU keyed by ``(codec, opcode, scheme key, server id, options
fingerprint)`` whose values are the *fully materialised* reply
payloads — a :class:`~repro.net.codec.Prepacked` splice value on the
binary path (so a hit costs one memcpy when the frame is packed) or
the already-JSON-encoded value object on the JSON path (so a hit skips
``encode_value`` entirely).

Soundness comes from two rules enforced by the service, not here:

1. **Only deterministic replies are cached.**  A per-server lookup
   answer consumes the cluster RNG only when ``0 < target < |store|``
   (:meth:`EntryStore.sample <repro.cluster.server.EntryStore.sample>`
   short-circuits to the full local list otherwise).  The service only
   caches the RNG-free case, so a cache-enabled service draws exactly
   the same RNG stream as a cache-disabled one and every reply —
   cached or not — is byte-identical between the two.
2. **Mutations invalidate before they answer.**  The service keeps a
   per-scheme mutation epoch; every add/delete/place bumps it (and
   eagerly drops that scheme's entries here) *before* the mutating
   reply is sent.  Cached entries are stamped with the epoch they were
   filled under and :meth:`get` refuses a stale stamp, so a reader can
   never observe a pre-mutation answer after the mutation's reply.

The counters (hits / misses / evictions / invalidations) are plain
ints so the hot path stays cheap; :meth:`publish` mirrors them into a
:class:`~repro.obs.metrics.MetricsRegistry` with the same idempotent
``set_to`` ledger convention :class:`~repro.cluster.network
.MessageStats` uses, and :meth:`snapshot` returns them for the
``info.capabilities`` wire surface.

:class:`SharedReplyCache` is the cross-process sibling for the worker
fleet: a fixed-slot hash table over one
``multiprocessing.shared_memory`` segment, so every reader worker
shares one hot set (a respawned reader is warm the moment it maps the
segment).  Its soundness story is different from the LRU's eager
invalidation: entries are stamped with the **writer-bus epoch** of the
scheme's last applied delta (globally monotonic, never reused), and
:meth:`SharedReplyCache.get` only returns a body whose stamp equals
the reading process's own bus-derived epoch for that scheme — a stamp
match proves the filling process and the reading process had applied
exactly the same delta prefix for the scheme, hence byte-identical
stores.  Readers are lock-free (per-slot seqlocks catch torn reads);
fills serialize on one fork-inherited lock acquired *non-blocking* —
a contended (or crashed-holder) lock skips the fill, because a cache
fill is never worth stalling a reply for, and a SIGKILLed worker
mid-fill must not wedge the fleet.
"""

from __future__ import annotations

import struct
import zlib
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.exceptions import InvalidParameterError

#: Default per-process capacity; small enough that a full cache of
#: ~kB replies stays in the tens of MB, large enough to cover a hot
#: set of (scheme x server x target) combinations many times over.
DEFAULT_CAPACITY = 1024


class ReplyCache:
    """A size-bounded LRU of packed lookup replies with epoch stamps.

    Parameters
    ----------
    capacity:
        Maximum resident entries; the least-recently-used entry is
        evicted on overflow.  Must be positive (a disabled cache is
        represented by *no* cache, not a zero-capacity one).
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "invalidations", "_entries")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: key -> (epoch stamp, packed payload); insertion order is
        #: recency order (MRU at the end).
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, epoch: int) -> Optional[Any]:
        """The payload cached under ``key`` at ``epoch``, or None.

        An entry stamped with a different epoch is dropped on sight —
        the eager :meth:`invalidate` already counted its demise when
        the mutation ran, so a stale hit here only counts as a miss.
        """
        slot = self._entries.get(key)
        if slot is None:
            self.misses += 1
            return None
        stamped, payload = slot
        if stamped != epoch:
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key: Hashable, epoch: int, payload: Any) -> None:
        """Remember ``payload`` for ``key`` as of ``epoch`` (MRU)."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = (epoch, payload)
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, scheme_key: str) -> int:
        """Drop every cached reply for ``scheme_key``; returns the count.

        Cache keys carry the scheme key at index 2 (see the service's
        ``_cache_slot``); anything else shaped differently is left
        alone.  Called by the service on every mutation, *before* the
        mutating reply is sent.
        """
        doomed = [
            key
            for key in self._entries
            if isinstance(key, tuple) and len(key) > 2 and key[2] == scheme_key
        ]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> int:
        """Drop everything (e.g. after a full store resync)."""
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += dropped
        return dropped

    @property
    def hit_rate(self) -> float:
        """Computed hits / (hits + misses); 0.0 before any traffic."""
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def export_hot(
        self, limit: int = 256
    ) -> List[Tuple[Hashable, int, Any]]:
        """The MRU ``(key, epoch stamp, payload)`` rows, hottest first.

        Feeds the worker fleet's warm handoff: the writer ships its
        current hot set to a (re)spawning reader so the reader's first
        hot-key request is already a hit.  Stamps are this process's
        epochs — the importer re-stamps under its own.
        """
        rows: List[Tuple[Hashable, int, Any]] = []
        for key in reversed(self._entries):
            if len(rows) >= limit:
                break
            epoch, payload = self._entries[key]
            rows.append((key, epoch, payload))
        return rows

    def snapshot(self) -> Dict[str, Any]:
        """The counters + occupancy, as published in ``info.capabilities``."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 6),
        }

    def publish(self, metrics: Any, prefix: str = "net.cache") -> None:
        """Mirror the counters into ``metrics`` (idempotent ``set_to``)."""
        metrics.counter(f"{prefix}.hits").set_to(self.hits)
        metrics.counter(f"{prefix}.misses").set_to(self.misses)
        metrics.counter(f"{prefix}.evictions").set_to(self.evictions)
        metrics.counter(f"{prefix}.invalidations").set_to(self.invalidations)
        metrics.gauge(f"{prefix}.size").set(len(self._entries))
        metrics.gauge(f"{prefix}.hit_rate").set(self.hit_rate)


# --------------------------------------------------------------------------
# The cross-process shared cache (worker fleets)
# --------------------------------------------------------------------------

#: Segment header: magic, slot count, slot payload size.
_SHM_HEADER = struct.Struct(">III")
_SHM_MAGIC = 0x52394343  # "R9CC"
#: Per-slot header: seqlock word (odd = write in progress), epoch
#: stamp, key length, body length.  Key bytes then body bytes follow.
_SLOT_HEADER = struct.Struct(">IQHI")
_SLOT_SEQ = struct.Struct(">I")
#: Linear probes per key before a lookup gives up / a fill clobbers.
_PROBES = 8

#: Defaults sized so a full segment stays a few MB: 1024 slots of 8 KiB
#: hold the hot (scheme x server x target) set many times over.
DEFAULT_SHARED_SLOTS = 1024
DEFAULT_SLOT_SIZE = 8192


class SharedReplyCache:
    """Packed reply bodies in one shared-memory segment, epoch-stamped.

    One writer-at-a-time hash table with linear probing and per-slot
    seqlocks, designed for the fork-based worker fleet:

    - The segment and the writers' lock are created **before** the
      fleet forks; every worker (including later respawns, which fork
      from the same supervisor) inherits the same mapping and
      semaphore.
    - :meth:`get` never locks.  It snapshots a slot under its seqlock
      (even word, re-read after the copy) and accepts the body only if
      the key matches and the stamp equals the caller's epoch.
    - :meth:`put` serializes on ``lock`` with a *non-blocking*
      acquire: contention — or the stuck semaphore a SIGKILLed holder
      leaves behind — skips the fill rather than stalling a reply.
      The write itself flips the slot's seq word odd, copies, then
      flips it even, so a killed mid-write slot parks at an odd word
      that every reader (and a later rewrite) handles.

    Bodies are the fully packed binary reply values (what
    :class:`~repro.net.codec.Prepacked` splices); oversized entries
    are simply not cached.  Counters are per-process (each worker
    reports its own view in ``info.capabilities``).
    """

    __slots__ = (
        "slots",
        "slot_size",
        "hits",
        "misses",
        "puts",
        "skips",
        "_shm",
        "_lock",
        "_owner",
    )

    def __init__(
        self,
        slots: int = DEFAULT_SHARED_SLOTS,
        slot_size: int = DEFAULT_SLOT_SIZE,
        *,
        name: Optional[str] = None,
    ) -> None:
        if slots < 1 or slot_size <= _SLOT_HEADER.size:
            raise InvalidParameterError(
                f"shared cache wants slots >= 1 and slot_size > "
                f"{_SLOT_HEADER.size}, got {slots}/{slot_size}"
            )
        import multiprocessing
        from multiprocessing import shared_memory

        self.slots = slots
        self.slot_size = slot_size
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.skips = 0
        size = _SHM_HEADER.size + slots * slot_size
        self._shm = shared_memory.SharedMemory(
            create=True, size=size, name=name
        )
        # A fresh segment is zero-filled (POSIX shm), so every slot
        # starts empty: seq 0 (even), key_len 0 (no key matches).
        _SHM_HEADER.pack_into(self._shm.buf, 0, _SHM_MAGIC, slots, slot_size)
        self._lock = multiprocessing.get_context("fork").Lock()
        self._owner = True

    # -- key / slot helpers --------------------------------------------------

    @staticmethod
    def _key_bytes(key: Any) -> bytes:
        """A flat byte form of the service's cache-slot tuple.

        ``(codec, op, scheme, server, target)`` joined with ``|`` —
        injective for the service's keyspace (codec and op come from
        fixed vocabularies, server/target are ints, and scheme names
        never contain ``|``).
        """
        if isinstance(key, tuple):
            return "|".join(str(part) for part in key).encode("utf-8")
        return str(key).encode("utf-8")

    def _probe_bases(self, key_bytes: bytes) -> List[int]:
        start = zlib.crc32(key_bytes) % self.slots
        header = _SHM_HEADER.size
        size = self.slot_size
        return [
            header + ((start + i) % self.slots) * size
            for i in range(min(_PROBES, self.slots))
        ]

    # -- the data path -------------------------------------------------------

    def get(self, key: Any, epoch: int) -> Optional[bytes]:
        """The packed body cached under ``key`` at ``epoch``, or None.

        Lock-free: a torn or in-progress slot simply misses.  The
        returned bytes are a copy — the slot may be rewritten the
        moment this returns.
        """
        key_bytes = self._key_bytes(key)
        key_len = len(key_bytes)
        buf = self._shm.buf
        for base in self._probe_bases(key_bytes):
            (seq1,) = _SLOT_SEQ.unpack_from(buf, base)
            if seq1 & 1:
                continue  # write in progress (or died mid-write)
            _seq, stamped, stored_key_len, body_len = _SLOT_HEADER.unpack_from(
                buf, base
            )
            if stored_key_len != key_len:
                continue
            data = base + _SLOT_HEADER.size
            if bytes(buf[data : data + key_len]) != key_bytes:
                continue
            body = bytes(buf[data + key_len : data + key_len + body_len])
            (seq2,) = _SLOT_SEQ.unpack_from(buf, base)
            if seq2 != seq1:
                continue  # overwritten while we copied: torn snapshot
            if stamped != epoch:
                continue  # a different delta prefix filled this
            self.hits += 1
            return body
        self.misses += 1
        return None

    def put(self, key: Any, epoch: int, body: bytes) -> bool:
        """Publish ``body`` for ``key`` as of ``epoch``; False if skipped.

        Skips (rather than blocks) when another writer holds the fill
        lock, and when the entry cannot fit a slot.
        """
        key_bytes = self._key_bytes(key)
        payload = len(key_bytes) + len(body)
        if _SLOT_HEADER.size + payload > self.slot_size:
            self.skips += 1
            return False
        if not self._lock.acquire(block=False):
            self.skips += 1
            return False
        try:
            buf = self._shm.buf
            bases = self._probe_bases(key_bytes)
            target = None
            for base in bases:
                seq, _stamp, stored_key_len, _blen = _SLOT_HEADER.unpack_from(
                    buf, base
                )
                if seq & 1 or stored_key_len == 0:
                    # Dead (killed mid-write) or empty: reclaimable.
                    if target is None:
                        target = base
                    continue
                data = base + _SLOT_HEADER.size
                if (
                    stored_key_len == len(key_bytes)
                    and bytes(buf[data : data + stored_key_len]) == key_bytes
                ):
                    target = base  # overwrite our own slot in place
                    break
            if target is None:
                # All probes hold live foreign keys: deterministic
                # clobber keeps the table simple (it is only a cache).
                target = bases[zlib.crc32(body) % len(bases)]
            (seq,) = _SLOT_SEQ.unpack_from(buf, target)
            writing = seq + 1 if seq & 1 == 0 else seq  # ensure odd
            _SLOT_SEQ.pack_into(buf, target, writing)
            _SLOT_HEADER.pack_into(
                buf, target, writing, epoch, len(key_bytes), len(body)
            )
            data = target + _SLOT_HEADER.size
            buf[data : data + len(key_bytes)] = key_bytes
            buf[data + len(key_bytes) : data + payload] = body
            _SLOT_SEQ.pack_into(buf, target, writing + 1)
            self.puts += 1
            return True
        finally:
            self._lock.release()

    def clear(self, timeout: float = 1.0) -> bool:
        """Zero every slot (tests/benchmarks); False if the lock is stuck."""
        if not self._lock.acquire(timeout=timeout):
            return False
        try:
            buf = self._shm.buf
            empty = bytes(self.slot_size)
            for index in range(self.slots):
                base = _SHM_HEADER.size + index * self.slot_size
                buf[base : base + self.slot_size] = empty
            return True
        finally:
            self._lock.release()

    # -- bookkeeping ---------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    @property
    def name(self) -> str:
        """The segment name (diagnostics; workers inherit by fork)."""
        return self._shm.name

    def snapshot(self) -> Dict[str, Any]:
        """This process's counters, for ``info.capabilities.cache.shared``."""
        return {
            "slots": self.slots,
            "slot_size": self.slot_size,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "skips": self.skips,
            "hit_rate": round(self.hit_rate, 6),
        }

    def publish(self, metrics: Any, prefix: str = "net.cache.shared") -> None:
        metrics.counter(f"{prefix}.hits").set_to(self.hits)
        metrics.counter(f"{prefix}.misses").set_to(self.misses)
        metrics.counter(f"{prefix}.puts").set_to(self.puts)
        metrics.counter(f"{prefix}.skips").set_to(self.skips)
        metrics.gauge(f"{prefix}.hit_rate").set(self.hit_rate)

    def close(self, *, unlink: bool = False) -> None:
        """Unmap the segment; ``unlink=True`` destroys it (creator only)."""
        try:
            self._shm.close()
        finally:
            if unlink and self._owner:
                try:
                    self._shm.unlink()
                except FileNotFoundError:
                    pass


__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_SHARED_SLOTS",
    "DEFAULT_SLOT_SIZE",
    "ReplyCache",
    "SharedReplyCache",
]
