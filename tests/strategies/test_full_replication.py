"""Unit tests for the full replication strategy (§3.1, §5.1)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.strategies.full_replication import FullReplication


@pytest.fixture
def strategy(cluster):
    s = FullReplication(cluster)
    s.place(make_entries(50))
    return s


class TestPlacement:
    def test_every_server_has_everything(self, strategy):
        for entries in strategy.placement().values():
            assert entries == set(make_entries(50))

    def test_storage_cost_h_times_n(self, strategy):
        assert strategy.storage_cost() == 50 * 10

    def test_complete_coverage(self, strategy):
        assert strategy.coverage() == 50

    def test_place_message_cost_one_plus_broadcast(self, cluster):
        strategy = FullReplication(cluster)
        result = strategy.place(make_entries(5))
        assert result.messages == 1 + 10
        assert result.broadcast


class TestLookups:
    def test_single_server_contacted(self, strategy):
        for target in (1, 10, 50):
            assert strategy.partial_lookup(target).lookup_cost == 1

    def test_exactly_target_entries(self, strategy):
        assert len(strategy.partial_lookup(7)) == 7

    def test_target_equal_h_served_by_one_server(self, strategy):
        result = strategy.partial_lookup(50)
        assert result.success and result.lookup_cost == 1

    def test_target_above_h_fails_gracefully(self, strategy):
        result = strategy.partial_lookup(60)
        assert not result.success
        assert len(result) == 50

    def test_load_spreads_across_servers(self, strategy):
        seen = set()
        for _ in range(200):
            seen.update(strategy.partial_lookup(1).servers_contacted)
        assert len(seen) >= 8  # nearly all servers get traffic

    def test_tolerates_n_minus_1_failures(self, strategy):
        strategy.cluster.fail_many(range(9))
        result = strategy.partial_lookup(50)
        assert result.success and result.servers_contacted == (9,)


class TestUpdates:
    def test_add_reaches_all_servers(self, strategy):
        strategy.add(Entry("new"))
        assert all(
            Entry("new") in entries for entries in strategy.placement().values()
        )

    def test_add_costs_broadcast(self, strategy):
        result = strategy.add(Entry("new"))
        assert result.messages == 1 + 10
        assert result.broadcast

    def test_delete_removes_everywhere(self, strategy):
        strategy.delete(Entry("v1"))
        assert all(
            Entry("v1") not in entries for entries in strategy.placement().values()
        )

    def test_delete_costs_broadcast(self, strategy):
        result = strategy.delete(Entry("v1"))
        assert result.messages == 1 + 10

    def test_delete_of_absent_entry_still_broadcasts(self, strategy):
        # Full replication has no selective-broadcast optimization.
        result = strategy.delete(Entry("ghost"))
        assert result.messages == 1 + 10

    def test_storage_grows_with_entries(self, strategy):
        before = strategy.storage_cost()
        strategy.add(Entry("new"))
        assert strategy.storage_cost() == before + 10
