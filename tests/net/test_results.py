"""Typed lookup results: statuses, exit codes, and migration shims."""

import pytest

from repro.core.entry import make_entries
from repro.core.result import LookupResult as CoreLookupResult
from repro.net.results import (
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    LookupReport,
    LookupResult,
)


def result(found, target, **kwargs):
    return LookupResult(
        key="round_robin",
        entries=tuple(make_entries(found)),
        target=target,
        **kwargs,
    )


class TestStatusTrichotomy:
    def test_ok(self):
        full = result(8, 8)
        assert full.status == STATUS_OK
        assert full.success and not full.degraded and not full.failed
        assert full.exit_code == 0

    def test_overfull_is_ok(self):
        assert result(10, 8).status == STATUS_OK

    def test_degraded(self):
        short = result(3, 8)
        assert short.status == STATUS_DEGRADED
        assert short.degraded and not short.success and not short.failed
        assert short.exit_code == 3

    def test_failed(self):
        empty = result(0, 8)
        assert empty.status == STATUS_FAILED
        assert empty.failed and not empty.success
        assert empty.exit_code == 4

    def test_zero_target_is_ok(self):
        # An empty answer to a zero-entry ask met its (vacuous) target.
        assert result(0, 0).status == STATUS_OK
        assert result(0, 0).exit_code == 0


class TestAttribution:
    def test_from_core_copies_observations(self):
        core = CoreLookupResult(
            entries=tuple(make_entries(4)),
            target=4,
            servers_contacted=(2, 5),
            failed_contacts=(1,),
            messages=3,
            retries=1,
            backoff=0.25,
        )
        wrapped = LookupResult.from_core(
            "hash", core, codec="binary", home=("s1",), routed=("s1",)
        )
        assert wrapped.entries == core.entries
        assert wrapped.lookup_cost == 2
        assert wrapped.codec == "binary"
        assert wrapped.core() == core

    def test_failover_flag(self):
        primary_only = result(8, 8, home=("s0", "s1"), routed=("s0",),
                              contacts=(("s0", 3),))
        assert not primary_only.failover
        rerouted = result(8, 8, home=("s0", "s1"), routed=("s1",),
                          contacts=(("s1", 3),))
        assert rerouted.failover
        unsharded = result(8, 8)
        assert not unsharded.failover

    def test_container_conveniences(self):
        found = result(3, 8)
        assert len(found) == 3
        assert [e.entry_id for e in found] == ["v1", "v2", "v3"]

    def test_as_row_is_sorted_and_stable(self):
        row = result(3, 8, codec="binary").as_row()
        assert row["entries"] == ["v1", "v2", "v3"]
        assert row["found"] == 3 and row["target"] == 8
        assert row["status"] == STATUS_DEGRADED and row["degraded"]
        assert row["codec"] == "binary"
        assert "home" not in row  # sharded fields only when sharded
        sharded = result(8, 8, home=("s0",), routed=("s0",)).as_row()
        assert sharded["home"] == ["s0"] and sharded["failover"] is False


class TestRemovedShims:
    def test_dict_indexing_raises_with_hint(self):
        full = result(8, 8)
        with pytest.raises(TypeError, match="as_row"):
            full["found"]

    def test_result_attribute_raises_with_hint(self):
        full = result(8, 8)
        with pytest.raises(AttributeError, match="core\\(\\)"):
            full.result
        # core() is the supported replacement
        inner = full.core()
        assert isinstance(inner, CoreLookupResult)
        assert inner.entries == full.entries

    def test_other_missing_attributes_raise_plainly(self):
        with pytest.raises(AttributeError, match="no attribute"):
            result(8, 8).no_such_field

    def test_frozen(self):
        with pytest.raises(AttributeError):
            result(8, 8).target = 9


class TestLookupReport:
    def test_aggregates(self):
        report = LookupReport(results=(result(8, 8), result(3, 8), result(0, 8)))
        assert len(report) == 3
        assert report[1].degraded
        assert [r.exit_code for r in report] == [0, 3, 4]
        assert not report.all_success
        # ``degraded`` is "short of target", so a failed (empty)
        # lookup counts as degraded too; ``failed`` is the subset.
        assert report.degraded_count == 2
        assert report.failed_count == 1

    def test_exit_code_worst_wins(self):
        assert LookupReport(results=(result(8, 8),)).exit_code == 0
        assert LookupReport(results=(result(8, 8), result(3, 8))).exit_code == 3
        assert LookupReport(
            results=(result(3, 8), result(0, 8))
        ).exit_code == 4
        assert LookupReport(results=()).exit_code == 0

    def test_rows(self):
        rows = LookupReport(results=(result(8, 8), result(0, 8))).rows()
        assert [row["status"] for row in rows] == [STATUS_OK, STATUS_FAILED]
