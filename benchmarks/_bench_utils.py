"""Shared helpers for the benchmark suite."""


def render_and_print(result):
    """Print an experiment result table beneath the benchmark output."""
    from repro.experiments.report import render_experiment

    print()
    print(render_experiment(result))
    return result
