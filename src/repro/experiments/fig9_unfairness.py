"""Figure 9: unfairness vs total storage (static placements).

Paper setup: 100 entries, 10 servers, target answer size 35, total
storage swept 100..1000, 10000 lookups per instance, averaged over
instances.  Full replication and Round-y are exactly fair (zero by
construction) and Fixed-x is "an order of magnitude worse" than
RandomServer-x, so the figure plots RandomServer-x and Hash-y; we add
the Fixed-x closed form as a reference column.

Expected shape: RandomServer-x decreases in two phases — a rapid
coverage-bound decay, then a slow linear tail as single-server lookups
homogenize; Hash-y *increases* at first (more storage → fewer servers
per lookup → the hash placement's inherent bias shows through) and
then declines only slightly.

Scale note: our absolute values follow equation (1) as printed, which
(together with the paper's own §4.5 coverage-bound argument and the
Figure 13 axis) implies values several times larger than Figure 9's
printed axis; see EXPERIMENTS.md for the full reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from repro.analysis.formulas import solve_x_from_budget, solve_y_from_budget
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs_multi
from repro.metrics.unfairness import (
    estimate_unfairness,
    exact_unfairness_uniform_subset,
)
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX


@dataclass(frozen=True)
class Fig9Config:
    entry_count: int = 100
    server_count: int = 10
    target: int = 35
    budgets: Tuple[int, ...] = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
    #: Instances per data point.
    runs: int = 8
    #: Lookups per instance (paper: 10000).
    lookups_per_instance: int = 2000
    seed: int = 9


def measure_point(config: Fig9Config, budget: int, seed: int) -> Dict[str, float]:
    """One instance of each scheme at ``budget``; its unfairness."""
    h, n = config.entry_count, config.server_count
    x = solve_x_from_budget(budget, n)
    y = solve_y_from_budget(budget, h)
    cluster = Cluster(n, seed=seed)
    entries = make_entries(h)
    samples: Dict[str, float] = {}
    for label, strategy in (
        ("random_server", RandomServerX(cluster, x=x, key="rs")),
        ("hash", HashY(cluster, y=y, key="h")),
    ):
        strategy.place(entries)
        estimate = estimate_unfairness(
            strategy, config.target, entries, config.lookups_per_instance
        )
        samples[label] = estimate.unfairness
    return samples


def run(
    config: Fig9Config = Fig9Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate Figure 9's unfairness-vs-storage series."""
    result = ExperimentResult(
        name="Figure 9: unfairness vs total storage",
        headers=["budget", "random_server", "hash", "fixed_exact"],
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "t": config.target,
            "runs": config.runs,
            "lookups": config.lookups_per_instance,
        },
    )
    with make_executor(jobs) as executor:
        for budget in config.budgets:
            averaged = average_runs_multi(
                partial(measure_point, config, budget),
                master_seed=config.seed + budget,
                runs=config.runs,
                executor=executor,
            )
            x = solve_x_from_budget(budget, config.server_count)
            result.rows.append(
                {
                    "budget": budget,
                    "random_server": round(averaged["random_server"].mean, 4),
                    "hash": round(averaged["hash"].mean, 4),
                    "fixed_exact": round(
                        exact_unfairness_uniform_subset(
                            min(x, config.entry_count),
                            config.entry_count,
                            config.target,
                        ),
                        4,
                    ),
                }
            )
    return result
