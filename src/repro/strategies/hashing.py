"""Hash-y: place each entry at ``y`` hash-designated servers (§3.5, §5.5).

Entry ``v`` lives on servers ``f_1(v) .. f_y(v)`` for ``y`` hash
functions; collisions between functions mean some entries get fewer
than ``y`` copies, so expected storage is ``h·n·(1 − (1 − 1/n)^y)``
(Table 1) and per-server loads are uneven — a client cannot predict how
many servers a lookup needs (unlike Round-Robin).  The payoff comes
with churn: the hash functions *pinpoint* the servers affected by an
update, so adds and deletes cost ``1 + y`` point-to-point messages with
no broadcast and no counter bottleneck (§5.5, §6.4), which is Hash-y's
winning regime in Figure 14.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.entry import Entry
from repro.core.result import LookupResult
from repro.cluster.cluster import Cluster
from repro.cluster.messages import (
    AddRequest,
    DeleteRequest,
    Message,
    PlaceRequest,
    RemoveMessage,
    StoreMessage,
)
from repro.cluster.network import Network
from repro.cluster.server import Server
from repro.hashing.families import HashFamily
from repro.strategies.base import LookupProfile, PlacementStrategy, StrategyLogic


class _HashLogic(StrategyLogic):
    """Server behaviour for Hash-y.

    The initial server routes each update to the entry's hash targets
    point-to-point; the targets just store or remove locally.
    """

    def handle_message(self, server: Server, message: Message, network: Network) -> Any:
        store = server.store(self.key)
        if isinstance(message, PlaceRequest):
            return self._handle_place(message, network)
        if isinstance(message, AddRequest):
            self._route(message.entry, StoreMessage(message.entry), network)
            return True
        if isinstance(message, DeleteRequest):
            self._route(message.entry, RemoveMessage(message.entry), network)
            return True
        if isinstance(message, StoreMessage):
            return store.add(message.entry)
        if isinstance(message, RemoveMessage):
            return store.discard(message.entry)
        raise TypeError(f"Hash-y cannot handle {type(message).__name__}")

    def _route(self, entry: Entry, message: Message, network: Network) -> None:
        """Send ``message`` to the entry's distinct hash targets.

        Two functions mapping ``v`` to the same server store it once
        (the paper: "If two hash functions assign an entry to the same
        server, the entry is stored only once"), so one message per
        distinct target suffices — the "barring collisions" caveat in
        the paper's 1+y update cost.
        """
        for server_id in self.strategy.family.assign_distinct(entry):
            network.send(server_id, self.key, message)

    def _handle_place(self, message: PlaceRequest, network: Network) -> bool:
        """Hash every entry to its targets, honouring the storage budget.

        Budgeted placement applies the functions round-major (``f_1``
        over all entries, then ``f_2``, ...) and charges the budget
        only for copies actually stored, so that an underfunded
        placement keeps a one-copy *subset* of the entries — the
        Figure 6 convention, same as Round-Robin's.
        """
        strategy = self.strategy
        budget = strategy.max_total_storage
        if budget is None:
            for entry in message.entries:
                self._route(entry, StoreMessage(entry), network)
            return True
        placed = 0
        for hash_function in strategy.family:
            for entry in message.entries:
                if placed >= budget:
                    return True
                stored = network.send(
                    hash_function(entry), self.key, StoreMessage(entry)
                )
                if stored:
                    placed += 1
        return True


class HashY(PlacementStrategy):
    """Store each entry at the servers picked by ``y`` hash functions.

    Parameters
    ----------
    cluster:
        The server cluster.
    y:
        Number of hash functions (target copies per entry, before
        collisions).
    hash_seed:
        Seed for drawing the hash family; defaults to a fresh draw
        from the cluster RNG so seeded clusters stay reproducible
        while distinct instances get distinct families.
    max_total_storage:
        Optional total-copy budget for static coverage experiments
        (Figure 6); not for use with dynamic updates.

    >>> from repro.cluster import Cluster
    >>> from repro.core.entry import make_entries
    >>> strategy = HashY(Cluster(10, seed=7), y=2)
    >>> _ = strategy.place(make_entries(100))
    >>> 160 <= strategy.storage_cost() <= 200   # E ≈ 190 with collisions
    True
    """

    name = "hash"

    def __init__(
        self,
        cluster: Cluster,
        y: int,
        key: str = "k",
        hash_seed: Optional[int] = None,
        max_total_storage: Optional[int] = None,
    ) -> None:
        self.y = self._require_positive(y, "y")
        if hash_seed is None:
            hash_seed = cluster.rng.randrange(2**63)
        self.hash_seed = hash_seed
        self.family = HashFamily(count=y, buckets=cluster.size, seed=hash_seed)
        self.max_total_storage = max_total_storage
        super().__init__(cluster, key)

    @classmethod
    def from_budget(
        cls, cluster: Cluster, storage_budget: int, entry_count: int, key: str = "k"
    ) -> "HashY":
        """Size ``y`` from a storage budget: ``y = budget / h`` (Table 1)."""
        y = max(1, storage_budget // max(1, entry_count))
        return cls(cluster, y=y, key=key, max_total_storage=storage_budget)

    def _build_logic(self) -> StrategyLogic:
        return _HashLogic(self)

    def params(self) -> Dict[str, Any]:
        params: Dict[str, Any] = {"y": self.y, "hash_seed": self.hash_seed}
        if self.max_total_storage is not None:
            params["max_total_storage"] = self.max_total_storage
        return params

    def _do_place(self, entries: Tuple[Entry, ...]) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, PlaceRequest(entries))

    def _do_add(self, entry: Entry) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, AddRequest(entry))

    def _do_delete(self, entry: Entry) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, DeleteRequest(entry))

    def partial_lookup(self, target: int) -> LookupResult:
        # Per-server loads are uneven, so the client simply walks
        # servers in random order merging answers until satisfied.
        return self.client.lookup(self.key, target)

    def lookup_profile(self) -> LookupProfile:
        return LookupProfile(order="random")
