"""Unit tests for the RandomServer-x strategy (§3.3, §5.3)."""

import pytest

from repro.analysis.formulas import expected_coverage_random_server
from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.strategies.random_server import RandomServerX


@pytest.fixture
def strategy(cluster):
    s = RandomServerX(cluster, x=20)
    s.place(make_entries(100))
    return s


class TestPlacement:
    def test_each_server_stores_exactly_x(self, strategy):
        assert strategy.cluster.store_sizes("k") == [20] * 10

    def test_servers_store_different_subsets(self, strategy):
        placements = list(strategy.placement().values())
        assert any(p != placements[0] for p in placements[1:])

    def test_subsets_drawn_from_placed_entries(self, strategy):
        placed = set(make_entries(100))
        for entries in strategy.placement().values():
            assert entries <= placed

    def test_coverage_near_expectation(self):
        # Average over placements: E[coverage] = 100(1 - 0.8^10) ≈ 89.3.
        total = 0
        runs = 30
        for seed in range(runs):
            strategy = RandomServerX(Cluster(10, seed=seed), x=20)
            strategy.place(make_entries(100))
            total += strategy.coverage()
        expected = expected_coverage_random_server(100, 10, 20)
        assert abs(total / runs - expected) < 2.0

    def test_fewer_entries_than_x_keeps_all(self, cluster):
        strategy = RandomServerX(cluster, x=20)
        strategy.place(make_entries(8))
        assert strategy.cluster.store_sizes("k") == [8] * 10

    def test_subset_choice_is_uniform(self):
        # Each entry should land on a given server w.p. x/h = 0.2.
        hits = {f"v{i}": 0 for i in range(1, 11)}
        runs = 400
        for seed in range(runs):
            strategy = RandomServerX(Cluster(1, seed=seed), x=2)
            strategy.place(make_entries(10))
            for entry in strategy.cluster.server(0).store("k"):
                hits[entry.entry_id] += 1
        for count in hits.values():
            assert abs(count / runs - 0.2) < 0.07


class TestLookups:
    def test_small_target_single_server(self, strategy):
        assert strategy.partial_lookup(15).lookup_cost == 1

    def test_target_above_x_merges_servers(self, strategy):
        result = strategy.partial_lookup(35)
        assert result.success
        assert result.lookup_cost >= 2

    def test_can_exceed_x_unlike_fixed(self, strategy):
        result = strategy.partial_lookup(60)
        assert result.success

    def test_varied_answers_across_lookups(self, strategy):
        answers = {
            frozenset(e.entry_id for e in strategy.partial_lookup(5).entries)
            for _ in range(20)
        }
        assert len(answers) > 5


class TestReservoirAdds:
    def test_h_counter_initialized_by_place(self, strategy):
        for server in strategy.cluster.servers:
            assert server.state("k")["h"] == 100

    def test_add_increments_h_everywhere(self, strategy):
        strategy.add(Entry("new"))
        for server in strategy.cluster.servers:
            assert server.state("k")["h"] == 101

    def test_add_keeps_store_size_x(self, strategy):
        for i in range(30):
            strategy.add(Entry(f"new{i}"))
        assert strategy.cluster.store_sizes("k") == [20] * 10

    def test_add_below_capacity_always_stored(self, cluster):
        strategy = RandomServerX(cluster, x=20)
        strategy.place(make_entries(5))
        strategy.add(Entry("new"))
        assert all(
            Entry("new") in entries for entries in strategy.placement().values()
        )

    def test_add_costs_broadcast(self, strategy):
        result = strategy.add(Entry("new"))
        assert result.messages == 1 + 10

    def test_reservoir_acceptance_rate(self):
        # At h=101, x=20, a fresh add is kept w.p. ~20/101 per server.
        kept = 0
        runs = 300
        for seed in range(runs):
            strategy = RandomServerX(Cluster(1, seed=seed), x=20)
            strategy.place(make_entries(100))
            strategy.add(Entry("new"))
            if Entry("new") in strategy.cluster.server(0).store("k"):
                kept += 1
        assert abs(kept / runs - 20 / 101) < 0.07


class TestDeletes:
    def test_delete_decrements_h(self, strategy):
        strategy.delete(Entry("v1"))
        for server in strategy.cluster.servers:
            assert server.state("k")["h"] == 99

    def test_delete_uses_cushion_no_replacement(self, strategy):
        sizes_before = strategy.cluster.store_sizes("k")
        strategy.delete(Entry("v1"))
        sizes_after = strategy.cluster.store_sizes("k")
        # Sizes only shrink (by 1 on holders); nothing is refetched.
        assert all(a <= b for a, b in zip(sizes_after, sizes_before))
        assert Entry("v1") not in strategy.lookup_all()

    def test_delete_costs_broadcast(self, strategy):
        result = strategy.delete(Entry("v1"))
        assert result.messages == 1 + 10

    def test_h_never_negative(self, cluster):
        strategy = RandomServerX(cluster, x=5)
        strategy.place(make_entries(2))
        for entry in make_entries(2):
            strategy.delete(entry)
        strategy.delete(Entry("ghost"))
        for server in strategy.cluster.servers:
            assert server.state("k")["h"] >= 0
