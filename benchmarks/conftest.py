"""Benchmark suite configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows (run with ``-s`` to see them, or check EXPERIMENTS.md
for a recorded copy).  Statistical budgets are set so the whole suite
completes in a few minutes; pass the paper's run counts through the
experiment configs for full-fidelity numbers.

Opt-in trajectory export: ``--bench-json PATH`` writes per-benchmark
wall-clock times (plus any metrics tests record via the
``bench_json_record`` fixture) to a JSON artifact, so CI can keep a
``BENCH_results.json`` baseline for future PRs to compare against.
"""

import json
import os
import platform
import sys

import pytest

# Make _bench_utils importable regardless of how pytest inserts paths.
sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="write per-benchmark wall-clock results to PATH as JSON",
    )


def pytest_configure(config):
    if config.getoption("--bench-json"):
        config._bench_json_store = {"benchmarks": [], "metrics": {}}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    # ``call.duration`` is the benchmark's wall clock: pytest-benchmark
    # runs its calibrated rounds inside the test body.
    outcome = yield
    store = getattr(item.config, "_bench_json_store", None)
    if store is not None and call.when == "call":
        report = outcome.get_result()
        store["benchmarks"].append(
            {
                "test": report.nodeid,
                "outcome": report.outcome,
                "wall_clock_seconds": round(report.duration, 6),
            }
        )


@pytest.fixture
def bench_json_record(request):
    """Record a named metric into the ``--bench-json`` artifact.

    No-op when the option is off, so tests can call it unconditionally:

        bench_json_record("fig4_parallel_speedup", 3.1)
    """
    store = getattr(request.config, "_bench_json_store", None)

    def record(name, value):
        if store is not None:
            store["metrics"][name] = value

    return record


def pytest_sessionfinish(session):
    store = getattr(session.config, "_bench_json_store", None)
    if store is None:
        return
    path = session.config.getoption("--bench-json")
    artifact = {
        "schema": 1,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "benchmarks": store["benchmarks"],
        "metrics": store["metrics"],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
