"""Round-Robin-y: deal entries to servers round-robin (§3.4, §5.4).

Entry ``v_i`` (sequence position ``i``) is stored on servers
``i .. i+y-1 (mod n)``, so every entry has exactly ``y`` copies, every
server holds ``≈ y·h/n`` entries, and servers ``s`` and ``s+y`` share
nothing — which is why a client walking ``s, s+y, s+2y, ...`` gains
``h/n`` *new* entries per extra contact and Round-Robin has the lowest
lookup cost of the partial schemes (Figure 4) and zero unfairness.

Dynamic updates maintain the dense round-robin sequence with the
head/tail counter protocol of Figures 10–11: server 1 (id 0 here)
hosts a ``head`` counter (the oldest live sequence position) and a
``tail`` counter (the next free position).  An add appends at ``tail``;
a delete broadcasts ``remove(v, head)`` and the entry at position
``head`` *migrates* into the hole the deletion leaves, keeping the
sequence dense.  The counter host is a serialization bottleneck and
every delete still needs a broadcast to find ``v`` — the paper's §6.3
argument for preferring Hash-y under high update rates.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError, NoOperationalServerError
from repro.core.result import LookupResult
from repro.cluster.client import Stride
from repro.cluster.cluster import Cluster
from repro.cluster.messages import (
    AddRequest,
    DeleteRequest,
    Message,
    MigrateRequest,
    PlaceRequest,
    QueryCounters,
    RemoveReplacement,
    RemoveWithHead,
    SetCounters,
    StorePositioned,
)
from repro.cluster import is_undelivered
from repro.cluster.network import Network
from repro.cluster.server import Server
from repro.strategies.base import LookupProfile, PlacementStrategy, StrategyLogic

#: Server id that hosts the head/tail counters (the paper's "server 1").
COUNTER_HOST = 0


class _RoundRobinLogic(StrategyLogic):
    """Server behaviour for Round-Robin-y.

    Per-server per-key state:

    - ``positions``: entry id → sequence position of the local copy
      (all ``y`` copies of an entry share one position).
    - On the counter host only: ``head`` and ``tail``.
    - On whichever server is currently resolving a migration:
      ``migrations``: entry id → ``{"count", "replacement"}`` — the
      pseudocode's ``M[v]`` and ``R[v]``.
    """

    def handle_message(self, server: Server, message: Message, network: Network) -> Any:
        if isinstance(message, PlaceRequest):
            return self._handle_place(message, network)
        if isinstance(message, AddRequest):
            return self._handle_add(server, message, network)
        if isinstance(message, DeleteRequest):
            return self._handle_delete(server, message, network)
        if isinstance(message, StorePositioned):
            store = server.store(self.key)
            store.add(message.entry)
            self._positions(server)[message.entry.entry_id] = message.position
            return True
        if isinstance(message, SetCounters):
            state = server.state(self.key)
            state["head"] = message.head
            state["tail"] = message.tail
            return True
        if isinstance(message, QueryCounters):
            state = server.state(self.key)
            return (state.get("head", 0), state.get("tail", 0))
        if isinstance(message, RemoveWithHead):
            return self._handle_remove(server, message, network)
        if isinstance(message, MigrateRequest):
            return self._handle_migrate(server, message, network)
        if isinstance(message, RemoveReplacement):
            return self._handle_remove_replacement(server, message)
        raise TypeError(f"Round-Robin-y cannot handle {type(message).__name__}")

    # -- helpers -------------------------------------------------------------

    def _positions(self, server: Server) -> Dict[str, int]:
        return server.state(self.key).setdefault("positions", {})

    def _entry_at(self, server: Server, position: int) -> Optional[Entry]:
        """The local entry stored under sequence ``position``, if any."""
        positions = self._positions(server)
        for entry in server.store(self.key):
            if positions.get(entry.entry_id) == position:
                return entry
        return None

    # -- placement -------------------------------------------------------------

    def _handle_place(self, message: PlaceRequest, network: Network) -> bool:
        """Deal the batch out round-robin, honouring the storage budget.

        Copies are dealt round-major (first one copy of every entry,
        then second copies, ...) so that when a storage budget
        truncates placement, coverage degrades as ``min(budget, h)`` —
        the paper's "keep a subset of (v1..vh)" rule for Figure 6.
        With no budget the result is identical to the paper's
        entry-major description.
        """
        strategy = self.strategy
        n = network.size
        budget = strategy.max_total_storage
        placed = 0
        for round_index in range(strategy.y):
            for position, entry in enumerate(message.entries):
                if budget is not None and placed >= budget:
                    break
                network.send(
                    (position + round_index) % n,
                    self.key,
                    StorePositioned(entry, position),
                )
                placed += 1
        for replica in range(self.strategy.counter_replicas):
            network.send(
                replica, self.key, SetCounters(head=0, tail=len(message.entries))
            )
        return True

    def _sync_counters(self, server: Server, network: Network) -> None:
        """Reconcile with fellow counter replicas before sequencing.

        Takes the element-wise max of (head, tail) across operational
        replicas, so a counter host that recovered from a failure
        cannot sequence updates from stale values.  Counters are
        monotone, so max is the correct merge.
        """
        state = server.state(self.key)
        head = state.get("head", 0)
        tail = state.get("tail", 0)
        for replica in range(self.strategy.counter_replicas):
            if replica == server.server_id:
                continue
            reply = network.send(replica, self.key, QueryCounters())
            if is_undelivered(reply) or reply is None:
                continue
            peer_head, peer_tail = reply
            head = max(head, peer_head)
            tail = max(tail, peer_tail)
        state["head"] = head
        state["tail"] = tail

    def _mirror_counters(self, server: Server, network: Network) -> None:
        """Propagate head/tail to the other counter replicas (§5.4 fn).

        The paper notes replication "incur[s] extra overhead in making
        sure the values for the counters are consistent" — that
        overhead is these point-to-point messages, visible in the
        update cost accounting.
        """
        state = server.state(self.key)
        update = SetCounters(state.get("head", 0), state.get("tail", 0))
        for replica in range(self.strategy.counter_replicas):
            if replica != server.server_id:
                network.send(replica, self.key, update)

    # -- adds ----------------------------------------------------------------------

    def _handle_add(self, server: Server, message: AddRequest, network: Network) -> bool:
        """Counter host: append the new entry at the tail position."""
        if self.strategy.counter_replicas > 1:
            self._sync_counters(server, network)
        state = server.state(self.key)
        position = state.get("tail", 0)
        for round_index in range(self.strategy.y):
            network.send(
                (position + round_index) % network.size,
                self.key,
                StorePositioned(message.entry, position),
            )
        state["tail"] = position + 1
        if self.strategy.counter_replicas > 1:
            self._mirror_counters(server, network)
        return True

    # -- deletes (Figure 11) ----------------------------------------------------------

    def _handle_delete(
        self, server: Server, message: DeleteRequest, network: Network
    ) -> bool:
        """Counter host: broadcast remove(v, head) and advance head."""
        if self.strategy.counter_replicas > 1:
            self._sync_counters(server, network)
        state = server.state(self.key)
        head = state.get("head", 0)
        network.broadcast(self.key, RemoveWithHead(message.entry, head))
        state["head"] = head + 1
        if self.strategy.counter_replicas > 1:
            self._mirror_counters(server, network)
        return True

    def _handle_remove(
        self, server: Server, message: RemoveWithHead, network: Network
    ) -> bool:
        """Any holder of ``v``: delete it, then plug the hole.

        The holder asks the head server to migrate the head entry into
        the vacated position.  Non-holders ignore the message, exactly
        as in the pseudocode.
        """
        entry = message.entry
        store = server.store(self.key)
        if entry not in store:
            return False
        positions = self._positions(server)
        hole_position = positions.pop(entry.entry_id)
        store.discard(entry)
        head_server = message.head % network.size
        replacement = network.send(
            head_server,
            self.key,
            MigrateRequest(entry, message.head, hole_position),
        )
        if is_undelivered(replacement) or replacement is None:
            return True
        store.add(replacement)
        positions[replacement.entry_id] = hole_position
        return True

    def _handle_migrate(
        self, server: Server, message: MigrateRequest, network: Network
    ) -> Optional[Entry]:
        """Head server: hand out the replacement ``R[v]``; track ``M[v]``.

        The replacement is resolved lazily on the first migrate request
        (rather than when the broadcast arrives) so the protocol is
        insensitive to the order servers process the delete broadcast.
        If the deleted entry *is* the head entry, there is no hole to
        plug and the replacement is None.
        """
        migrations: Dict[str, Dict[str, Any]] = server.state(self.key).setdefault(
            "migrations", {}
        )
        record = migrations.get(message.entry.entry_id)
        if record is None:
            candidate = self._entry_at(server, message.head)
            if candidate is not None and candidate.entry_id == message.entry.entry_id:
                candidate = None
            record = {"count": 0, "replacement": candidate}
            migrations[message.entry.entry_id] = record
        record["count"] += 1
        replacement = record["replacement"]
        if record["count"] >= self.strategy.y:
            # Every hole is plugged: retire the replacement's old
            # copies (servers head .. head+y-1), then forget the
            # migration record.
            if replacement is not None:
                for round_index in range(self.strategy.y):
                    network.send(
                        (message.head + round_index) % network.size,
                        self.key,
                        RemoveReplacement(replacement, message.head),
                    )
            del migrations[message.entry.entry_id]
        return replacement

    def _handle_remove_replacement(
        self, server: Server, message: RemoveReplacement
    ) -> bool:
        """Old holder of the migrated entry: drop the stale copy.

        A server that already re-stored the entry into the hole keeps
        it — detectable because its recorded position is no longer the
        old head position.
        """
        positions = self._positions(server)
        if positions.get(message.entry.entry_id) != message.position:
            return False
        store = server.store(self.key)
        store.discard(message.entry)
        positions.pop(message.entry.entry_id, None)
        return True


class RoundRobinY(PlacementStrategy):
    """Deal each entry to ``y`` consecutive servers, round-robin.

    Parameters
    ----------
    cluster:
        The server cluster.
    y:
        Replication degree; each entry gets exactly ``y`` copies on
        consecutive servers.  Requires ``1 <= y <= n``.
    max_total_storage:
        Optional total-copy budget for static coverage experiments
        (Figure 6).  Budget-truncated placements violate the
        exactly-``y``-copies invariant the dynamic delete protocol
        relies on, so budgets and updates must not be mixed.

    >>> from repro.cluster import Cluster
    >>> from repro.core.entry import make_entries
    >>> strategy = RoundRobinY(Cluster(10, seed=7), y=2)
    >>> _ = strategy.place(make_entries(100))
    >>> strategy.storage_cost(), strategy.coverage()
    (200, 100)
    >>> strategy.partial_lookup(40).lookup_cost
    2
    """

    name = "round_robin"

    def __init__(
        self,
        cluster: Cluster,
        y: int,
        key: str = "k",
        max_total_storage: Optional[int] = None,
        counter_replicas: int = 1,
    ) -> None:
        self.y = self._require_positive(y, "y")
        if y > cluster.size:
            raise InvalidParameterError(
                f"y ({y}) cannot exceed the number of servers ({cluster.size})"
            )
        if max_total_storage is not None and max_total_storage < 0:
            raise InvalidParameterError("max_total_storage must be non-negative")
        if not 1 <= counter_replicas <= cluster.size:
            raise InvalidParameterError(
                f"counter_replicas must be in [1, {cluster.size}],"
                f" got {counter_replicas}"
            )
        self.max_total_storage = max_total_storage
        #: §5.4 footnote: "the centralized head and tail scheme can be
        #: generalized to one where several servers store copies to
        #: improve reliability".  Counters live on servers
        #: 0..counter_replicas-1; updates go to the first operational
        #: one and are mirrored to the rest.
        self.counter_replicas = counter_replicas
        super().__init__(cluster, key)

    @classmethod
    def from_budget(
        cls, cluster: Cluster, storage_budget: int, entry_count: int, key: str = "k"
    ) -> "RoundRobinY":
        """Size ``y`` from a storage budget: ``y = budget / h`` (Table 1).

        When the budget cannot afford one copy of everything
        (``budget < h``), ``y`` is 1 and the budget truncates placement
        to a subset, per the paper's Figure 6 convention.
        """
        y = max(1, min(cluster.size, storage_budget // max(1, entry_count)))
        return cls(cluster, y=y, key=key, max_total_storage=storage_budget)

    def _build_logic(self) -> StrategyLogic:
        return _RoundRobinLogic(self)

    def params(self) -> Dict[str, Any]:
        params: Dict[str, Any] = {"y": self.y}
        if self.max_total_storage is not None:
            params["max_total_storage"] = self.max_total_storage
        if self.counter_replicas != 1:
            params["counter_replicas"] = self.counter_replicas
        return params

    # -- counter observability (for tests and debugging) ------------------------

    @property
    def head(self) -> int:
        return (
            self.cluster.server(self._alive_counter_host())
            .state(self.key)
            .get("head", 0)
        )

    @property
    def tail(self) -> int:
        return (
            self.cluster.server(self._alive_counter_host())
            .state(self.key)
            .get("tail", 0)
        )

    # -- operations --------------------------------------------------------------

    def _alive_counter_host(self) -> int:
        """The first operational counter replica (fail over in order).

        Raises
        ------
        NoOperationalServerError
            When every counter replica is down — updates cannot be
            sequenced, exactly the single-point-of-failure the §5.4
            footnote's replication is there to mitigate.
        """
        for server_id in range(self.counter_replicas):
            if self.cluster.server(server_id).alive:
                return server_id
        raise NoOperationalServerError(
            f"all {self.counter_replicas} counter replica(s) are failed"
        )

    def _do_place(self, entries: Tuple[Entry, ...]) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, PlaceRequest(entries))

    def _do_add(self, entry: Entry) -> None:
        # Adds go to the counter host (the paper's "server 1"), which
        # alone knows the tail position.
        self.cluster.network.send(
            self._alive_counter_host(), self.key, AddRequest(entry)
        )

    def _do_delete(self, entry: Entry) -> None:
        self.cluster.network.send(
            self._alive_counter_host(), self.key, DeleteRequest(entry)
        )

    def partial_lookup(self, target: int) -> LookupResult:
        # Random first server s, then the deterministic s+y, s+2y, ...
        # walk: consecutive contacts share no entries, so each new
        # server contributes ~h/n fresh entries.  Failed servers are
        # skipped and replaced by random untried ones.
        return self.client.lookup(self.key, target, order=Stride(self.y))

    def lookup_profile(self) -> LookupProfile:
        return LookupProfile(order=Stride(self.y))
