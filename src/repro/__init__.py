"""repro — a reproduction of "Partial Lookup Services" (ICDCS 2003).

A partial lookup service translates a key into *some* of its associated
entries instead of all of them, exploiting the observation that clients
usually only need a few (Sun & Garcia-Molina, ICDCS 2003).  This
library implements the paper's five placement strategies on a simulated
server cluster, the five evaluation metrics, the dynamic-update
workloads, and every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import Cluster, PartialLookupDirectory
>>> directory = PartialLookupDirectory(
...     Cluster(10, seed=42), default_strategy="round_robin",
...     default_params={"y": 2})
>>> directory.place("song", [f"host{i}" for i in range(40)])
>>> result = directory.partial_lookup("song", 3)
>>> result.success, result.lookup_cost
(True, 1)

Package map
-----------
- :mod:`repro.core` — service interfaces, entry/result types, the
  multi-key directory facade.
- :mod:`repro.strategies` — the five placement schemes + selector.
- :mod:`repro.cluster` — simulated servers, network, failure injection.
- :mod:`repro.simulation` — discrete-event engine and event replay.
- :mod:`repro.workload` — Poisson/exponential/Zipf update generators.
- :mod:`repro.metrics` — storage, lookup cost, coverage, fault
  tolerance, unfairness.
- :mod:`repro.analysis` — closed-form models (Table 1) and crossover
  analysis (§6.4).
- :mod:`repro.experiments` — one module per paper table/figure.
- :mod:`repro.extensions` — §7 variations (client preferences,
  limited reachability).
"""

from repro.core import (
    Entry,
    LookupResult,
    PartialLookupDirectory,
    UpdateResult,
    make_entries,
)
from repro.cluster import Client, Cluster, FailureInjector
from repro.strategies import (
    FixedX,
    FullReplication,
    HashY,
    RandomServerX,
    RoundRobinY,
    available_strategies,
    create_strategy,
    recommend,
)

__version__ = "1.0.0"

__all__ = [
    "Entry",
    "make_entries",
    "LookupResult",
    "UpdateResult",
    "PartialLookupDirectory",
    "Cluster",
    "Client",
    "FailureInjector",
    "FullReplication",
    "FixedX",
    "RandomServerX",
    "RoundRobinY",
    "HashY",
    "available_strategies",
    "create_strategy",
    "recommend",
    "__version__",
]
