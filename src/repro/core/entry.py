"""The entry value type managed by a lookup service.

The paper (Section 2) models a lookup service as a set of pairs
``(k_i, V_i)`` where ``V_i`` is a set of *entries*.  Entries are opaque
values: in a music-sharing application they are host identifiers, in a
yellow-pages application they are URLs.  All the paper's strategies and
metrics only require that entries be hashable and comparable for
identity, plus (for Hash-y) that they can be fed to a hash function.

``Entry`` is an immutable value object carrying an identifier and an
optional payload.  Two entries are equal iff their identifiers are
equal; payloads do not participate in identity, mirroring the paper's
assumption that an entry is named by what it points to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional


@dataclass(frozen=True, order=True)
class Entry:
    """A single value associated with a key in the lookup service.

    Parameters
    ----------
    entry_id:
        Stable identifier for the entry.  Equality, ordering, and
        hashing are all defined on this identifier alone.
    payload:
        Optional application data rider (e.g. a host address or URL).
        Excluded from comparison so that two replicas of the same
        logical entry always collapse to one copy on a server.
    """

    entry_id: str
    payload: Any = field(default=None, compare=False)

    def __str__(self) -> str:
        return self.entry_id

    def with_payload(self, payload: Any) -> "Entry":
        """Return a copy of this entry carrying ``payload``."""
        return Entry(self.entry_id, payload)


def make_entries(count: int, prefix: str = "v", start: int = 1) -> List[Entry]:
    """Create ``count`` distinct entries named ``prefix1, prefix2, ...``.

    This is the idiom used throughout the paper's experiments, which
    manage ``h`` anonymous entries ``v_1 .. v_h`` on ``n`` servers.

    >>> [e.entry_id for e in make_entries(3)]
    ['v1', 'v2', 'v3']
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [Entry(f"{prefix}{i}") for i in range(start, start + count)]


def entry_ids(entries: Iterable[Entry]) -> List[str]:
    """Return the identifiers of ``entries`` in iteration order."""
    return [entry.entry_id for entry in entries]


def coerce_entry(value: Any) -> Entry:
    """Coerce ``value`` into an :class:`Entry`.

    Strings become entries named by the string; existing entries pass
    through unchanged.  Anything else must provide a stable ``str``.
    """
    if isinstance(value, Entry):
        return value
    if isinstance(value, str):
        return Entry(value)
    return Entry(str(value), payload=value)


def coerce_entries(values: Iterable[Any]) -> List[Entry]:
    """Coerce an iterable of values into a list of entries.

    Raises
    ------
    ValueError
        If the same entry identifier appears more than once; the
        paper's ``V_i`` is a set, so duplicate identifiers in a single
        ``place`` call are almost certainly a caller bug.
    """
    entries = [coerce_entry(v) for v in values]
    seen: set = set()
    for entry in entries:
        if entry.entry_id in seen:
            raise ValueError(f"duplicate entry id in placement: {entry.entry_id!r}")
        seen.add(entry.entry_id)
    return entries
