"""Failure injection for the fault-tolerance experiments.

Section 4.4 evaluates the *worst case*: an all-knowing adversary picks
which servers fail.  :class:`FailureInjector` applies failure patterns
to a cluster (and restores it afterwards), and provides the random and
adversarial pattern generators that the fault-tolerance metric and the
failure-resilience example build on.  The greedy adversarial heuristic
itself lives in :mod:`repro.metrics.fault_tolerance` since it is an
evaluation procedure, not a substrate feature.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class FailurePattern:
    """An ordered set of servers to fail, with a human-readable origin."""

    server_ids: Tuple[int, ...]
    origin: str = "manual"

    def __len__(self) -> int:
        return len(self.server_ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.server_ids)


class FailureInjector:
    """Applies and reverts failure patterns on a cluster.

    Injections are reference-counted per server: overlapping patterns
    compose (a server failed by two nested patterns stays failed until
    both revert), and reverting never resurrects a *pre-existing*
    failure — a server that was already down when a pattern first
    touched it is left down when the pattern lifts.  ``apply`` and
    ``revert`` are idempotent in the sense that reverting a pattern
    more times than it was applied is a no-op rather than a stray
    recovery.
    """

    def __init__(self, cluster: Cluster, rng: Optional[random.Random] = None) -> None:
        self._cluster = cluster
        self._rng = rng if rng is not None else cluster.rng
        #: server id -> number of active applies touching it.
        self._holds: Dict[int, int] = {}
        #: servers this injector actually transitioned alive -> failed
        #: (and therefore owes a recovery when their last hold lifts).
        self._to_restore: Set[int] = set()

    def random_pattern(self, count: int) -> FailurePattern:
        """``count`` distinct uniformly random servers."""
        if not 0 <= count <= self._cluster.size:
            raise InvalidParameterError(
                f"cannot fail {count} of {self._cluster.size} servers"
            )
        ids = self._rng.sample(range(self._cluster.size), count)
        return FailurePattern(tuple(ids), origin="random")

    def apply(self, pattern: FailurePattern) -> None:
        for server_id in pattern:
            holds = self._holds.get(server_id, 0)
            if holds == 0 and self._cluster.server(server_id).alive:
                self._to_restore.add(server_id)
            self._cluster.fail(server_id)
            self._holds[server_id] = holds + 1

    def revert(self, pattern: FailurePattern) -> None:
        for server_id in pattern:
            holds = self._holds.get(server_id, 0)
            if holds == 0:
                # Never applied (or already fully reverted): recovering
                # here would resurrect a failure we don't own.
                continue
            if holds > 1:
                self._holds[server_id] = holds - 1
                continue
            del self._holds[server_id]
            if server_id in self._to_restore:
                self._to_restore.discard(server_id)
                self._cluster.recover(server_id)

    @contextmanager
    def injected(self, pattern: FailurePattern):
        """Context manager: servers are failed inside, restored after.

        Restores only the pattern's servers, so nested injections and
        pre-existing failures compose correctly.
        """
        self.apply(pattern)
        try:
            yield self._cluster
        finally:
            self.revert(pattern)

    def survives(self, key: str, target: int, pattern: FailurePattern) -> bool:
        """Whether coverage stays >= ``target`` under ``pattern``.

        This is the paper's lookup-failure criterion: a client lookup
        of size ``t`` fails exactly when fewer than ``t`` distinct
        entries remain retrievable from operational servers.
        """
        with self.injected(pattern):
            return self._cluster.coverage(key) >= target
