"""Unit tests for the conformance validation harness."""

import pytest

from repro.experiments.validate import ValidationConfig, all_passed, run


class TestValidation:
    @pytest.fixture(scope="class")
    def result(self):
        # A reduced grid keeps this test fast; the defaults run in CI
        # via the CLI smoke test and the benchmarks.
        config = ValidationConfig(
            grid=((50, 5), (100, 10)), stochastic_runs=15, lookup_samples=150
        )
        return run(config)

    def test_every_check_reported(self, result):
        names = result.column("check")
        assert "table1_deterministic" in names
        assert "coverage_random_server" in names
        assert "fault_tolerance_round_robin" in names
        assert "exact_instances" in names
        assert len(names) == 7

    def test_all_checks_pass(self, result):
        failing = [row for row in result.rows if row["status"] != "PASS"]
        assert not failing, failing
        assert all_passed(result)

    def test_exact_checks_have_zero_error(self, result):
        for name in (
            "table1_deterministic",
            "fault_tolerance_round_robin",
            "exact_instances",
        ):
            assert result.row_for(check=name)["worst_error"] == 0

    def test_all_passed_detects_failure(self, result):
        from repro.experiments.runner import ExperimentResult

        fake = ExperimentResult(
            name="x", headers=["check", "status"],
            rows=[{"check": "c", "status": "FAIL"}],
        )
        assert not all_passed(fake)
