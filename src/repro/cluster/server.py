"""A simulated lookup server: local entry store plus strategy logic.

A :class:`Server` is deliberately thin.  It owns, per key, an ordered
local entry store and an opaque per-strategy state dict; everything
that happens when a message *arrives* — delivery dedupe and dispatch
to the :class:`ServerLogic` the active placement strategy installed
for that key — lives in the server's sans-IO
:class:`~repro.protocol.server.ServerProtocol` core, which this class
merely hosts.  All protocol decisions (broadcast or not, keep a random
subset, plug a round-robin hole, ...) live in the strategy's logic,
mirroring the paper's framing where the *scheme* defines what each
server does upon receiving a message.

:meth:`Server.receive` / :meth:`Server.receive_dedup` are thin drivers
over the protocol core, kept so the simulated transport (and tests)
address the server directly; the asyncio socket service drives the
same :class:`~repro.protocol.server.ServerProtocol` instances instead.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional

from repro.core.entry import Entry
from repro.core.interning import EntryInterner
from repro.cluster.messages import Message
from repro.protocol.server import ServerProtocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.network import Network
    from repro.obs.tracer import Tracer


class EntryStore:
    """An insertion-ordered set of entries with O(1) membership.

    Servers need three things from their local store: membership tests
    (Fixed-x's "do I already hold v?"), uniform random sampling (every
    strategy's per-server lookup answer), and deterministic iteration
    order so seeded runs are reproducible.

    Internally the store is backed by the bitset placement kernel's
    representation: entries are interned into a dense, stable index
    space (shared cluster-wide per key via an
    :class:`~repro.core.interning.EntryInterner`) and the store keeps,
    alongside the ordered entry list, a parallel list of dense indices
    plus an integer bitmask with one bit per held entry.  Membership is
    a bit test, and coverage/union questions over many stores reduce to
    ``int.__or__`` + ``bit_count()`` (see ``Cluster.coverage``).
    Sampling still draws from the ordered list, so seeded RNG streams
    are identical to the pre-bitset representation.
    """

    __slots__ = ("_entries", "_indices", "_mask", "_interner")

    def __init__(
        self,
        entries: Iterable[Entry] = (),
        interner: Optional[EntryInterner] = None,
    ) -> None:
        self._interner = interner if interner is not None else EntryInterner()
        self._entries: list[Entry] = []
        self._indices: list[int] = []
        self._mask: int = 0
        for entry in entries:
            self.add(entry)

    @property
    def mask(self) -> int:
        """Bitmask over the interner's dense index space (one bit per entry)."""
        return self._mask

    @property
    def interner(self) -> EntryInterner:
        return self._interner

    def indices(self) -> list[int]:
        """Dense indices of the held entries, in insertion order."""
        return list(self._indices)

    def add(self, entry: Entry) -> bool:
        """Insert ``entry``; return True if it was not already present."""
        index = self._interner.intern(entry)
        bit = 1 << index
        if self._mask & bit:
            return False
        self._mask |= bit
        self._entries.append(entry)
        self._indices.append(index)
        return True

    def discard(self, entry: Entry) -> bool:
        """Remove ``entry`` if present; return True if it was removed."""
        index = self._interner.index_of(entry.entry_id)
        if index is None or not (self._mask >> index) & 1:
            return False
        position = self._indices.index(index)
        self._entries.pop(position)
        self._indices.pop(position)
        self._mask ^= 1 << index
        return True

    def replace(self, old: Entry, new: Entry) -> bool:
        """Swap ``old`` for ``new`` in place, preserving position."""
        old_index = self._interner.index_of(old.entry_id)
        if old_index is None or not (self._mask >> old_index) & 1:
            return False
        new_index = self._interner.intern(new)
        if (self._mask >> new_index) & 1:
            return False
        position = self._indices.index(old_index)
        self._entries[position] = new
        self._indices[position] = new_index
        self._mask ^= (1 << old_index) | (1 << new_index)
        return True

    def sample(self, count: int, rng: random.Random) -> list[Entry]:
        """Return ``min(count, len(self))`` uniformly sampled entries.

        This implements the per-server lookup answer the paper
        specifies for every strategy: "returns t randomly selected
        entries stored on the server or all the entries if the total
        is less than t".  ``count <= 0`` means "everything".
        """
        if count <= 0 or count >= len(self._entries):
            return list(self._entries)
        return rng.sample(self._entries, count)

    def pop_random(self, rng: random.Random) -> Entry:
        """Remove and return one uniformly random entry."""
        if not self._entries:
            raise KeyError("pop_random from an empty store")
        position = rng.randrange(len(self._entries))
        entry = self._entries.pop(position)
        self._mask ^= 1 << self._indices.pop(position)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self._indices.clear()
        self._mask = 0

    def __contains__(self, entry: Entry) -> bool:
        index = self._interner.index_of(entry.entry_id)
        return index is not None and bool((self._mask >> index) & 1)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    def as_list(self) -> list[Entry]:
        return list(self._entries)

    def as_set(self) -> set[Entry]:
        return set(self._entries)


class ServerLogic(ABC):
    """Per-strategy message handler installed on every server.

    One logic instance may be shared across all servers (strategies
    keep per-server state in ``server.state``), so implementations must
    not store per-server mutable state on ``self``.
    """

    @abstractmethod
    def handle(self, server: "Server", message: Message, network: "Network") -> Any:
        """Process ``message`` at ``server``; return the reply, if any."""


class Server:
    """One simulated lookup server.

    Attributes
    ----------
    server_id:
        Zero-based identifier; the paper's "server 1" (the Round-Robin
        counter host) is ``server_id == 0`` here.
    alive:
        False while the server is failed; a failed server processes no
        messages (the network suppresses delivery).
    """

    #: Dedupe window size, re-exported from the protocol core (the
    #: dedupe cache itself lives in :class:`ServerProtocol`).
    DEDUP_WINDOW = ServerProtocol.DEDUP_WINDOW

    def __init__(
        self,
        server_id: int,
        interners: Optional[dict[str, EntryInterner]] = None,
    ) -> None:
        self.server_id = server_id
        self.alive = True
        #: Per-key entry interners.  A cluster passes one shared dict
        #: to all its servers so every store for a key uses the same
        #: dense index space (the bitset kernel's requirement); a
        #: standalone server gets a private dict.
        self._interners: dict[str, EntryInterner] = (
            interners if interners is not None else {}
        )
        self._stores: dict[str, EntryStore] = {}
        self._state: dict[str, dict[str, Any]] = {}
        self._logics: dict[str, ServerLogic] = {}
        #: The sans-IO request core: delivery dedupe + logic dispatch.
        #: Transports (simulated network, asyncio service) drive this.
        self.protocol = ServerProtocol(self)
        #: Optional structured tracer (see
        #: :meth:`repro.cluster.cluster.Cluster.install_tracer`); when
        #: set, lifecycle *transitions* emit ``server.fail`` /
        #: ``server.recover`` events.
        self.tracer: Optional["Tracer"] = None

    # -- store access ------------------------------------------------------

    def store(self, key: str) -> EntryStore:
        """The local entry store for ``key``, created on first access."""
        if key not in self._stores:
            if key not in self._interners:
                self._interners[key] = EntryInterner()
            self._stores[key] = EntryStore(interner=self._interners[key])
        return self._stores[key]

    def state(self, key: str) -> dict[str, Any]:
        """Per-key strategy scratch state (counters, migration maps)."""
        if key not in self._state:
            self._state[key] = {}
        return self._state[key]

    def stored_entry_count(self, key: str) -> int:
        return len(self._stores.get(key, ()))

    def keys(self) -> list[str]:
        return list(self._stores)

    # -- logic installation and dispatch -----------------------------------

    def install_logic(self, key: str, logic: ServerLogic) -> None:
        """Bind ``logic`` as the handler for messages about ``key``."""
        self._logics[key] = logic

    def logic_for(self, key: str) -> Optional[ServerLogic]:
        return self._logics.get(key)

    def receive(self, key: str, message: Message, network: "Network") -> Any:
        """Thin driver: route a delivered message through the protocol core."""
        return self.protocol.dispatch(key, message, network)

    def receive_dedup(
        self, key: str, message: Message, network: "Network", delivery_id: int
    ) -> Any:
        """Thin driver: idempotent receive via the protocol core's dedupe.

        The at-least-once transport (a fault plan with duplication)
        may deliver the same logical message twice; see
        :meth:`~repro.protocol.server.ServerProtocol.dispatch_dedup`.
        """
        return self.protocol.dispatch_dedup(key, message, network, delivery_id)

    # -- lifecycle ----------------------------------------------------------

    def fail(self) -> None:
        """Mark the server failed; its state is retained for recovery."""
        if self.tracer is not None and self.alive:
            # Transition-guarded: re-failing a failed server (e.g. a
            # sweep's blanket fail_many) emits nothing.
            self.tracer.event("server.fail", server=self.server_id)
        self.alive = False

    def recover(self) -> None:
        """Bring a failed server back with its pre-failure state intact."""
        if self.tracer is not None and not self.alive:
            self.tracer.event("server.recover", server=self.server_id)
        self.alive = True

    def wipe(self) -> None:
        """Erase all stores and state, as if freshly provisioned."""
        self._stores.clear()
        self._state.clear()
        self.protocol.forget_deliveries()

    def __repr__(self) -> str:
        status = "up" if self.alive else "DOWN"
        sizes = {k: len(s) for k, s in self._stores.items()}
        return f"Server({self.server_id}, {status}, stores={sizes})"
