"""Unit tests for directory-level placement verification."""

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.core.service import PartialLookupDirectory
from repro.maintenance.verify import verify_directory


def _directory():
    directory = PartialLookupDirectory(
        Cluster(8, seed=41),
        default_strategy="round_robin",
        default_params={"y": 2},
    )
    directory.configure_key("replicated", "full_replication")
    directory.configure_key("hashed", "hash", y=2)
    directory.place("replicated", make_entries(10, prefix="r"))
    directory.place("hashed", make_entries(10, prefix="h"))
    directory.place("defaulted", make_entries(10, prefix="d"))
    return directory


class TestVerifyDirectory:
    def test_healthy_directory_is_clean(self):
        assert verify_directory(_directory()) == {}

    def test_only_damaged_keys_reported(self):
        directory = _directory()
        # Damage only the replicated key: one server loses a copy.
        directory.cluster.server(3).store("replicated").discard(Entry("r2"))
        report = verify_directory(directory)
        assert set(report) == {"replicated"}
        assert any(v.kind == "divergent_store" for v in report["replicated"])

    def test_multiple_damaged_keys(self):
        directory = _directory()
        directory.cluster.server(3).store("replicated").discard(Entry("r2"))
        hashed = directory.strategy("hashed")
        # Pick an entry with two *distinct* targets: removing one copy
        # leaves the other, which is what makes the damage detectable.
        # (A fully-vanished entry is structurally invisible — the
        # verifier has no ground truth for what should exist.)
        entry = next(
            e
            for e in hashed.lookup_all()
            if len(hashed.family.assign_distinct(e)) == 2
        )
        target = hashed.family.assign_distinct(entry)[0]
        directory.cluster.server(target).store("hashed").discard(entry)
        report = verify_directory(directory)
        assert set(report) == {"replicated", "hashed"}
