"""Trace and metrics exporters: JSONL traces and flat counter dumps.

File layout for traces mirrors :mod:`repro.io.traces`: one JSON object
per line, the first line a header (format version, run id, record
count, optional embedded :class:`~repro.obs.manifest.RunManifest`),
each further line one :class:`~repro.obs.tracer.TraceRecord`.  The
reader re-validates everything it accepts, and
:func:`validate_trace_lines` is exposed separately so tests and
downstream tooling can check a trace without re-parsing it by hand.

The counters dump is deliberately boring: ``name value`` lines, sorted
by name, one scalar per line — trivially diffable between runs.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.exceptions import InvalidParameterError
from repro.obs.manifest import RunManifest
from repro.obs.tracer import RECORD_KEYS, TRACE_FORMAT_VERSION, Tracer

PathLike = Union[str, pathlib.Path]


# --------------------------------------------------------------------------
# JSONL trace writer / reader
# --------------------------------------------------------------------------


def write_trace(
    tracer: Tracer,
    path: PathLike,
    manifest: Optional[RunManifest] = None,
) -> pathlib.Path:
    """Write the tracer's records as JSON lines; returns the path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    header: Dict[str, Any] = {
        "kind": "header",
        "format_version": TRACE_FORMAT_VERSION,
        "run_id": tracer.run_id,
        "records": len(tracer.records),
    }
    if manifest is not None:
        header["manifest"] = manifest.as_dict()
    lines = [json.dumps(header)]
    lines.extend(
        json.dumps(record.as_dict(), default=str) for record in tracer.records
    )
    target.write_text("\n".join(lines) + "\n")
    return target


def read_trace(path: PathLike) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read and validate a trace written by :func:`write_trace`.

    Returns ``(header, records)``; raises
    :class:`~repro.core.exceptions.InvalidParameterError` on any
    schema violation, quoting the first problem found.
    """
    source = pathlib.Path(path)
    lines = source.read_text().splitlines()
    if not lines:
        raise InvalidParameterError(f"{source} is empty")
    header = json.loads(lines[0])
    if header.get("kind") != "header":
        raise InvalidParameterError(f"{source} first line is not a trace header")
    version = header.get("format_version")
    if version != TRACE_FORMAT_VERSION:
        raise InvalidParameterError(
            f"{source} has trace format version {version!r}; "
            f"this reader supports {TRACE_FORMAT_VERSION}"
        )
    records = [json.loads(line) for line in lines[1:]]
    declared = header.get("records")
    if declared is not None and declared != len(records):
        raise InvalidParameterError(
            f"{source} declares {declared} records but contains {len(records)}"
        )
    problems = validate_trace_records(records, run_id=header.get("run_id"))
    if problems:
        raise InvalidParameterError(
            f"{source} failed schema validation: {problems[0]} "
            f"({len(problems)} problem(s) total)"
        )
    return header, records


def validate_trace_records(
    records: Sequence[Dict[str, Any]],
    run_id: Optional[str] = None,
) -> List[str]:
    """Schema-check parsed trace records; returns problems (empty = valid).

    Checks, per record: every :data:`~repro.obs.tracer.RECORD_KEYS`
    key present; ``kind`` is span/event; timestamps are non-negative
    numbers with ``start <= end`` (equal for events); ``seq`` strictly
    increasing in file order; ``run_id`` consistent with the header.
    Across records: every event's ``span_id`` and every span's
    ``parent_id`` must name a span that exists in the trace.
    """
    problems: List[str] = []
    span_ids = {
        record.get("span_id")
        for record in records
        if record.get("kind") == "span"
    }
    last_seq = 0
    for index, record in enumerate(records):
        where = f"record {index}"
        missing = [key for key in RECORD_KEYS if key not in record]
        if missing:
            problems.append(f"{where}: missing keys {missing}")
            continue
        kind = record["kind"]
        if kind not in ("span", "event"):
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        start, end = record["start"], record["end"]
        if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
            problems.append(f"{where}: non-numeric timestamps")
            continue
        if start < 0 or end < start:
            problems.append(f"{where}: bad time range [{start}, {end}]")
        if kind == "event" and start != end:
            problems.append(f"{where}: event with extent [{start}, {end}]")
        seq = record["seq"]
        if not isinstance(seq, int) or seq <= last_seq:
            problems.append(f"{where}: seq {seq!r} not strictly increasing")
        else:
            last_seq = seq
        if run_id is not None and record["run_id"] != run_id:
            problems.append(
                f"{where}: run_id {record['run_id']!r} != header {run_id!r}"
            )
        if not isinstance(record["fields"], dict):
            problems.append(f"{where}: fields is not an object")
        if kind == "span":
            if record["span_id"] is None:
                problems.append(f"{where}: span without span_id")
            parent = record["parent_id"]
            if parent is not None and parent not in span_ids:
                problems.append(f"{where}: parent_id {parent} names no span")
        else:
            parent = record["span_id"]
            if parent is not None and parent not in span_ids:
                problems.append(f"{where}: span_id {parent} names no span")
    return problems


# --------------------------------------------------------------------------
# Flat counters dump
# --------------------------------------------------------------------------


def format_counters(snapshot: Dict[str, float]) -> str:
    """Render a registry snapshot as sorted ``name value`` lines."""
    return "\n".join(
        f"{name} {value:g}" for name, value in sorted(snapshot.items())
    )


def write_counters(snapshot: Dict[str, float], path: PathLike) -> pathlib.Path:
    """Write a flat counters dump; returns the path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(format_counters(snapshot) + "\n")
    return target
