"""Benchmark: regenerate the Table 2 strategy/metric summary.

The stars are re-derived from measurements (the paper's glyphs are
illegible in the available text); the assertions check the paper's
prose claims about who leads each column.
"""

from _bench_utils import render_and_print

from repro.experiments.table2_summary import (
    Table2Config,
    assign_stars,
    measure_all,
    run,
)


def test_bench_table2_summary(benchmark):
    config = Table2Config(runs=3, lookups=1500, churn_updates=1500,
                          update_trace_length=1500)
    result = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    render_and_print(result)

    cells = measure_all(config)
    stars = assign_stars(cells)

    # §4.5: Round-Robin is the fair partial scheme.
    assert stars["round_robin"]["fairness_static"] == 4
    assert stars["round_robin"]["fairness_dynamic"] == 4
    # §4.2: Fixed-x has the cheapest lookups; §4.3: the worst coverage.
    assert stars["fixed"]["lookup_cost"] == 4
    assert stars["fixed"]["coverage"] == 1
    # §6.4: Fixed-x wins small-ratio updates, Hash-y wins large-ratio.
    assert stars["fixed"]["update_overhead_small_t"] == 4
    assert stars["hash"]["update_overhead_large_t"] == 4
    # §4.1: constant-storage schemes win when entries are many.
    assert stars["fixed"]["storage_large_h"] == 4
    assert stars["random_server"]["storage_large_h"] == 4
