"""Property-based tests for the Round-Robin dynamic delete protocol.

The Figure 10/11 migration machinery is the most intricate protocol in
the paper; these tests hammer it with random interleaved update
sequences and check the structural invariant after every operation:
every live entry has exactly ``y`` copies, on consecutive servers, and
nothing else is stored anywhere.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.strategies.round_robin import RoundRobinY


def _check_invariant(strategy, live_ids, y):
    counts = {
        entry.entry_id: count
        for entry, count in strategy.cluster.replica_counts("k").items()
    }
    assert set(counts) == live_ids, (
        f"stored {sorted(counts)} != live {sorted(live_ids)}"
    )
    assert all(count == y for count in counts.values()), counts
    # Copies must sit on consecutive servers (a position's window).
    placement = strategy.placement()
    n = strategy.cluster.size
    for entry_id in live_ids:
        holders = sorted(
            sid for sid, entries in placement.items() if Entry(entry_id) in entries
        )
        windows = [
            sorted((start + offset) % n for offset in range(y))
            for start in range(n)
        ]
        assert holders in windows, f"{entry_id} holders {holders} not consecutive"


@st.composite
def update_scripts(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    y = draw(st.integers(min_value=1, max_value=n))
    initial = draw(st.integers(min_value=0, max_value=12))
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["add", "delete"]), st.integers(0, 30)),
            max_size=25,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, y, initial, ops, seed


@given(update_scripts())
@settings(max_examples=60, deadline=None)
def test_invariant_through_random_update_sequences(script):
    n, y, initial, ops, seed = script
    strategy = RoundRobinY(Cluster(n, seed=seed), y=y)
    entries = make_entries(initial)
    strategy.place(entries)
    live = {entry.entry_id for entry in entries}
    _check_invariant(strategy, live, y)
    next_add = 0
    for action, index in ops:
        if action == "add":
            entry_id = f"a{next_add}"
            next_add += 1
            strategy.add(Entry(entry_id))
            live.add(entry_id)
        else:
            if not live:
                continue
            victim = sorted(live)[index % len(live)]
            strategy.delete(Entry(victim))
            live.discard(victim)
        _check_invariant(strategy, live, y)


@given(update_scripts())
@settings(max_examples=30, deadline=None)
def test_coverage_equals_live_population(script):
    n, y, initial, ops, seed = script
    strategy = RoundRobinY(Cluster(n, seed=seed), y=y)
    entries = make_entries(initial)
    strategy.place(entries)
    live = {entry.entry_id for entry in entries}
    next_add = 0
    for action, index in ops:
        if action == "add":
            entry_id = f"a{next_add}"
            next_add += 1
            strategy.add(Entry(entry_id))
            live.add(entry_id)
        elif live:
            victim = sorted(live)[index % len(live)]
            strategy.delete(Entry(victim))
            live.discard(victim)
    assert strategy.coverage() == len(live)
    assert strategy.storage_cost() == len(live) * y
