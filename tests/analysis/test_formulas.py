"""Unit tests for the Table 1 / Section 4 closed forms."""

import pytest

from repro.analysis.formulas import (
    expected_coverage_random_server,
    expected_storage,
    fault_tolerance_round_robin,
    lookup_cost_round_robin,
    solve_x_from_budget,
    solve_y_from_budget,
    storage_table,
)
from repro.core.exceptions import InvalidParameterError


class TestStorageFormulas:
    def test_full_replication(self):
        assert expected_storage("full_replication", 100, 10) == 1000

    def test_fixed_and_random_server(self):
        assert expected_storage("fixed", 100, 10, x=20) == 200
        assert expected_storage("random_server", 100, 10, x=20) == 200

    def test_round_robin(self):
        assert expected_storage("round_robin", 100, 10, y=2) == 200

    def test_hash_collision_discount(self):
        # 100·10·(1 − 0.9²) = 190 < 200 = h·y·... the naive h·y·n/n.
        assert expected_storage("hash", 100, 10, y=2) == pytest.approx(190.0)

    def test_hash_saturates_at_h_n(self):
        assert expected_storage("hash", 100, 10, y=1000) == pytest.approx(
            1000.0, rel=1e-3
        )

    def test_unknown_strategy(self):
        with pytest.raises(InvalidParameterError):
            expected_storage("bogus", 100, 10)

    def test_missing_parameter(self):
        with pytest.raises(InvalidParameterError):
            expected_storage("fixed", 100, 10)  # x defaults to 0

    def test_storage_table_keys(self):
        table = storage_table(100, 10, x=20, y=2)
        assert set(table) == {
            "full_replication",
            "fixed",
            "random_server",
            "round_robin",
            "hash",
        }


class TestCoverageFormula:
    def test_paper_value(self):
        # §4.5 quotes ~89 entries for x=20, h=100, n=10.
        value = expected_coverage_random_server(100, 10, 20)
        assert value == pytest.approx(89.26, abs=0.01)

    def test_x_at_least_h_is_complete(self):
        assert expected_coverage_random_server(100, 10, 100) == 100
        assert expected_coverage_random_server(100, 10, 150) == 100

    def test_monotone_in_x(self):
        values = [
            expected_coverage_random_server(100, 10, x) for x in (5, 10, 20, 50)
        ]
        assert values == sorted(values)

    def test_monotone_in_n(self):
        assert expected_coverage_random_server(
            100, 20, 10
        ) > expected_coverage_random_server(100, 5, 10)


class TestRoundRobinFormulas:
    def test_lookup_cost_steps(self):
        # y=2, h=100, n=10: 20 entries per server.
        assert lookup_cost_round_robin(20, 100, 10, 2) == 1
        assert lookup_cost_round_robin(21, 100, 10, 2) == 2
        assert lookup_cost_round_robin(40, 100, 10, 2) == 2
        assert lookup_cost_round_robin(41, 100, 10, 2) == 3

    def test_fault_tolerance_paper_example(self):
        # §4.4: Round-1 supports t with n − ⌈tn/h⌉ tolerable failures.
        assert fault_tolerance_round_robin(10, 100, 10, 1) == 9 - 1 + 1
        assert fault_tolerance_round_robin(50, 100, 10, 2) == 10 - 5 + 1

    def test_fault_tolerance_clamped(self):
        assert fault_tolerance_round_robin(1, 100, 10, 10) == 9  # <= n-1
        assert fault_tolerance_round_robin(100, 100, 10, 1) == 0  # >= 0


class TestBudgetSolvers:
    def test_paper_budget_200(self):
        assert solve_x_from_budget(200, 10) == 20
        assert solve_y_from_budget(200, 100) == 2

    def test_floors(self):
        assert solve_x_from_budget(199, 10) == 19
        assert solve_y_from_budget(199, 100) == 1

    def test_minimum_one(self):
        assert solve_x_from_budget(5, 10) == 1
        assert solve_y_from_budget(50, 100) == 1
