"""Traditional lookup-service baselines the paper compares against.

Figure 1 contrasts three ways of managing a key: full replication
(implemented as a strategy in :mod:`repro.strategies`), *partitioning*
— hash the key to a single owner server, the Chord/CAN approach the
related-work section describes — and partial lookup.  This package
implements the partitioning baseline so the intro's comparison and
the conclusion's hot-spot claim can be measured, not just asserted.
"""

from repro.baselines.key_partitioning import KeyPartitioning

__all__ = ["KeyPartitioning"]
