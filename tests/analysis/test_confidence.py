"""Unit tests for confidence intervals."""

import pytest

from repro.analysis.confidence import ConfidenceInterval, mean_confidence_interval
from repro.core.exceptions import InvalidParameterError


class TestConfidenceInterval:
    def test_mean(self):
        ci = mean_confidence_interval([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)

    def test_bounds_bracket_mean(self):
        ci = mean_confidence_interval([1.0, 5.0, 3.0, 7.0])
        assert ci.low < ci.mean < ci.high
        assert ci.high - ci.mean == pytest.approx(ci.half_width)

    def test_single_sample_zero_width(self):
        ci = mean_confidence_interval([4.2])
        assert ci.half_width == 0.0
        assert ci.samples == 1

    def test_identical_samples_zero_width(self):
        ci = mean_confidence_interval([3.0] * 10)
        assert ci.half_width == 0.0

    def test_width_shrinks_with_samples(self):
        small = mean_confidence_interval([1.0, 2.0] * 5)
        large = mean_confidence_interval([1.0, 2.0] * 500)
        assert large.half_width < small.half_width

    def test_higher_level_wider(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert (
            mean_confidence_interval(samples, 0.99).half_width
            > mean_confidence_interval(samples, 0.90).half_width
        )

    def test_relative_half_width(self):
        ci = ConfidenceInterval(mean=10.0, half_width=0.5, level=0.95, samples=9)
        assert ci.relative_half_width == pytest.approx(0.05)

    def test_relative_half_width_zero_mean(self):
        assert ConfidenceInterval(0.0, 0.0, 0.95, 2).relative_half_width == 0.0

    def test_str(self):
        text = str(mean_confidence_interval([1.0, 2.0]))
        assert "±" in text and "95%" in text

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([])
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([1.0], level=0.5)
