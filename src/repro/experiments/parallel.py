"""Parallel execution of seeded experiment runs.

Every experiment averages a pure function ``run_once(seed)`` over the
independent derived seeds from :func:`~repro.experiments.runner.seeded_runs`.
That structure is embarrassingly parallel: a worker needs nothing but
the seed (state is rebuilt from it inside ``run_once``), and the final
aggregate only depends on the *ordered* list of samples.

:class:`RunExecutor` captures the contract.  Backends may run the
calls in any order on any number of processes; :meth:`ordered_samples`
restores run-index order before anything is aggregated, which is what
makes ``--jobs 4`` bit-identical to ``--jobs 1``:

- :class:`SerialRunExecutor` — in-process loop, the default.
- :class:`ProcessRunExecutor` — a ``ProcessPoolExecutor`` fed with
  chunks of ``(run_index, item)`` pairs.  The pool is created lazily
  and reused across every data point of an experiment, so startup cost
  is paid once per experiment, not once per point.

Workers are forked (where the platform allows) so they inherit the
parent's hash seed: a few measurements iterate over sets of entries,
and ``fork`` keeps that iteration order identical across processes.
Run functions handed to :class:`ProcessRunExecutor` must be picklable
— module-level functions, or :func:`functools.partial` over one.
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.exceptions import InvalidParameterError, ReproError

#: Environment variable consulted when no explicit ``jobs`` is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Target number of chunks handed to each worker; >1 smooths out
#: uneven per-run cost without drowning in per-task pickling.
_CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Validate a job count, falling back to ``$REPRO_JOBS`` then 1.

    Raises :class:`InvalidParameterError` (never a bare ``ValueError``)
    so the CLI reports bad values as a clean one-line error.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR)
        if raw is None or raw.strip() == "":
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise InvalidParameterError(
                f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise InvalidParameterError(f"jobs must be an integer, got {jobs!r}")
    if jobs < 1:
        raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
    return jobs


class RunExecutor(ABC):
    """Fans ``fn`` over items, preserving run-index order of results.

    Subclasses implement :meth:`map_indexed`, which may return the
    ``(run_index, result)`` pairs in **any** order; callers go through
    :meth:`ordered_samples`, which re-sorts by run index and verifies
    every index came back exactly once.
    """

    #: Requested degree of parallelism (1 for the serial backend).
    jobs: int = 1
    #: Human-readable backend name, recorded in run manifests.
    mode: str = "serial"

    @abstractmethod
    def map_indexed(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Tuple[int, Any]]:
        """Apply ``fn`` to each item; return ``(index, result)`` pairs."""

    def ordered_samples(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> List[Any]:
        """``[fn(item) for item in items]``, regardless of scheduling."""
        materialized = list(items)
        pairs = self.map_indexed(fn, materialized)
        if sorted(index for index, _ in pairs) != list(range(len(materialized))):
            raise ReproError(
                f"{type(self).__name__} returned {len(pairs)} results for "
                f"{len(materialized)} runs; every run index must appear "
                "exactly once"
            )
        ordered = sorted(pairs, key=lambda pair: pair[0])
        return [result for _, result in ordered]

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "RunExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialRunExecutor(RunExecutor):
    """The sequential baseline: same process, submission order."""

    def map_indexed(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Tuple[int, Any]]:
        return [(index, fn(item)) for index, item in enumerate(items)]


def _run_chunk(
    fn: Callable[[Any], Any], chunk: List[Tuple[int, Any]]
) -> List[Tuple[int, Any]]:
    """Worker-side loop over one chunk of ``(run_index, item)`` pairs.

    Module-level so it pickles by reference under every start method.
    """
    return [(index, fn(item)) for index, item in chunk]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (hash-seed inheritance, cheap startup)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ProcessRunExecutor(RunExecutor):
    """Chunked fan-out over a lazily created process pool.

    Items are sliced into roughly ``jobs * _CHUNKS_PER_WORKER`` chunks;
    each chunk is one pool task carrying its run indices, so results
    can be merged in run-index order no matter which worker finishes
    first.  The pool survives across calls — experiments sweep many
    data points through one executor.
    """

    mode = "process"

    def __init__(self, jobs: int) -> None:
        self.jobs = resolve_jobs(jobs)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=_pool_context()
            )
        return self._pool

    def map_indexed(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Tuple[int, Any]]:
        indexed = list(enumerate(items))
        if not indexed:
            return []
        chunk_size = max(
            1, -(-len(indexed) // (self.jobs * _CHUNKS_PER_WORKER))
        )
        chunks = [
            indexed[start : start + chunk_size]
            for start in range(0, len(indexed), chunk_size)
        ]
        pool = self._ensure_pool()
        futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
        pairs: List[Tuple[int, Any]] = []
        for future in futures:
            pairs.extend(future.result())
        return pairs

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def make_executor(jobs: Optional[int] = None) -> RunExecutor:
    """The executor for a resolved job count (serial when it is 1)."""
    count = resolve_jobs(jobs)
    if count == 1:
        return SerialRunExecutor()
    return ProcessRunExecutor(count)
