"""The client-side lookup driver over the sans-IO protocol core.

Every strategy's ``partial_lookup`` follows the same skeleton — contact
servers in some order, merge the distinct entries from each reply, stop
once the target is met — and differs only in the *order* of servers
contacted (uniformly random for most strategies, the deterministic
``s, s+y, s+2y, ...`` walk for Round-Robin).  That skeleton, including
the paper's failure handling and this reproduction's bounded retry
passes, lives in the transport-agnostic
:class:`~repro.protocol.lookup.LookupSession` state machine;
:class:`Client` is the *simulated-network driver* for it.  It resolves
the contact order (the only part that needs cluster topology), then
pumps the session: each ``SendRequest`` effect becomes a synchronous
:meth:`Network.send <repro.cluster.network.Network.send>`, each
``Sleep`` effect is accounted rather than enacted (asynchronous timing
lives at the workload level), and trace effects are forwarded to the
optional tracer.  The asyncio driver in :mod:`repro.net.client` pumps
the very same machine over real sockets.

The one public entry point is :meth:`Client.lookup`: a keyword-only
API built around the frozen :class:`LookupOptions` dataclass, whose
``order`` selects between the random walk (``"random"``) and the
Round-Robin stride walk (:class:`Stride`).  The legacy
``lookup_random`` / ``lookup_stride`` shims were removed after one
deprecation release; calling them now raises an ``AttributeError``
naming the replacement.

Under a fault plan the transport can also *lose* requests
(:data:`~repro.cluster.network.DROPPED`), which the paper's protocol
cannot distinguish from a failed server.  A :class:`RetryPolicy` makes
the client distinguish the two: after a pass that came up short it
re-contacts the servers that never answered — dropped contacts first,
since those servers are presumably alive — within a bounded backoff
budget measured in simulated time, instead of silently under-filling
the answer.  The result reports the retry count and an explicit
``degraded`` flag, so a short answer is always a *labelled* short
answer.

Observability: pass a :class:`~repro.obs.tracer.Tracer` (per call or
at construction) and every lookup emits one ``"lookup"`` span with a
``"contact"`` event per server tried (outcome: delivered / failed /
dropped) and a ``"retry"`` event per extra pass.  A
:class:`~repro.obs.metrics.MetricsRegistry` makes the client publish
per-lookup counters (``client.lookups``, ``client.retries``, ...).
Both are opt-in and cost nothing when absent — no RNG draws, no
behaviour change (the session emits trace effects only when asked).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple, Union

from repro.core.exceptions import InvalidParameterError
from repro.core.result import LookupResult
from repro.cluster.cluster import Cluster
from repro.cluster.network import DROPPED, is_undelivered
from repro.protocol.effects import (
    Complete,
    SendRequest,
    Sleep,
    SpanEnd,
    SpanEvent,
    SpanStart,
)
from repro.protocol.events import SLEPT, ContactFailed, Event, ReplyReceived
from repro.protocol.lookup import LookupSession, random_order, stride_order

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry behaviour for lookups under lossy transport.

    Parameters
    ----------
    max_attempts:
        Total passes over unanswered servers, including the first; 1
        reproduces the paper's single-pass client exactly.
    base_backoff:
        Simulated-time delay before the first retry pass.
    backoff_multiplier:
        Exponential growth factor per retry pass.
    backoff_budget:
        Total simulated time one lookup may spend backing off.  A
        retry whose delay would exceed the remaining budget is not
        attempted — the lookup returns degraded instead of retrying
        forever.  Measured in the same virtual-time units as the
        :class:`~repro.simulation.engine.SimulationEngine` clock; the
        synchronous transport accounts the delay (see
        ``LookupResult.backoff``) rather than advancing the engine,
        matching the codebase's convention that asynchronous timing
        lives at the workload level.  The asyncio driver enacts the
        same delays as real ``asyncio.sleep`` calls.
    jitter:
        Each delay is scaled by ``1 + jitter * u`` with ``u`` uniform
        in [0, 1) from the client RNG (the cluster RNG by default), so
        seeded runs replay identical retry schedules.  Must lie in
        [0, 1]: a negative jitter would silently *shrink* backoffs
        below the exponential schedule, and anything above 1 would
        more than double a delay.
    """

    max_attempts: int = 3
    base_backoff: float = 1.0
    backoff_multiplier: float = 2.0
    backoff_budget: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff < 0 or self.backoff_budget < 0:
            raise InvalidParameterError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise InvalidParameterError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.jitter < 0.0:
            raise InvalidParameterError(
                f"jitter must not be negative (it would shrink backoffs), "
                f"got {self.jitter}"
            )
        if self.jitter > 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """The jittered backoff before retry pass ``retry_index`` (0-based)."""
        base = self.base_backoff * (self.backoff_multiplier ** retry_index)
        if self.jitter:
            base *= 1.0 + self.jitter * rng.random()
        return base


@dataclass(frozen=True)
class Stride:
    """Round-Robin contact order: random start, then ``+y`` steps mod n."""

    y: int

    def __post_init__(self) -> None:
        if self.y < 1:
            raise InvalidParameterError(f"stride must be >= 1, got {self.y}")

    def __str__(self) -> str:
        return f"stride({self.y})"


#: The ``order`` vocabulary: uniformly random, or a stride walk.
Order = Union[str, Stride]


@dataclass(frozen=True)
class LookupOptions:
    """Frozen per-lookup configuration for :meth:`Client.lookup`.

    Attributes
    ----------
    order:
        ``"random"`` (the default) or a :class:`Stride`.
    max_servers:
        Optional cap on operational servers contacted; used by
        strategies whose placement makes extra contacts useless
        (Fixed-x and full replication stop after one).
    per_server_target:
        How many entries to request from each server; defaults to the
        lookup target, the paper's per-server answer size.
    retry:
        Per-call :class:`RetryPolicy` override; ``None`` inherits the
        client's policy.  To force the paper's single-pass behaviour
        on a retrying client, pass ``RetryPolicy(max_attempts=1)``.
    tracer:
        Per-call :class:`~repro.obs.tracer.Tracer` override; ``None``
        inherits the client's tracer (usually none).
    """

    order: Order = "random"
    max_servers: Optional[int] = None
    per_server_target: Optional[int] = None
    retry: Optional[RetryPolicy] = None
    tracer: Optional["Tracer"] = None

    def __post_init__(self) -> None:
        if self.order != "random" and not isinstance(self.order, Stride):
            raise InvalidParameterError(
                f"order must be 'random' or a Stride, got {self.order!r}"
            )


#: The removed legacy entry points and the hint shown for each.
_REMOVED_METHODS = {
    "lookup_random": "Client.lookup(key, target, max_servers=...)",
    "lookup_stride": "Client.lookup(key, target, order=Stride(y))",
}


class Client:
    """A lookup client bound to a cluster (the simulated-network driver).

    Parameters
    ----------
    cluster:
        The cluster to issue lookups against.
    rng:
        Private randomness for server selection; defaults to the
        cluster RNG so a seeded cluster stays fully deterministic.
    retry_policy:
        Optional :class:`RetryPolicy`.  With the default ``None`` the
        client is the paper's single-pass client, bit-for-bit.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; when set, every
        lookup emits a span (see the module docstring).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        set, the client publishes per-lookup counters into it.
    """

    def __init__(
        self,
        cluster: Cluster,
        rng: Optional[random.Random] = None,
        retry_policy: Optional[RetryPolicy] = None,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self._cluster = cluster
        self._rng = rng if rng is not None else cluster.rng
        self.retry_policy = retry_policy
        self.tracer = tracer
        self.metrics = metrics

    def __getattr__(self, name: str):
        if name in _REMOVED_METHODS:
            raise AttributeError(
                f"Client.{name} was removed (deprecated since the unified "
                f"lookup API landed); use {_REMOVED_METHODS[name]} instead"
            )
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # -- server orderings -----------------------------------------------------

    def random_order(self) -> List[int]:
        """All server ids in a fresh uniformly random order."""
        return random_order(self._cluster.size, self._rng)

    def stride_order(self, start: int, stride: int) -> List[int]:
        """The Round-Robin-y contact sequence ``start, start+stride, ...``.

        See :func:`repro.protocol.lookup.stride_order`; the walk logic
        lives in the protocol package so both drivers share it.
        """
        return stride_order(self._cluster.size, start, stride, self._rng)

    def _resolve_order(self, order: Order) -> Tuple[List[int], str]:
        """Materialize an :data:`Order` into server ids plus a trace label.

        The RNG draws are exactly those of the legacy methods —
        ``"random"`` is one shuffle, a :class:`Stride` is one
        ``random_server_id`` draw then the stride walk — so seeded
        runs are unchanged by the unified API.
        """
        if isinstance(order, Stride):
            start = self._cluster.random_server_id()
            return self.stride_order(start, order.y), str(order)
        return self.random_order(), "random"

    # -- the lookup skeleton -----------------------------------------------------

    def lookup(
        self,
        key: str,
        target: int,
        *,
        order: Order = "random",
        max_servers: Optional[int] = None,
        per_server_target: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        tracer: Optional["Tracer"] = None,
        options: Optional[LookupOptions] = None,
    ) -> LookupResult:
        """Look up ``target`` distinct entries for ``key``.

        The single lookup entry point: ``order`` selects the contact
        sequence (``"random"`` or ``Stride(y)``), everything else is
        keyword-only and inherits the client's defaults.  Pass a
        pre-built frozen :class:`LookupOptions` as ``options`` to
        reuse one configuration across calls (the individual keywords
        must then be left at their defaults).
        """
        if options is None:
            options = LookupOptions(
                order=order,
                max_servers=max_servers,
                per_server_target=per_server_target,
                retry=retry,
                tracer=tracer,
            )
        elif (
            order != "random"
            or max_servers is not None
            or per_server_target is not None
            or retry is not None
            or tracer is not None
        ):
            raise InvalidParameterError(
                "pass either individual lookup keywords or options=, not both"
            )
        order_ids, order_label = self._resolve_order(options.order)
        return self.collect(
            key,
            target,
            order_ids,
            max_servers=options.max_servers,
            per_server_target=options.per_server_target,
            retry=options.retry,
            tracer=options.tracer,
            trace_label=order_label,
        )

    def collect(
        self,
        key: str,
        target: int,
        order: Iterable[int],
        max_servers: Optional[int] = None,
        per_server_target: Optional[int] = None,
        *,
        retry: Optional[RetryPolicy] = None,
        tracer: Optional["Tracer"] = None,
        trace_label: Optional[str] = None,
    ) -> LookupResult:
        """Contact servers in ``order`` until ``target`` entries merge.

        Builds a :class:`~repro.protocol.lookup.LookupSession` over
        ``order`` and pumps it through the simulated network; all
        merge/stop/retry decisions are the session's.  See
        :meth:`lookup` for the parameter semantics; ``order`` here is
        an explicit server-id sequence (failed servers are skipped
        without counting toward the lookup cost, per Section 4.2's
        no-failure cost model).

        When a :class:`RetryPolicy` is in effect and the first pass
        comes up short with unanswered servers remaining, the session
        makes further passes over those servers (dropped contacts
        first) until the target is met, the attempts run out, or the
        backoff budget is exhausted.
        """
        if tracer is None:
            tracer = self.tracer
        session = LookupSession(
            key,
            target,
            order,
            max_servers=max_servers,
            per_server_target=per_server_target,
            retry_policy=self.retry_policy if retry is None else retry,
            rng=self._rng,
            trace=tracer is not None,
            trace_label=trace_label,
        )
        result = self._pump(session, tracer)
        if self.metrics is not None:
            self._publish(result)
        return result

    def _pump(
        self, session: LookupSession, tracer: Optional["Tracer"]
    ) -> LookupResult:
        """Enact the session's effects against the simulated network.

        ``SendRequest`` becomes a synchronous ``network.send`` whose
        outcome (reply / failed / dropped) is fed straight back;
        ``Sleep`` is accounted by the session and needs no enactment
        here — the transport is synchronous, so the driver acknowledges
        it immediately.  Trace effects go to ``tracer``.
        """
        network = self._cluster.network
        span = None
        effects = session.start()
        while True:
            event: Optional[Event] = None
            for effect in effects:
                if isinstance(effect, SendRequest):
                    reply = network.send(
                        effect.server_id, effect.key, effect.request
                    )
                    if is_undelivered(reply):
                        event = ContactFailed(
                            effect.server_id, dropped=reply is DROPPED
                        )
                    else:
                        event = ReplyReceived(effect.server_id, reply)
                elif isinstance(effect, Sleep):
                    # Accounted, not enacted: the simulated transport
                    # is synchronous, so backoff only shows up in the
                    # result's ``backoff`` field.
                    event = SLEPT
                elif isinstance(effect, Complete):
                    return effect.result
                elif isinstance(effect, SpanStart):
                    span = tracer.begin_span(effect.name, **effect.fields)
                elif isinstance(effect, SpanEvent):
                    tracer.event(effect.name, parent=span, **effect.fields)
                elif isinstance(effect, SpanEnd):
                    tracer.end_span(span, **effect.fields)
            effects = session.on_event(event)

    def _publish(self, result: LookupResult) -> None:
        """Publish one lookup's outcome into the metrics registry."""
        metrics = self.metrics
        metrics.counter("client.lookups").inc()
        metrics.histogram("client.lookup_cost").observe(result.lookup_cost)
        if result.retries:
            metrics.counter("client.retries").inc(result.retries)
            metrics.histogram("client.backoff").observe(result.backoff)
        if result.degraded:
            metrics.counter("client.degraded").inc()
