"""Unit tests for the client-side lookup driver."""

import pytest

from repro.cluster.client import Client
from repro.cluster.cluster import Cluster
from repro.cluster.messages import LookupRequest
from repro.cluster.server import ServerLogic
from repro.core.entry import Entry, make_entries


class _FixedReplyLogic(ServerLogic):
    """Each server replies with its pre-assigned entry list."""

    def __init__(self, replies):
        self.replies = replies

    def handle(self, server, message, network):
        assert isinstance(message, LookupRequest)
        stock = self.replies.get(server.server_id, [])
        if message.target <= 0 or message.target >= len(stock):
            return list(stock)
        return stock[: message.target]


def _cluster_with_replies(size, replies, seed=1):
    cluster = Cluster(size, seed=seed)
    logic = _FixedReplyLogic(replies)
    for server in cluster.servers:
        server.install_logic("k", logic)
    return cluster


class TestOrderings:
    def test_random_order_is_permutation(self, cluster):
        client = Client(cluster)
        order = client.random_order()
        assert sorted(order) == list(range(10))

    def test_stride_order_disjoint_walk(self, cluster):
        client = Client(cluster)
        order = client.stride_order(start=3, stride=3)
        assert order[:4] == [3, 6, 9, 2]
        assert sorted(order) == list(range(10))

    def test_stride_order_with_common_factor_completes(self, cluster):
        client = Client(cluster)
        order = client.stride_order(start=0, stride=2)
        # Walk covers the even ids, then random leftovers cover odds.
        assert order[:5] == [0, 2, 4, 6, 8]
        assert sorted(order) == list(range(10))

    def test_stride_one_is_sequential(self, cluster):
        client = Client(cluster)
        assert client.stride_order(7, 1) == [7, 8, 9, 0, 1, 2, 3, 4, 5, 6]


class TestCollect:
    def test_stops_at_target(self):
        replies = {i: make_entries(5, start=1 + 5 * i) for i in range(4)}
        cluster = _cluster_with_replies(4, replies)
        result = Client(cluster).collect("k", 8, order=[0, 1, 2, 3])
        assert len(result) == 8
        assert result.lookup_cost == 2
        assert result.success

    def test_trims_to_exactly_target(self):
        replies = {0: make_entries(10)}
        cluster = _cluster_with_replies(1, replies)
        result = Client(cluster).collect("k", 7, order=[0])
        assert len(result) == 7

    def test_merges_distinct_across_servers(self):
        shared = make_entries(4)
        replies = {0: shared, 1: shared, 2: make_entries(4, start=5)}
        cluster = _cluster_with_replies(3, replies)
        result = Client(cluster).collect("k", 8, order=[0, 1, 2])
        assert len(result) == 8
        assert result.lookup_cost == 3  # server 1 contributed nothing new

    def test_target_zero_contacts_everyone(self):
        replies = {i: make_entries(2, start=1 + 2 * i) for i in range(4)}
        cluster = _cluster_with_replies(4, replies)
        result = Client(cluster).collect("k", 0, order=[0, 1, 2, 3])
        assert len(result) == 8
        assert result.lookup_cost == 4

    def test_exhausting_servers_reports_failure(self):
        replies = {0: make_entries(2), 1: make_entries(2)}
        cluster = _cluster_with_replies(2, replies)
        result = Client(cluster).collect("k", 5, order=[0, 1])
        assert not result.success
        assert len(result) == 2

    def test_failed_servers_skipped_not_costed(self):
        replies = {i: make_entries(3, start=1 + 3 * i) for i in range(3)}
        cluster = _cluster_with_replies(3, replies)
        cluster.fail(0)
        result = Client(cluster).collect("k", 6, order=[0, 1, 2])
        assert result.success
        assert result.lookup_cost == 2
        assert result.failed_contacts == (0,)

    def test_max_servers_cap(self):
        replies = {i: make_entries(2, start=1 + 2 * i) for i in range(4)}
        cluster = _cluster_with_replies(4, replies)
        result = Client(cluster).collect("k", 8, order=[0, 1, 2, 3], max_servers=1)
        assert result.lookup_cost == 1
        assert not result.success

    def test_messages_equal_contacts(self):
        replies = {i: make_entries(3, start=1 + 3 * i) for i in range(3)}
        cluster = _cluster_with_replies(3, replies)
        result = Client(cluster).collect("k", 6, order=[0, 1, 2])
        assert result.messages == result.lookup_cost

    def test_trim_is_uniform_over_last_reply(self):
        # Asking 1 entry from a 4-entry server: each should win ~25%.
        replies = {0: make_entries(4)}
        cluster = _cluster_with_replies(1, replies, seed=77)
        client = Client(cluster)
        counts = {e.entry_id: 0 for e in make_entries(4)}
        trials = 4000
        for _ in range(trials):
            # per_server_target=0 forces the server to return all 4 so
            # the client-side trim does the selection.
            result = client.collect("k", 1, order=[0], per_server_target=0)
            counts[result.entries[0].entry_id] += 1
        for count in counts.values():
            assert abs(count / trials - 0.25) < 0.04
