"""RandomServer-x: an independent random ``x``-subset per server (§3.3, §5.3).

Like Fixed-x, each server stores at most ``x`` entries, but each picks
its own uniformly random subset, so different servers return different
answers — much better fairness (Figure 9) and an expected coverage of
``h·(1 − (1 − x/h)^n)`` instead of exactly ``x`` — at the cost of
sometimes needing several servers per lookup.

Dynamically, every update must be broadcast (any server might be
affected), and each server maintains its subset's uniformity under
adds with Vitter's reservoir-sampling rule [8]: on the arrival of the
``h``-th entry, keep it with probability ``x/h``, evicting a random
incumbent.  Deletes use the same cushion scheme as Fixed-x (no
replacement is fetched); the paper shows fairness decays toward
Fixed-x's under sustained churn either way (Figure 13).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.entry import Entry
from repro.core.exceptions import InvalidParameterError
from repro.core.result import LookupResult
from repro.cluster.cluster import Cluster
from repro.cluster.messages import (
    AddRequest,
    DeleteRequest,
    FetchReplacement,
    Message,
    PlaceRequest,
    RemoveMessage,
    StoreMessage,
    StoreSetMessage,
)
from repro.cluster import is_undelivered
from repro.cluster.network import Network
from repro.cluster.server import Server
from repro.strategies.base import LookupProfile, PlacementStrategy, StrategyLogic


class _RandomServerLogic(StrategyLogic):
    """Server behaviour for RandomServer-x.

    Each server tracks its own estimate of ``h`` (the system-wide
    entry count) in its per-key state; the estimate stays exact
    because every add and delete is broadcast to every server.
    """

    def handle_message(self, server: Server, message: Message, network: Network) -> Any:
        store = server.store(self.key)
        state = server.state(self.key)
        x = self.strategy.x
        if isinstance(message, PlaceRequest):
            network.broadcast(self.key, StoreSetMessage(message.entries))
            return True
        if isinstance(message, AddRequest):
            network.broadcast(self.key, StoreMessage(message.entry))
            return True
        if isinstance(message, DeleteRequest):
            network.broadcast(self.key, RemoveMessage(message.entry))
            return True
        if isinstance(message, StoreSetMessage):
            # Independently select a uniformly random x-subset of the
            # placed entries (all of them if there are fewer than x).
            state["h"] = len(message.entries)
            store.clear()
            if len(message.entries) <= x:
                chosen = list(message.entries)
            else:
                chosen = self.rng.sample(list(message.entries), x)
            for entry in chosen:
                store.add(entry)
            return True
        if isinstance(message, StoreMessage):
            return self._reservoir_add(store, state, message.entry, x)
        if isinstance(message, RemoveMessage):
            state["h"] = max(0, state.get("h", 0) - 1)
            removed = store.discard(message.entry)
            if removed and self.strategy.delete_mode == "replace":
                self._fetch_replacement(server, message.entry, network)
            return removed
        if isinstance(message, FetchReplacement):
            excluded = set(message.exclude_ids)
            candidates = [e for e in store if e.entry_id not in excluded]
            if not candidates:
                return None
            return self.rng.choice(candidates)
        raise TypeError(f"RandomServer-x cannot handle {type(message).__name__}")

    def _fetch_replacement(
        self, server: Server, deleted: Entry, network: Network
    ) -> bool:
        """§5.3's active-replacement alternative to the cushion scheme.

        The deleting server refills its subset by asking peers, in
        random order, for a random entry it does not already hold.
        Costly (extra point-to-point round trips per delete) and, as
        the paper notes, no better for fairness — implemented so the
        tradeoff is measurable (see the cushion ablation bench).
        """
        store = server.store(self.key)
        # Exclude the deleted entry too: a peer later in the delete
        # broadcast's delivery order still holds it and must not hand
        # it back as its own "replacement".
        exclude = tuple(entry.entry_id for entry in store) + (deleted.entry_id,)
        peers = [
            other.server_id
            for other in network.servers
            if other.server_id != server.server_id
        ]
        self.rng.shuffle(peers)
        for peer_id in peers:
            reply = network.send(peer_id, self.key, FetchReplacement(exclude))
            if is_undelivered(reply) or reply is None:
                continue
            store.add(reply)
            return True
        return False

    def _reservoir_add(self, store, state, entry: Entry, x: int) -> bool:
        """Vitter's reservoir step: keep the h-th arrival w.p. x/h."""
        h = state.get("h", 0) + 1
        state["h"] = h
        if entry in store:
            return False
        if len(store) < x:
            store.add(entry)
            return True
        if self.rng.random() < x / h:
            store.pop_random(self.rng)
            store.add(entry)
            return True
        return False


class RandomServerX(PlacementStrategy):
    """Each server keeps its own uniformly random ``x``-entry subset.

    Parameters
    ----------
    cluster:
        The server cluster.
    x:
        Per-server subset size.  Unlike Fixed-x, ``x`` need not bound
        the target answer size: a client wanting more than ``x``
        entries merges answers from several servers.

    >>> from repro.cluster import Cluster
    >>> from repro.core.entry import make_entries
    >>> strategy = RandomServerX(Cluster(10, seed=7), x=20)
    >>> _ = strategy.place(make_entries(100))
    >>> strategy.storage_cost()
    200
    >>> 60 <= strategy.coverage() <= 100   # E[coverage] ≈ 89.3
    True
    """

    name = "random_server"

    #: Valid delete modes: the paper's default cushion scheme, and the
    #: §5.3 active-replacement alternative.
    DELETE_MODES = ("cushion", "replace")

    def __init__(
        self,
        cluster: Cluster,
        x: int,
        key: str = "k",
        delete_mode: str = "cushion",
    ) -> None:
        self.x = self._require_positive(x, "x")
        if delete_mode not in self.DELETE_MODES:
            raise InvalidParameterError(
                f"delete_mode must be one of {self.DELETE_MODES}, got {delete_mode!r}"
            )
        self.delete_mode = delete_mode
        super().__init__(cluster, key)

    @classmethod
    def from_budget(
        cls, cluster: Cluster, storage_budget: int, key: str = "k"
    ) -> "RandomServerX":
        """Size ``x`` from a total storage budget: ``x = budget / n``."""
        return cls(cluster, x=max(1, storage_budget // cluster.size), key=key)

    def _build_logic(self) -> StrategyLogic:
        return _RandomServerLogic(self)

    def params(self) -> Dict[str, Any]:
        params: Dict[str, Any] = {"x": self.x}
        if self.delete_mode != "cushion":
            params["delete_mode"] = self.delete_mode
        return params

    def _do_place(self, entries: Tuple[Entry, ...]) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, PlaceRequest(entries))

    def _do_add(self, entry: Entry) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, AddRequest(entry))

    def _do_delete(self, entry: Entry) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, DeleteRequest(entry))

    def partial_lookup(self, target: int) -> LookupResult:
        # Contact servers in random order, merging distinct entries,
        # until the target is met or every server has been asked.
        return self.client.lookup(self.key, target)

    def lookup_profile(self) -> LookupProfile:
        return LookupProfile(order="random")
