"""Setup shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-use-pep517`` (the legacy ``setup.py develop``
path) works on offline machines that cannot build PEP 660 editable
wheels.
"""

from setuptools import setup

setup()
