"""Typed messages exchanged between clients and servers.

Each message carries a :class:`MessageCategory` so the network can keep
separate counters for update traffic (the Figure 14 overhead metric)
and lookup traffic (the Figure 4 lookup cost metric) without the
strategies having to thread accounting state around.

Message flow, matching the paper's protocol descriptions:

- A client sends a :class:`PlaceRequest`, :class:`AddRequest`,
  :class:`DeleteRequest`, or :class:`LookupRequest` to one server.
- The receiving server's strategy logic may then broadcast or send
  point-to-point :class:`StoreMessage` / :class:`RemoveMessage`
  (and, for Round-Robin deletes, :class:`RemoveWithHead`,
  :class:`MigrateRequest`, :class:`RemoveReplacement`) messages to
  other servers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.entry import Entry


class MessageCategory(enum.Enum):
    """Accounting bucket for a message.

    ``UPDATE`` messages count toward the Section 6.4 update overhead;
    ``LOOKUP`` messages count toward the Section 4.2 lookup cost.
    """

    UPDATE = "update"
    LOOKUP = "lookup"


@dataclass(frozen=True)
class Message:
    """Base class for all cluster messages."""

    @property
    def category(self) -> MessageCategory:
        return MessageCategory.UPDATE

    @property
    def payload_entries(self) -> int:
        """How many entries this message carries.

        The paper's §6.4 cost model counts *messages*; payload size is
        the second-order cost that separates schemes with identical
        message counts (e.g. RandomServer's reservoir add broadcasts
        one entry, while a naive re-place broadcast ships all ``h``).
        Control messages carry zero.
        """
        return 0


# --------------------------------------------------------------------------
# Client → server requests
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PlaceRequest(Message):
    """Client request to (re)place a key's full entry set in batch."""

    entries: tuple[Entry, ...]

    @property
    def payload_entries(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class AddRequest(Message):
    """Client request to add one entry."""

    entry: Entry

    @property
    def payload_entries(self) -> int:
        return 1


@dataclass(frozen=True)
class DeleteRequest(Message):
    """Client request to delete one entry."""

    entry: Entry

    @property
    def payload_entries(self) -> int:
        return 1


@dataclass(frozen=True)
class LookupRequest(Message):
    """Client request for up to ``target`` entries from one server.

    The server replies with ``min(target, |local store|)`` randomly
    selected local entries (every strategy in Section 3 specifies this
    per-server behaviour identically).  ``target = 0`` means "send
    everything you have", used to implement traditional full lookups.
    """

    target: int

    @property
    def category(self) -> MessageCategory:
        return MessageCategory.LOOKUP


# --------------------------------------------------------------------------
# Server → server messages
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class StoreMessage(Message):
    """Instruct a server to store one entry locally."""

    entry: Entry

    @property
    def payload_entries(self) -> int:
        return 1


@dataclass(frozen=True)
class StoreSetMessage(Message):
    """Instruct a server to consider a batch of entries.

    Used by the broadcast phase of full replication, Fixed-x, and
    RandomServer-x, where each receiving server decides locally which
    subset of the batch to keep.
    """

    entries: tuple[Entry, ...]

    @property
    def payload_entries(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class RemoveMessage(Message):
    """Instruct a server to delete its local copy of one entry."""

    entry: Entry

    @property
    def payload_entries(self) -> int:
        return 1


@dataclass(frozen=True)
class RemoveWithHead(Message):
    """Round-Robin delete broadcast carrying the head counter.

    Figure 11's ``remove(v, head)``: every server deletes its local
    copy of ``entry``; servers that held a copy then ask the ``head``
    server for a replacement to plug the hole in the round-robin
    sequence.
    """

    entry: Entry
    head: int

    @property
    def payload_entries(self) -> int:
        return 1


@dataclass(frozen=True)
class StorePositioned(Message):
    """Instruct a server to store one entry at a round-robin position.

    Round-Robin-y placement is positional: the entry occupying
    sequence position ``p`` lives on servers ``p .. p+y-1 (mod n)``,
    and the delete protocol moves the head entry into the hole a
    deletion leaves.  Servers therefore remember each local entry's
    position; this message carries it.
    """

    entry: Entry
    position: int

    @property
    def payload_entries(self) -> int:
        return 1


@dataclass(frozen=True)
class SetCounters(Message):
    """Initialize the head/tail counters on the counter host (server 1).

    Sent once by the server that handles a ``place`` batch, after it
    has dealt entries out round-robin.
    """

    head: int
    tail: int


@dataclass(frozen=True)
class QueryCounters(Message):
    """Ask a counter replica for its current (head, tail) values.

    Used by the replicated-counter extension (§5.4 footnote): before
    sequencing an update, a counter host reconciles with its fellow
    replicas by taking the element-wise max of their counters, so a
    replica that recovered from a failure cannot sequence from stale
    values.  The reply is a ``(head, tail)`` tuple.
    """


@dataclass(frozen=True)
class MigrateRequest(Message):
    """Round-Robin request to the head server for a replacement entry.

    Figure 11's ``migrate(v)``; the head server replies with the
    replacement entry ``R[v]`` (or None when no replacement is needed,
    e.g. the deleted entry *was* the head entry) and, once all ``y``
    holes are plugged, tells the replacement's original holders to
    drop their old copies.  ``head`` is the sequence position the
    replacement is taken from, forwarded from the delete broadcast so
    the head server can resolve ``R[v]`` lazily regardless of message
    ordering.
    """

    entry: Entry
    head: int
    new_position: int

    @property
    def payload_entries(self) -> int:
        return 1


@dataclass(frozen=True)
class RemoveReplacement(Message):
    """Round-Robin instruction to drop a migrated replacement entry.

    Figure 11's final ``remove(u)``: the replacement entry ``u`` has
    moved into the hole left by the deletion, so its old copies are
    deleted to keep exactly ``y`` copies of every entry.  ``position``
    is the head position the copy was stored under; a server whose
    copy of ``u`` has already been re-positioned into the hole keeps
    it (it is the same physical store slot serving the new position).
    """

    entry: Entry
    position: int

    @property
    def payload_entries(self) -> int:
        return 1


@dataclass(frozen=True)
class FetchReplacement(Message):
    """Ask a server for one random entry outside an exclusion set.

    Used by RandomServer-x's *active replacement* delete mode (the
    §5.3 alternative to the cushion scheme): after deleting an entry,
    a server refills its subset by fetching a random entry it does not
    already hold from a peer.  The reply is an :class:`Entry` or None
    when the peer has nothing new to offer.
    """

    exclude_ids: tuple[str, ...]

    @property
    def payload_entries(self) -> int:
        return len(self.exclude_ids)


@dataclass(frozen=True)
class IncrementCount(Message):
    """Tell a server the system-wide entry count changed by ``delta``.

    RandomServer-x servers maintain a local estimate of ``h`` (the
    total number of entries in the system) to run Vitter's reservoir
    coin flip on each add (Section 5.3).  The paper piggybacks this on
    the store/remove broadcasts; we model it explicitly so the counter
    updates are visible in tests.
    """

    delta: int


# --------------------------------------------------------------------------
# Shard ↔ shard messages (the network deployment's membership layer)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Heartbeat(Message):
    """One shard's liveness beacon to a peer shard.

    Carried only over the socket layer (the ``heartbeat`` envelope op
    of :mod:`repro.net`) — never routed through the simulated
    :class:`~repro.cluster.network.Network`, so it does not perturb
    the §6.4 message accounting.  ``view`` is the sender's gossiped
    membership view as ``(peer, state, incarnation)`` triples; the
    receiver merges incarnations and learns unknown peers from it
    (see :class:`~repro.protocol.membership.MembershipProtocol`).
    """

    sender: str
    incarnation: int
    view: tuple[tuple[str, str, int], ...]


def known_message_types() -> frozenset:
    """Names of every concrete message type (the protocol step names).

    Fault plans reference protocol steps by message type name (e.g. a
    crash point "after the 2nd ``RemoveWithHead``"); validating those
    names against this set catches typos at plan construction instead
    of silently never firing.  Computed from the live class hierarchy
    so new message types are automatically addressable.
    """

    def subclasses(cls: type) -> set:
        direct = set(cls.__subclasses__())
        for sub in direct.copy():
            direct.update(subclasses(sub))
        return direct

    return frozenset(cls.__name__ for cls in subclasses(Message))
