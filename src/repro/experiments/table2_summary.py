"""Table 2: the strategy/metric star-rating summary, re-derived.

The paper closes with an informal star table (more stars = more
suitable) over the four partial schemes and seven metric regimes.
This experiment *re-derives* the table from measurements: every cell
starts as a measured quantity (storage at small/large h, coverage,
fault tolerance, static/dynamic unfairness, lookup cost, update
overhead at small/large target ratios), and stars are assigned by
ranking the four schemes per column (best = 4 stars, worst = 1; ties
share the better rank).

The measured table is the reproduction artifact; DESIGN.md notes that
the star glyphs in the available paper text are OCR-garbled, so the
comparison in EXPERIMENTS.md is against the paper's *prose* claims
(e.g. "Fixed-x for best fault tolerance", "only full replication and
round-robin are perfectly fair").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.analysis.exact import exact_lookup_cost
from repro.cluster.cluster import Cluster
from repro.core.exceptions import InvalidParameterError
from repro.experiments.parallel import RunExecutor, make_executor
from repro.experiments.placement_cache import PlacementCache
from repro.experiments.runner import (
    ExperimentResult,
    average_runs,
    average_runs_multi,
)
from repro.metrics.fault_tolerance import greedy_fault_tolerance
from repro.metrics.lookup_cost import estimate_lookup_cost
from repro.metrics.unfairness import estimate_unfairness
from repro.simulation.events import AddEvent, DeleteEvent
from repro.simulation.replay import TraceReplayer
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY
from repro.workload.generator import SteadyStateWorkload

STRATEGIES = ("fixed", "random_server", "round_robin", "hash")

#: Column name -> True if larger measured values deserve more stars.
HIGHER_IS_BETTER = {
    "storage_small_h": False,
    "storage_large_h": False,
    "coverage": True,
    "fault_tolerance": True,
    "fairness_static": False,
    "fairness_dynamic": False,
    "lookup_cost": False,
    "update_overhead_small_t": False,
    "update_overhead_large_t": False,
}


@dataclass(frozen=True)
class Table2Config:
    server_count: int = 10
    #: The canonical mid-size workload (matches Figures 4/6/7/9).
    entry_count: int = 100
    storage_budget: int = 200
    target: int = 35
    #: Target for the fault-tolerance column, kept within Fixed-x's
    #: coverage so the column compares all four schemes in the regime
    #: Table 2 discusses ("use Fixed-x for best fault tolerance when
    #: coverage is not important", §4.4).
    fault_tolerance_target: int = 15
    small_h: int = 20
    large_h: int = 400
    churn_updates: int = 1000
    update_trace_length: int = 1000
    lookups: int = 1000
    runs: int = 3
    seed: int = 22
    #: "mc" (paper default), "auto" (closed forms for Fixed-x and
    #: Round-Robin-y cells that have one, MC otherwise — the
    #: recommended fast setting), or "exact" (strict; raises on the
    #: stochastic schemes, so it is not usable for the full table).
    estimator: str = "mc"


def _build(name: str, cluster: Cluster, x: int, y: int, key: str = "k"):
    if name == "fixed":
        return FixedX(cluster, x=x, key=key)
    if name == "random_server":
        return RandomServerX(cluster, x=x, key=key)
    if name == "round_robin":
        return RoundRobinY(cluster, y=y, key=key)
    if name == "hash":
        return HashY(cluster, y=y, key=key)
    raise ValueError(name)


#: Table 2 builds the *same* seeded placement for its static-metric
#: cells and again for its lookup-cost cell; the per-process cache
#: dedupes those builds.  Handouts restore the post-place RNG state,
#: stores, and message counters, so every cell value is identical to
#: what a fresh placement would measure.
_PLACEMENTS = PlacementCache()


def _place_static(config: Table2Config, name: str, entry_count: int, seed: int):
    """Placement of ``name`` at the canonical budget (cached per process)."""
    x = max(1, config.storage_budget // config.server_count)
    y = max(1, min(config.server_count, config.storage_budget // entry_count))
    params = {"x": x} if name in ("fixed", "random_server") else {"y": y}
    return _PLACEMENTS.placed(
        name, entry_count, config.server_count, seed, **params
    )


def _storage_cell(
    config: Table2Config, name: str, entry_count: int, seed: int
) -> float:
    strategy, _ = _place_static(config, name, entry_count, seed)
    return float(strategy.storage_cost())


def _lookup_cell(config: Table2Config, name: str, seed: int) -> float:
    strategy, _ = _place_static(config, name, config.entry_count, seed)
    if config.estimator in ("exact", "auto"):
        estimate = exact_lookup_cost(strategy, config.target)
        if estimate is not None:
            return estimate.mean_cost
        if config.estimator == "exact":
            raise InvalidParameterError(
                f"no exact lookup-cost form for {type(strategy).__name__} "
                f"(use estimator='mc' or 'auto')"
            )
    return estimate_lookup_cost(strategy, config.target, config.lookups).mean_cost


def _static_cells(config: Table2Config, name: str, seed: int) -> Dict[str, float]:
    """Coverage, fault tolerance, and static fairness off ONE placement.

    The three metrics share a placement instance: coverage and the
    greedy adversary consume no randomness, so measuring them before
    the fairness estimate leaves every RNG draw — and therefore every
    cell value — identical to giving each metric its own placement,
    at a third of the placement work.
    """
    strategy, entries = _place_static(config, name, config.entry_count, seed)
    return {
        "coverage": float(strategy.coverage()),
        "fault_tolerance": float(
            greedy_fault_tolerance(strategy, config.fault_tolerance_target)
        ),
        "fairness_static": estimate_unfairness(
            strategy,
            config.target,
            entries,
            config.lookups,
            estimator=config.estimator,
        ).unfairness,
    }


def _churned_unfairness(config: Table2Config, name: str, seed: int) -> float:
    """Unfairness after a steady-state churn burst (the §6.3 regime)."""
    x = max(1, config.storage_budget // config.server_count)
    y = max(1, min(config.server_count, config.storage_budget // config.entry_count))
    rng = random.Random(seed)
    workload = SteadyStateWorkload(config.entry_count, rng=rng)
    trace = workload.generate(config.churn_updates)
    cluster = Cluster(config.server_count, seed=seed)
    strategy = _build(name, cluster, x, y)
    strategy.place(trace.initial_entries)
    live = {e.entry_id: e for e in trace.initial_entries}
    for event in trace.events:
        if isinstance(event, AddEvent):
            strategy.add(event.entry)
            live[event.entry.entry_id] = event.entry
        elif isinstance(event, DeleteEvent):
            strategy.delete(event.entry)
            live.pop(event.entry.entry_id, None)
    universe = list(live.values())
    return estimate_unfairness(
        strategy,
        min(config.target, max(1, len(universe))),
        universe,
        config.lookups,
        estimator=config.estimator,
    ).unfairness


def _update_overhead(
    config: Table2Config, name: str, entry_count: int, target: int, seed: int
) -> float:
    """Messages per update under steady-state churn."""
    x = target + 10
    y = max(1, -(-target * config.server_count // entry_count))  # ceil
    rng = random.Random(seed)
    workload = SteadyStateWorkload(entry_count, rng=rng)
    trace = workload.generate(config.update_trace_length)
    cluster = Cluster(config.server_count, seed=seed)
    strategy = _build(name, cluster, x, min(y, config.server_count))
    strategy.place(trace.initial_entries)
    cluster.reset_stats()
    stats = TraceReplayer(strategy).replay(trace.events)
    return stats.update_messages / max(1, trace.update_count)


def measure_all(
    config: Table2Config = Table2Config(),
    executor: Optional[RunExecutor] = None,
) -> Dict[str, Dict[str, float]]:
    """Measured value for every (strategy, column) cell."""
    cells: Dict[str, Dict[str, float]] = {}
    for name in STRATEGIES:
        static = average_runs_multi(
            partial(_static_cells, config, name),
            config.seed,
            config.runs,
            executor=executor,
        )
        runners: Dict[str, Callable[[int], float]] = {
            "storage_small_h": partial(_storage_cell, config, name, config.small_h),
            "storage_large_h": partial(_storage_cell, config, name, config.large_h),
            "fairness_dynamic": partial(_churned_unfairness, config, name),
            "lookup_cost": partial(_lookup_cell, config, name),
            "update_overhead_small_t": partial(_update_overhead, config, name, 300, 10),
            "update_overhead_large_t": partial(_update_overhead, config, name, 100, 40),
        }
        averaged = {
            column: average_runs(
                run_once, config.seed, config.runs, executor=executor
            ).mean
            for column, run_once in runners.items()
        }
        # Canonical column order (matches HIGHER_IS_BETTER).
        cells[name] = {
            column: static[column].mean if column in static else averaged[column]
            for column in HIGHER_IS_BETTER
        }
    return cells


def assign_stars(cells: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, int]]:
    """Rank strategies per column into 4..1 stars (ties share rank)."""
    stars: Dict[str, Dict[str, int]] = {name: {} for name in cells}
    columns = next(iter(cells.values())).keys()
    for column in columns:
        best_high = HIGHER_IS_BETTER[column]
        values = [(cells[name][column], name) for name in cells]
        values.sort(key=lambda pair: pair[0], reverse=best_high)
        rank = 0
        previous = None
        for index, (value, name) in enumerate(values):
            if previous is None or abs(value - previous) > 1e-9:
                rank = index
            stars[name][column] = 4 - rank if rank < 4 else 1
            previous = value
    return stars


def run(
    config: Table2Config = Table2Config(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the Table 2 summary (stars derived from measurements)."""
    with make_executor(jobs) as executor:
        cells = measure_all(config, executor)
    stars = assign_stars(cells)
    columns = list(HIGHER_IS_BETTER)
    result = ExperimentResult(
        name="Table 2: measured strategy summary (stars = per-column rank)",
        headers=["strategy"] + columns,
        meta={"h": config.entry_count, "n": config.server_count, "t": config.target},
    )
    if config.estimator != "mc":
        result.meta["estimator"] = config.estimator
    for name in STRATEGIES:
        row: Dict[str, object] = {"strategy": name}
        for column in columns:
            row[column] = f"{'*' * stars[name][column]} ({cells[name][column]:.3g})"
        result.rows.append(row)
    return result
