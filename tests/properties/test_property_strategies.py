"""Property-based tests over the placement strategies.

Random parameters and random update sequences must never violate the
Section 2 service semantics or each scheme's structural invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@st.composite
def placements(draw):
    """(n, h, seed) triples spanning the interesting small regimes."""
    n = draw(st.integers(min_value=1, max_value=12))
    h = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, h, seed


@given(placements())
@settings(max_examples=40, deadline=None)
def test_full_replication_always_h_times_n(params):
    n, h, seed = params
    strategy = FullReplication(Cluster(n, seed=seed))
    strategy.place(make_entries(h))
    assert strategy.storage_cost() == h * n
    assert strategy.coverage() == h


@given(placements(), st.integers(min_value=1, max_value=30))
@settings(max_examples=40, deadline=None)
def test_fixed_storage_and_coverage_bounds(params, x):
    n, h, seed = params
    strategy = FixedX(Cluster(n, seed=seed), x=x)
    strategy.place(make_entries(h))
    assert strategy.storage_cost() == min(x, h) * n
    assert strategy.coverage() == min(x, h)


@given(placements(), st.integers(min_value=1, max_value=30))
@settings(max_examples=40, deadline=None)
def test_random_server_per_server_exactly_min_x_h(params, x):
    n, h, seed = params
    strategy = RandomServerX(Cluster(n, seed=seed), x=x)
    strategy.place(make_entries(h))
    assert strategy.cluster.store_sizes("k") == [min(x, h)] * n
    assert min(x, h) <= strategy.coverage() <= h


@given(placements(), st.integers(min_value=1, max_value=12))
@settings(max_examples=40, deadline=None)
def test_round_robin_exactly_y_copies(params, y):
    n, h, seed = params
    if y > n:
        y = n
    strategy = RoundRobinY(Cluster(n, seed=seed), y=y)
    strategy.place(make_entries(h))
    counts = strategy.cluster.replica_counts("k")
    assert len(counts) == h
    assert all(count == y for count in counts.values())
    sizes = strategy.cluster.store_sizes("k")
    assert max(sizes) - min(sizes) <= y


@given(placements(), st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_hash_stores_each_entry_one_to_y_times(params, y):
    n, h, seed = params
    strategy = HashY(Cluster(n, seed=seed), y=y)
    strategy.place(make_entries(h))
    counts = strategy.cluster.replica_counts("k")
    assert len(counts) == h  # complete coverage
    assert all(1 <= count <= min(y, n) for count in counts.values())


@given(placements(), st.integers(min_value=0, max_value=50))
@settings(max_examples=30, deadline=None)
def test_lookup_never_exceeds_coverage_or_fails_within_it(params, target):
    n, h, seed = params
    strategy = RoundRobinY(Cluster(n, seed=seed), y=1)
    strategy.place(make_entries(h))
    result = strategy.partial_lookup(target)
    if target == 0 or target <= strategy.coverage():
        assert result.success
    else:
        assert not result.success
    listed = [e.entry_id for e in result.entries]
    assert len(listed) == len(set(listed))
