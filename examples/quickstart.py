"""Quickstart: a partial lookup service in a dozen lines.

A lookup service maps keys to sets of entries; a *partial* lookup
returns just the few entries a client actually needs instead of the
whole set (Sun & Garcia-Molina, ICDCS 2003).  This example stands up a
10-server directory, places a key with 40 entries under the
Round-Robin-2 scheme, and shows lookups, updates, and the accounting
the library exposes.

Run:  python examples/quickstart.py
"""

from repro import Cluster, PartialLookupDirectory


def main() -> None:
    # A simulated 10-server cluster; seed it for a reproducible demo.
    cluster = Cluster(size=10, seed=2003)

    # Keys default to Round-Robin with 2 copies per entry: complete
    # coverage, perfectly fair answers, lowest partial-lookup cost.
    directory = PartialLookupDirectory(
        cluster, default_strategy="round_robin", default_params={"y": 2}
    )

    # Place a key: 40 hosts serving the song.
    hosts = [f"host-{i:02d}.example.net" for i in range(40)]
    directory.place("song/stairway-to-heaven", hosts)

    # A client needs three places to download from — not all 40.
    result = directory.partial_lookup("song/stairway-to-heaven", target=3)
    print(f"asked for 3 entries -> got {len(result)}:")
    for entry in result:
        print(f"   {entry}")
    print(f"servers contacted: {result.lookup_cost} (of {cluster.size})")

    # Incremental updates: a host joins, another leaves.
    directory.add("song/stairway-to-heaven", "host-99.example.net")
    directory.delete("song/stairway-to-heaven", hosts[0])

    # The placement stays consistent: every live host has 2 copies.
    print(f"\nstorage used: {directory.storage_cost()} entry-copies "
          f"({directory.coverage('song/stairway-to-heaven')} distinct hosts x 2)")

    # Full (traditional) lookup still works when someone wants it all.
    everything = directory.lookup("song/stairway-to-heaven")
    print(f"full lookup returns {len(everything)} hosts")

    # Lookups keep working through failures.
    cluster.fail(0)
    cluster.fail(1)
    survived = directory.partial_lookup("song/stairway-to-heaven", target=3)
    print(f"\nwith 2 servers down, lookup still returned "
          f"{len(survived)} entries (success={survived.success})")


if __name__ == "__main__":
    main()
