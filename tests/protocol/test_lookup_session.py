"""Conformance suite: recorded event traces through ``LookupSession``.

Each test replays a fixed sequence of events into the state machine
and asserts the exact effect sequence it emits — the sans-IO contract
both drivers (the simulated ``Client`` and the asyncio net client)
rely on: at most one response-requiring effect per batch, always
last; trace effects only when asked; ``Complete`` terminal.
"""

import random

import pytest

from repro.cluster.client import RetryPolicy
from repro.cluster.messages import LookupRequest
from repro.core.entry import Entry, make_entries
from repro.protocol import (
    Complete,
    ContactFailed,
    LookupSession,
    ProtocolStateError,
    ReplyReceived,
    SendRequest,
    Sleep,
    SpanEnd,
    SpanEvent,
    SpanStart,
    SLEPT,
)


def session(order, target=6, **kwargs):
    kwargs.setdefault("rng", random.Random(42))
    return LookupSession("k", target, order, **kwargs)


def reply(server_id, count, start=1):
    return ReplyReceived(server_id, make_entries(count, start=start))


class TestHappyPath:
    def test_walks_order_until_target_met(self):
        s = session([3, 1, 4], target=6)
        effects = s.start()
        assert [type(e) for e in effects] == [SendRequest]
        assert effects[0].server_id == 3
        assert effects[0].key == "k"
        assert isinstance(effects[0].request, LookupRequest)
        assert effects[0].request.target == 6

        effects = s.on_event(reply(3, 4, start=1))
        assert [type(e) for e in effects] == [SendRequest]
        assert effects[0].server_id == 1

        effects = s.on_event(reply(1, 4, start=3))  # 2 fresh, target met
        assert [type(e) for e in effects] == [Complete]
        assert s.done
        result = effects[0].result
        assert result is s.result
        assert result.success and not result.degraded
        assert len(result.entries) == 6
        assert result.servers_contacted == (3, 1)
        assert result.messages == 2
        assert result.retries == 0

    def test_entries_merge_distinct_by_id(self):
        s = session([0, 1], target=4)
        s.start()
        s.on_event(reply(0, 3))
        (complete,) = s.on_event(reply(1, 3))  # all 3 duplicate -> short
        # Both servers consumed, nothing fresh from the second.
        assert len(complete.result.entries) == 3
        assert complete.result.degraded

    def test_overshoot_reply_is_subsampled(self):
        # Final reply has more fresh entries than needed: the keeper
        # set is drawn via rng.sample, preserving fairness (§4.5).
        rng = random.Random(7)
        expect = random.Random(7).sample(make_entries(10), 4)
        s = session([5], target=4, rng=rng)
        s.start()
        (complete,) = s.on_event(reply(5, 10))
        assert list(complete.result.entries) == expect

    def test_target_zero_contacts_everyone(self):
        s = session([2, 0, 1], target=0)
        effects = s.start()
        seen = []
        while not s.done:
            seen.append(effects[0].server_id)
            assert effects[0].request.target == 0
            effects = s.on_event(reply(effects[0].server_id, 2))
        assert seen == [2, 0, 1]
        assert s.result.messages == 3

    def test_max_servers_caps_contacts(self):
        s = session([0, 1, 2, 3], target=100, max_servers=2)
        effects = s.start()
        effects = s.on_event(reply(0, 3, start=1))
        effects = s.on_event(reply(1, 3, start=10))
        assert [type(e) for e in effects] == [Complete]
        assert effects[0].result.servers_contacted == (0, 1)

    def test_per_server_target_overrides_request_size(self):
        s = session([0], target=6, per_server_target=2)
        effects = s.start()
        assert effects[0].request.target == 2


class TestFailuresAndRetries:
    def test_failed_servers_recorded_not_counted(self):
        s = session([0, 1, 2], target=4)
        s.start()
        s.on_event(ContactFailed(0, dropped=False))
        s.on_event(reply(1, 2))
        (complete,) = s.on_event(ContactFailed(2, dropped=True))
        result = complete.result
        assert result.failed_contacts == (0, 2)
        assert result.servers_contacted == (1,)
        assert result.messages == 1  # failed contacts cost nothing (§4.2)

    def test_retry_pass_dropped_first_then_shuffled_failed(self):
        policy = RetryPolicy(
            max_attempts=2, base_backoff=1.0, jitter=0.0, backoff_budget=10.0
        )
        rng = random.Random(3)
        # Replicate the session's draws: delay first, then the shuffle.
        twin = random.Random(3)
        expected_delay = policy.delay(0, twin)
        expected_failed = [1, 4, 6]
        twin.shuffle(expected_failed)

        s = LookupSession("k", 9, [0, 1, 4, 5, 6], retry_policy=policy, rng=rng)
        s.start()
        s.on_event(reply(0, 2))
        s.on_event(ContactFailed(1, dropped=False))
        s.on_event(ContactFailed(4, dropped=False))
        s.on_event(ContactFailed(5, dropped=True))
        effects = s.on_event(ContactFailed(6, dropped=False))
        assert [type(e) for e in effects] == [Sleep]
        assert effects[0].delay == expected_delay

        effects = s.on_event(SLEPT)
        walked = [effects[0].server_id]
        # Dropped contact 5 leads; failed contacts follow shuffled.
        assert walked[0] == 5
        effects = s.on_event(reply(5, 2, start=10))
        while effects and isinstance(effects[0], SendRequest):
            walked.append(effects[0].server_id)
            effects = s.on_event(ContactFailed(effects[0].server_id, dropped=False))
        assert walked == [5] + expected_failed
        assert s.done
        assert s.result.retries == 1
        assert s.result.backoff == expected_delay

    def test_no_retry_without_policy(self):
        s = session([0, 1], target=8)
        s.start()
        s.on_event(ContactFailed(0, dropped=True))
        (complete,) = s.on_event(ContactFailed(1, dropped=True))
        assert complete.result.retries == 0
        assert complete.result.degraded

    def test_budget_exhaustion_completes_degraded(self):
        policy = RetryPolicy(
            max_attempts=5, base_backoff=50.0, jitter=0.0, backoff_budget=10.0
        )
        s = session([0], target=4, retry_policy=policy)
        s.start()
        (complete,) = s.on_event(ContactFailed(0, dropped=True))
        assert isinstance(complete, Complete)
        assert complete.result.retries == 0
        assert complete.result.degraded

    def test_no_retry_when_all_servers_answered(self):
        # Short answer but nothing to re-contact: done, degraded.
        policy = RetryPolicy(max_attempts=3)
        s = session([0], target=9, retry_policy=policy)
        s.start()
        (complete,) = s.on_event(reply(0, 2))
        assert complete.result.degraded
        assert complete.result.retries == 0


class TestTraceEffects:
    def test_trace_effect_sequence(self):
        s = session([0, 1], target=4, trace=True, trace_label="random")
        effects = s.start()
        assert [type(e) for e in effects] == [SpanStart, SendRequest]
        span = effects[0]
        assert span.name == "lookup"
        assert span.fields == {"key": "k", "target": 4, "order": "random"}

        effects = s.on_event(ContactFailed(0, dropped=True))
        assert [type(e) for e in effects] == [SpanEvent, SendRequest]
        assert effects[0].fields["outcome"] == "dropped"

        effects = s.on_event(reply(1, 4))
        assert [type(e) for e in effects] == [SpanEvent, SpanEnd, Complete]
        assert effects[0].fields["outcome"] == "delivered"
        assert effects[1].fields["entries"] == 4
        assert effects[1].fields["degraded"] is False

    def test_untraced_session_emits_no_span_effects(self):
        s = session([0, 1], target=4)
        effects = s.start()
        while not s.done:
            assert all(
                not isinstance(e, (SpanStart, SpanEvent, SpanEnd)) for e in effects
            )
            effects = s.on_event(reply(effects[0].server_id, 2))

    def test_response_requiring_effect_is_always_last(self):
        policy = RetryPolicy(max_attempts=2, jitter=0.0)
        s = session([0, 1], target=9, retry_policy=policy, trace=True)
        effects = s.start()
        batches = [effects]
        events = iter(
            [
                ContactFailed(0, dropped=True),
                ContactFailed(1, dropped=False),
                SLEPT,
                reply(0, 3),
                ContactFailed(1, dropped=False),
            ]
        )
        while not s.done:
            effects = s.on_event(next(events))
            batches.append(effects)
        for batch in batches:
            responders = [
                e for e in batch if isinstance(e, (SendRequest, Sleep))
            ]
            assert len(responders) <= 1
            if responders:
                assert batch[-1] is responders[0]


class TestStateErrors:
    def test_start_twice_rejected(self):
        s = session([0])
        s.start()
        with pytest.raises(ProtocolStateError):
            s.start()

    def test_event_for_wrong_server_rejected(self):
        s = session([3, 1])
        s.start()
        with pytest.raises(ProtocolStateError):
            s.on_event(reply(1, 2))

    def test_slept_outside_backoff_rejected(self):
        s = session([0])
        s.start()
        with pytest.raises(ProtocolStateError):
            s.on_event(SLEPT)

    def test_unknown_event_rejected(self):
        s = session([0])
        s.start()
        with pytest.raises(ProtocolStateError):
            s.on_event(object())

    def test_result_none_until_done(self):
        s = session([0], target=2)
        assert s.result is None and not s.done
        s.start()
        s.on_event(reply(0, 2))
        assert s.done and s.result is not None


class TestOrderHelpers:
    def test_random_order_is_seeded_shuffle(self):
        from repro.protocol.lookup import random_order

        expect = list(range(8))
        random.Random(5).shuffle(expect)
        assert random_order(8, random.Random(5)) == expect

    def test_stride_order_walks_then_shuffles_leftovers(self):
        from repro.protocol.lookup import stride_order

        # gcd(2, 8) = 2: the walk covers only evens from 0.
        order = stride_order(8, 0, 2, random.Random(5))
        assert order[:4] == [0, 2, 4, 6]
        assert sorted(order[4:]) == [1, 3, 5, 7]

    def test_stride_order_full_cycle(self):
        from repro.protocol.lookup import stride_order

        assert stride_order(5, 2, 3, random.Random(0)) == [2, 0, 3, 1, 4]
