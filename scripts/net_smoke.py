#!/usr/bin/env python
"""Live-service smoke: boot ``repro serve``, drive ``repro call``, tear down.

CI's net-smoke job runs this script.  It starts the asyncio lookup
service as a real subprocess on an ephemeral port, waits for the
``--ready-file`` handshake, then runs ``repro call`` partial lookups
against every hosted scheme — checking, per scheme, that:

- every lookup met its target (``all_success``),
- the returned entry ids are distinct and drawn from the placed
  universe ``v1..vH``,
- the service's ``verify`` op reports full coverage (every placed
  entry retrievable from operational servers) and the scheme's exact
  expected storage cost.

It then asserts the CLI's exit-code contract — 0 for lookups that met
their target, 3 (degraded) for short-but-non-empty answers, 4 (failed)
for empty answers — by asking ``fixed`` for more entries than its x=10
subset holds, and by querying a lone shard that is not home to the
key at all.  Every contract point is asserted twice: once on the
sequential JSON path and once with ``--codec binary --batch N``
(pipelined batched lookups over the negotiated binary codec), which
must produce identical summaries and exit codes.

The server is terminated with SIGTERM and must exit cleanly within
the grace period; any leftover process is killed and reported as a
failure.  The whole script is bounded by ``--timeout`` (default 120 s)
so a wedged service fails fast instead of hanging the job.

Usage: ``PYTHONPATH=src python scripts/net_smoke.py [--timeout 120]``
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

SERVERS = 12
ENTRIES = 30
SEED = 5
TARGET = 8
LOOKUPS = 3

X = 10  # fixed / random_server subset size
Y = 2  # round_robin / hash copy count

#: scheme -> (expected coverage, (min, max) storage) for the service
#: defaults above.  Fixed-x is partial *by design* (covers only its x
#: chosen entries); Hash-y's storage dips below y*h when hash
#: functions collide; everything else is exact.
EXPECTED = {
    "full_replication": (ENTRIES, (SERVERS * ENTRIES, SERVERS * ENTRIES)),
    "fixed": (X, (SERVERS * X, SERVERS * X)),
    "random_server": (ENTRIES, (SERVERS * X, SERVERS * X)),
    "round_robin": (ENTRIES, (Y * ENTRIES, Y * ENTRIES)),
    "hash": (ENTRIES, (ENTRIES, Y * ENTRIES)),
}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_ready(path: str, process: subprocess.Popen, deadline: float) -> tuple[str, int]:
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"server exited early with code {process.returncode}")
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read().strip()
        except FileNotFoundError:
            text = ""
        if text:
            host, port = text.split()
            return host, int(port)
        time.sleep(0.1)
    fail("server never wrote the ready file")
    raise AssertionError  # unreachable


def run_call(
    scheme: str,
    host: str,
    port: int,
    deadline: float,
    *,
    target: int = TARGET,
    verify: bool = True,
    expect: int = 0,
    codec: str = "json",
    batch: int = 1,
) -> dict:
    command = [
        sys.executable,
        "-m",
        "repro",
        "call",
        scheme,
        "--host",
        host,
        "--port",
        str(port),
        "--target",
        str(target),
        "--count",
        str(LOOKUPS),
        "--seed",
        "11",
        "--codec",
        codec,
        "--batch",
        str(batch),
    ]
    if verify:
        command.append("--verify")
    budget = max(1.0, deadline - time.monotonic())
    result = subprocess.run(
        command, capture_output=True, text=True, timeout=budget
    )
    if result.returncode != expect:
        fail(
            f"repro call {scheme} exited {result.returncode}, want {expect}:\n"
            f"{result.stdout}\n{result.stderr}"
        )
    summary = json.loads(result.stdout)
    if summary.get("exit_code") != expect:
        fail(
            f"{scheme}: summary exit_code {summary.get('exit_code')} "
            f"disagrees with process exit {expect}"
        )
    return summary


def check_scheme(scheme: str, summary: dict, label: str = "") -> None:
    if not summary["all_success"]:
        fail(f"{scheme}: lookup(s) missed the target: {summary}")
    universe = {f"v{i}" for i in range(1, ENTRIES + 1)}
    for lookup in summary["lookups"]:
        ids = lookup["entries"]
        if len(ids) != len(set(ids)):
            fail(f"{scheme}: duplicate entries in one lookup answer: {ids}")
        if len(ids) != TARGET:
            fail(f"{scheme}: got {len(ids)} entries, want {TARGET}")
        stray = set(ids) - universe
        if stray:
            fail(f"{scheme}: entries outside the placed universe: {stray}")
    verify = summary["verify"]
    coverage, (storage_low, storage_high) = EXPECTED[scheme]
    if verify["coverage"] != coverage:
        fail(f"{scheme}: coverage {verify['coverage']} != {coverage}")
    if not storage_low <= verify["storage_cost"] <= storage_high:
        fail(
            f"{scheme}: storage {verify['storage_cost']} outside "
            f"[{storage_low}, {storage_high}]"
        )
    if verify["operational"] != SERVERS:
        fail(f"{scheme}: {verify['operational']} operational servers != {SERVERS}")
    print(
        f"ok {scheme}{label}: {LOOKUPS} lookups x {TARGET} entries, "
        f"coverage {verify['coverage']}/{ENTRIES}, "
        f"storage {verify['storage_cost']}"
    )


def check_degraded_exit(
    host: str, port: int, deadline: float, *, codec: str = "json", batch: int = 1
) -> None:
    # ``fixed`` hosts only its X chosen entries; asking for more is
    # answerable-but-short — degraded (3), never failed (4).
    summary = run_call(
        "fixed",
        host,
        port,
        deadline,
        target=X + 2,
        verify=False,
        expect=3,
        codec=codec,
        batch=batch,
    )
    for lookup in summary["lookups"]:
        if lookup["found"] != X or lookup["success"]:
            fail(f"degraded call: expected {X} found and no success: {lookup}")
        if not lookup["degraded"]:
            fail(f"degraded call: row not marked degraded: {lookup}")
    label = f" [{codec}, batch {batch}]" if batch > 1 else ""
    print(
        f"ok exit-code {summary['exit_code']}{label}: "
        "short non-empty answer is degraded"
    )


def check_failed_exit(ready_dir: str, deadline: float) -> None:
    # A lone shard that is not home to ``fixed`` truthfully answers
    # empty; an empty answer with a positive target is failed (4).
    ready = os.path.join(ready_dir, "shard-ready.txt")
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--ready-file",
            ready,
            "--servers",
            str(SERVERS),
            "--entries",
            str(ENTRIES),
            "--seed",
            str(SEED),
            "--shard",
            "0/3",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        host, port = wait_for_ready(ready, server, deadline)
        for codec, batch in (("json", 1), ("binary", LOOKUPS)):
            summary = run_call(
                "fixed",
                host,
                port,
                deadline,
                verify=False,
                expect=4,
                codec=codec,
                batch=batch,
            )
            for lookup in summary["lookups"]:
                if lookup["found"] != 0:
                    fail(f"failed call: non-home shard answered data: {lookup}")
            label = f" [{codec}, batch {batch}]" if batch > 1 else ""
            print(
                f"ok exit-code {summary['exit_code']}{label}: "
                "empty answer from a non-home shard is failed"
            )
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
                fail("shard server did not exit within 10s of SIGTERM")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()
    deadline = time.monotonic() + args.timeout

    with tempfile.TemporaryDirectory() as tmpdir:
        ready = os.path.join(tmpdir, "ready.txt")
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--ready-file",
                ready,
                "--servers",
                str(SERVERS),
                "--entries",
                str(ENTRIES),
                "--seed",
                str(SEED),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            host, port = wait_for_ready(ready, server, deadline)
            print(f"server up at {host}:{port}")
            for scheme in sorted(EXPECTED):
                check_scheme(scheme, run_call(scheme, host, port, deadline))
            # The same contract over the binary codec with pipelined
            # batches: identical summaries, identical exit codes.
            for scheme in sorted(EXPECTED):
                check_scheme(
                    scheme,
                    run_call(
                        scheme, host, port, deadline, codec="binary", batch=LOOKUPS
                    ),
                    label=f" [binary, batch {LOOKUPS}]",
                )
            check_degraded_exit(host, port, deadline)
            check_degraded_exit(host, port, deadline, codec="binary", batch=LOOKUPS)
            check_failed_exit(tmpdir, deadline)
        finally:
            if server.poll() is None:
                server.send_signal(signal.SIGTERM)
                try:
                    server.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    server.kill()
                    server.wait()
                    fail("server did not exit within 10s of SIGTERM")
        output = server.stdout.read() if server.stdout else ""
        if server.returncode != 0:
            fail(f"server exited {server.returncode}:\n{output}")
        if "[serve] stopped" not in output:
            fail(f"server did not report a clean stop:\n{output}")
    print("net smoke passed: all schemes served real partial lookups")
    return 0


if __name__ == "__main__":
    sys.exit(main())
