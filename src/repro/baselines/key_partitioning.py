"""Key partitioning: hash each key to a single owner server.

The traditional hashing approach of Figure 1 (center) and the
Chord/CAN model from the paper's related work (§8): "a key and its
associated entries are stored on one server specified by the hash
value of the key".  Storage is minimal (``h`` total) and updates are
cheap (one point-to-point message), but *every* lookup for the key
lands on its owner — the popular-key hot spot the conclusion says
partial lookup services avoid — and a single failure takes the whole
key offline.

Implemented with the same :class:`~repro.strategies.base
.PlacementStrategy` contract as the five partial schemes so it slots
directly into the metrics and experiments.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.entry import Entry
from repro.core.result import LookupResult
from repro.cluster.cluster import Cluster
from repro.cluster.messages import (
    AddRequest,
    DeleteRequest,
    Message,
    PlaceRequest,
    RemoveMessage,
    StoreMessage,
    StoreSetMessage,
)
from repro.cluster.network import Network
from repro.cluster.server import Server
from repro.hashing.families import HashFamily
from repro.strategies.base import PlacementStrategy, StrategyLogic


class _KeyPartitioningLogic(StrategyLogic):
    """Server behaviour: forward requests to the key's owner."""

    def handle_message(self, server: Server, message: Message, network: Network) -> Any:
        store = server.store(self.key)
        owner = self.strategy.owner_id
        if isinstance(message, PlaceRequest):
            network.send(owner, self.key, StoreSetMessage(message.entries))
            return True
        if isinstance(message, AddRequest):
            network.send(owner, self.key, StoreMessage(message.entry))
            return True
        if isinstance(message, DeleteRequest):
            network.send(owner, self.key, RemoveMessage(message.entry))
            return True
        if isinstance(message, StoreSetMessage):
            for entry in message.entries:
                store.add(entry)
            return True
        if isinstance(message, StoreMessage):
            return store.add(message.entry)
        if isinstance(message, RemoveMessage):
            return store.discard(message.entry)
        raise TypeError(f"key partitioning cannot handle {type(message).__name__}")


class KeyPartitioning(PlacementStrategy):
    """Store the key's whole entry set on its single hash-owner server.

    Parameters
    ----------
    cluster:
        The server cluster.
    hash_seed:
        Seed for the key→owner hash; defaults to a draw from the
        cluster RNG.

    >>> from repro.cluster import Cluster
    >>> from repro.core.entry import make_entries
    >>> baseline = KeyPartitioning(Cluster(10, seed=7))
    >>> _ = baseline.place(make_entries(100))
    >>> baseline.storage_cost()                 # h, the minimum possible
    100
    >>> baseline.partial_lookup(3).servers_contacted == (baseline.owner_id,)
    True
    """

    name = "key_partitioning"

    def __init__(
        self, cluster: Cluster, key: str = "k", hash_seed: Any = None
    ) -> None:
        if hash_seed is None:
            hash_seed = cluster.rng.randrange(2**63)
        self.hash_seed = hash_seed
        family = HashFamily(count=1, buckets=cluster.size, seed=hash_seed)
        #: The single server owning this key (f(key)).
        self.owner_id = family[0](key)
        super().__init__(cluster, key)

    def _build_logic(self) -> StrategyLogic:
        return _KeyPartitioningLogic(self)

    def params(self) -> Dict[str, Any]:
        return {"owner_id": self.owner_id, "hash_seed": self.hash_seed}

    def _do_place(self, entries: Tuple[Entry, ...]) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, PlaceRequest(entries))

    def _do_add(self, entry: Entry) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, AddRequest(entry))

    def _do_delete(self, entry: Entry) -> None:
        initial = self.cluster.random_alive_server_id()
        self.cluster.network.send(initial, self.key, DeleteRequest(entry))

    def partial_lookup(self, target: int) -> LookupResult:
        # Every lookup goes to the owner — the hot spot.  If the owner
        # is down the key is simply unavailable (no replicas exist).
        return self.client.collect(
            self.key, target, order=[self.owner_id], max_servers=1
        )
