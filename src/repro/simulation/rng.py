"""Named, independent random streams for reproducible experiments.

A single shared RNG makes results depend on the *order* components
draw from it: adding one probe lookup would perturb every subsequent
lifetime sample.  ``RngStreams`` derives an independent
:class:`random.Random` per named component from one master seed, so
workload generation, placement randomness, and measurement sampling
never interfere.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.hashing.families import fnv1a_64


class RngStreams:
    """A factory of stable, independent named RNG streams.

    >>> streams = RngStreams(seed=42)
    >>> a1 = streams.get("arrivals").random()
    >>> streams2 = RngStreams(seed=42)
    >>> streams2.get("arrivals").random() == a1
    True
    >>> streams2.get("lifetimes").random() != a1
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = random.SystemRandom().randrange(2**63)
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """The stream for ``name``, created deterministically on first use."""
        if name not in self._streams:
            derived = (self.seed * 0x9E3779B97F4A7C15 + fnv1a_64(name)) % (2**63)
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def spawn(self, index: int) -> "RngStreams":
        """Derive an independent child seed space (one per run index)."""
        child_seed = (self.seed * 0xBF58476D1CE4E5B9 + index + 1) % (2**63)
        return RngStreams(child_seed)
