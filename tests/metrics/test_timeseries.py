"""Unit tests for time-series probes."""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.core.exceptions import InvalidParameterError
from repro.metrics.timeseries import (
    TimeSeriesProbe,
    coverage_metric,
    min_store_metric,
    storage_metric,
)
from repro.simulation.replay import TraceReplayer
from repro.strategies.fixed import FixedX
from repro.strategies.round_robin import RoundRobinY
from repro.workload.compose import merge_event_streams
from repro.workload.generator import SteadyStateWorkload


class TestSchedule:
    def test_event_times(self):
        probe = TimeSeriesProbe("c", coverage_metric, period=10.0, horizon=35.0)
        assert [e.time for e in probe.events()] == [10.0, 20.0, 30.0]

    def test_start_offset(self):
        probe = TimeSeriesProbe(
            "c", coverage_metric, period=5.0, horizon=20.0, start=10.0
        )
        assert [e.time for e in probe.events()] == [15.0, 20.0]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            TimeSeriesProbe("c", coverage_metric, period=0, horizon=10)
        with pytest.raises(InvalidParameterError):
            TimeSeriesProbe("c", coverage_metric, period=1, horizon=0)


class TestSampling:
    def test_coverage_over_churn(self):
        workload = SteadyStateWorkload(50, rng=random.Random(1))
        trace = workload.generate(300)
        horizon = trace.events[-1].time
        strategy = RoundRobinY(Cluster(10, seed=1), y=2)
        strategy.place(trace.initial_entries)
        probe = TimeSeriesProbe(
            "coverage", coverage_metric, period=horizon / 20, horizon=horizon
        )
        replayer = TraceReplayer(strategy)
        replayer.replay(
            merge_event_streams(list(trace.events), probe.events())
        )
        series = probe.series
        assert len(series.samples) == 20
        # Steady-state churn keeps coverage near 50.
        assert 25 <= series.mean() <= 75
        assert series.minimum >= 0
        assert series.times() == sorted(series.times())

    def test_min_store_tracks_cushion_erosion(self):
        strategy = FixedX(Cluster(4, seed=2), x=5)
        from repro.core.entry import Entry, make_entries
        from repro.simulation.events import DeleteEvent

        strategy.place(make_entries(5))
        deletes = [DeleteEvent(float(i * 10), Entry(f"v{i}")) for i in (1, 2)]
        probe = TimeSeriesProbe(
            "min_store", min_store_metric, period=5.0, horizon=25.0
        )
        TraceReplayer(strategy).replay(
            merge_event_streams(deletes, probe.events())
        )
        values = probe.series.values()
        assert values[0] == 5.0
        assert values[-1] == 3.0  # two deletes eroded the cushion

    def test_storage_metric(self):
        strategy = RoundRobinY(Cluster(5, seed=3), y=2)
        from repro.core.entry import make_entries

        strategy.place(make_entries(10))
        assert storage_metric(strategy) == 20.0

    def test_as_curve_plottable(self):
        from repro.experiments.plotting import ascii_plot

        probe = TimeSeriesProbe("demo", coverage_metric, period=1, horizon=3)
        probe.series.samples = [(1.0, 5.0), (2.0, 6.0), (3.0, 4.0)]
        text = ascii_plot({"demo": probe.series.as_curve()})
        assert "A" in text
