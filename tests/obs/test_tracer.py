"""Tracer: span/event records, clock stamping, linkage, introspection."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.obs import Tracer


def test_event_records_are_instantaneous_and_ordered():
    tracer = Tracer(run_id="t")
    tracer.event("a", x=1)
    tracer.event("b", x=2)
    assert len(tracer) == 2
    first, second = tracer.records
    assert first.kind == "event" and first.name == "a"
    assert first.start == first.end
    assert first.seq < second.seq
    assert first.fields == {"x": 1}


def test_span_opens_and_closes_with_merged_fields():
    tracer = Tracer(run_id="t")
    span = tracer.begin_span("lookup", key="k", target=5)
    tracer.event("contact", parent=span, server=3)
    record = tracer.end_span(span, entries=5, success=True)
    assert record.kind == "span"
    assert record.span_id == span.span_id
    assert record.fields == {
        "key": "k", "target": 5, "entries": 5, "success": True,
    }
    # The contact event carries the enclosing span in span_id.
    (contact,) = tracer.events("contact")
    assert contact.span_id == span.span_id


def test_double_close_raises():
    tracer = Tracer(run_id="t")
    span = tracer.begin_span("s")
    tracer.end_span(span)
    with pytest.raises(InvalidParameterError):
        tracer.end_span(span)


def test_span_context_manager_closes_on_exit():
    tracer = Tracer(run_id="t")
    with tracer.span("outer") as outer:
        with tracer.span("inner", parent=outer):
            pass
    inner, outer_record = tracer.spans()
    assert inner.name == "inner" and inner.parent_id == outer_record.span_id
    assert outer_record.parent_id is None


def test_clock_binding_stamps_subsequent_records():
    tracer = Tracer(run_id="t")
    tracer.event("before")
    now = [0.0]
    tracer.bind_clock(lambda: now[0])
    span = tracer.begin_span("work")
    now[0] = 7.5
    tracer.event("mid", parent=span)
    record = tracer.end_span(span)
    assert tracer.records[0].start == 0.0
    assert tracer.events("mid")[0].start == 7.5
    assert (record.start, record.end) == (0.0, 7.5)


def test_engine_attach_tracer_uses_virtual_time():
    from repro.simulation.engine import SimulationEngine
    from repro.simulation.events import CallbackEvent

    engine = SimulationEngine()
    tracer = engine.attach_tracer(Tracer(run_id="sim"))
    engine.schedule(
        CallbackEvent(time=12.0, callback=lambda now: tracer.event("tick"))
    )
    engine.run()
    (tick,) = tracer.events("tick")
    assert tick.start == 12.0


def test_children_of_returns_nested_events_and_spans():
    tracer = Tracer(run_id="t")
    parent = tracer.begin_span("parent")
    tracer.event("leaf", parent=parent)
    child = tracer.begin_span("child", parent=parent)
    tracer.end_span(child)
    tracer.end_span(parent)
    names = {r.name for r in tracer.children_of(parent)}
    assert names == {"leaf", "child"}


def test_run_id_is_required_and_stamped():
    with pytest.raises(InvalidParameterError):
        Tracer(run_id="")
    tracer = Tracer(run_id="seed7")
    tracer.event("x")
    assert tracer.records[0].run_id == "seed7"


def test_as_dict_round_trips_all_record_keys():
    from repro.obs import RECORD_KEYS

    tracer = Tracer(run_id="t")
    with tracer.span("s"):
        tracer.event("e")
    for record in tracer.records:
        payload = record.as_dict()
        assert tuple(payload) == RECORD_KEYS
