"""Unit tests for the MetricsCollector."""

from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.core import columns
from repro.core.entry import make_entries
from repro.metrics.collector import MetricsCollector, MetricsSnapshot
from repro.strategies.round_robin import RoundRobinY


class TestCollector:
    def test_snapshot_fields(self):
        strategy = RoundRobinY(Cluster(10, seed=1), y=2)
        entries = make_entries(100)
        strategy.place(entries)
        collector = MetricsCollector(lookup_samples=100, unfairness_samples=500)
        snapshot = collector.collect(strategy, target=20, universe=entries)
        assert isinstance(snapshot, MetricsSnapshot)
        assert snapshot.strategy_name == "round_robin"
        assert snapshot.storage_cost == 200
        assert snapshot.coverage == 100
        assert snapshot.mean_lookup_cost == 1.0
        assert snapshot.lookup_failure_rate == 0.0
        assert snapshot.fault_tolerance == 9
        assert snapshot.unfairness < 0.2
        assert snapshot.storage_imbalance == 0

    def test_as_row_keys(self):
        strategy = RoundRobinY(Cluster(5, seed=2), y=1)
        entries = make_entries(20)
        strategy.place(entries)
        collector = MetricsCollector(lookup_samples=50, unfairness_samples=200)
        row = collector.collect(strategy, 4, entries).as_row()
        assert set(row) == {
            "strategy",
            "t",
            "storage",
            "imbalance",
            "lookup_cost",
            "lookup_fail",
            "coverage",
            "fault_tol",
            "unfairness",
        }
        # The keys are exactly the shared canonical column registry.
        assert tuple(row) == columns.SNAPSHOT_COLUMNS

    def test_collect_with_failed_servers(self):
        """The Section 4 metrics degrade coherently when servers fail."""
        strategy = RoundRobinY(Cluster(10, seed=3), y=2)
        entries = make_entries(100)
        strategy.place(entries)
        collector = MetricsCollector(lookup_samples=100, unfairness_samples=200)
        healthy = collector.collect(strategy, target=20, universe=entries)
        strategy.cluster.fail(0)
        strategy.cluster.fail(1)
        degraded = collector.collect(strategy, target=20, universe=entries)
        # Storage is a provisioning cost: failed servers still count.
        assert degraded.storage_cost == healthy.storage_cost == 200
        # y=2 keeps two replicas of everything, so two failures can at
        # most dent coverage, never beyond the replica bound.
        assert degraded.coverage <= healthy.coverage == 100
        # Fault tolerance shrinks by at least the servers already down.
        assert degraded.fault_tolerance <= healthy.fault_tolerance - 2 + 1
        assert degraded.lookup_failure_rate >= healthy.lookup_failure_rate

    def test_collect_health_reports_failures_and_fault_ledger(self):
        strategy = RoundRobinY(Cluster(5, seed=4), y=1)
        entries = make_entries(20)
        strategy.place(entries)
        health = MetricsCollector().collect_health(strategy)
        assert health["strategy"] == "round_robin"
        assert health["violations"] == 0
        assert health["failed_servers"] == 0
        assert "attempted" not in health  # no fault plan installed

        strategy.cluster.fail(2)
        strategy.cluster.network.install_fault_plan(FaultPlan(seed=0))
        health = MetricsCollector().collect_health(strategy)
        assert health["failed_servers"] == 1
        assert health["attempted"] == 0  # ledger present once installed
