"""Time-series probes: sample a metric over virtual time during replay.

Figure 13 samples unfairness at update-count checkpoints; operators
more often want metrics over *time* — coverage as churn proceeds,
store occupancy through a failure window.  A :class:`TimeSeriesProbe`
emits :class:`~repro.simulation.events.ProbeEvent`s on a fixed period
and records ``(time, value)`` samples of any strategy-level metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.simulation.events import Event, ProbeEvent
from repro.strategies.base import PlacementStrategy

MetricFn = Callable[[PlacementStrategy], float]


@dataclass
class TimeSeries:
    """Collected (time, value) samples plus simple aggregates."""

    label: str
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def values(self) -> List[float]:
        return [value for _, value in self.samples]

    def times(self) -> List[float]:
        return [time for time, _ in self.samples]

    @property
    def minimum(self) -> float:
        return min(self.values())

    @property
    def maximum(self) -> float:
        return max(self.values())

    def mean(self) -> float:
        values = self.values()
        return sum(values) / len(values) if values else 0.0

    def as_curve(self) -> dict:
        """``{time: value}``, directly plottable by ``ascii_plot``."""
        return dict(self.samples)


class TimeSeriesProbe:
    """Samples ``metric(strategy)`` every ``period`` of virtual time.

    Usage::

        probe = TimeSeriesProbe("coverage", lambda s: float(s.coverage()),
                                period=100.0, horizon=5000.0)
        replayer.replay(sorted(trace_events + probe.events(), key=...))
        probe.series.samples   # [(100.0, 98.0), (200.0, 97.0), ...]
    """

    def __init__(
        self,
        label: str,
        metric: MetricFn,
        period: float,
        horizon: float,
        start: float = 0.0,
    ) -> None:
        if period <= 0:
            raise InvalidParameterError("period must be positive")
        if horizon <= start:
            raise InvalidParameterError("horizon must exceed start")
        self.metric = metric
        self.period = period
        self.horizon = horizon
        self.start = start
        self.series = TimeSeries(label)

    def _sample(self, time: float, strategy: PlacementStrategy) -> None:
        self.series.samples.append((time, self.metric(strategy)))

    def events(self) -> List[Event]:
        """The probe's schedule; merge it into the trace being replayed."""
        events: List[Event] = []
        tick = self.start + self.period
        while tick <= self.horizon:
            events.append(
                ProbeEvent(tick, probe=self._sample, label=self.series.label)
            )
            tick += self.period
        return events


def coverage_metric(strategy: PlacementStrategy) -> float:
    """Convenience metric: current coverage."""
    return float(strategy.coverage())


def storage_metric(strategy: PlacementStrategy) -> float:
    """Convenience metric: current total storage."""
    return float(strategy.storage_cost())


def min_store_metric(strategy: PlacementStrategy) -> float:
    """Convenience metric: the smallest per-server store (Fixed-x's
    effective capacity for serving its target)."""
    sizes = strategy.cluster.store_sizes(strategy.key)
    return float(min(sizes)) if sizes else 0.0
