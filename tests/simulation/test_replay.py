"""Unit tests for trace replay against a strategy."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.simulation.events import (
    AddEvent,
    DeleteEvent,
    FailureEvent,
    LookupEvent,
    ProbeEvent,
    RecoveryEvent,
)
from repro.simulation.replay import TraceReplayer
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication


@pytest.fixture
def strategy(cluster):
    s = FullReplication(cluster)
    s.place(make_entries(10))
    return s


class TestEventHandling:
    def test_adds_and_deletes_applied(self, strategy):
        replayer = TraceReplayer(strategy)
        stats = replayer.replay(
            [AddEvent(1.0, Entry("a")), DeleteEvent(2.0, Entry("v1"))]
        )
        assert stats.adds == 1
        assert stats.deletes == 1
        retrievable = strategy.lookup_all()
        assert Entry("a") in retrievable
        assert Entry("v1") not in retrievable

    def test_lookups_counted(self, strategy):
        replayer = TraceReplayer(strategy)
        stats = replayer.replay(
            [LookupEvent(1.0, target=5), LookupEvent(2.0, target=99)]
        )
        assert stats.lookups == 2
        assert stats.failed_lookups == 1
        assert stats.lookup_failure_rate == 0.5

    def test_update_messages_accumulated(self, strategy):
        replayer = TraceReplayer(strategy)
        stats = replayer.replay([AddEvent(1.0, Entry("a"))])
        assert stats.update_messages == 11  # request + broadcast on n=10

    def test_failure_and_recovery_events(self, strategy):
        replayer = TraceReplayer(strategy)
        replayer.replay(
            [FailureEvent(1.0, server_id=3), RecoveryEvent(2.0, server_id=3)]
        )
        assert strategy.cluster.failed_count == 0

    def test_probe_called_with_time_and_strategy(self, strategy):
        calls = []
        replayer = TraceReplayer(strategy)
        replayer.replay(
            [ProbeEvent(4.0, probe=lambda t, s: calls.append((t, s)))]
        )
        assert calls == [(4.0, strategy)]


class TestFailureTimeMonitoring:
    def test_no_failure_time_when_covered(self, cluster):
        strategy = FixedX(cluster, x=5)
        strategy.place(make_entries(5))
        replayer = TraceReplayer(strategy, monitor_target=3)
        stats = replayer.replay([AddEvent(10.0, Entry("a"))])
        assert stats.failure_time == 0.0
        assert stats.observed_time == 10.0

    def test_failure_interval_charged(self, cluster):
        strategy = FixedX(cluster, x=3)
        strategy.place(make_entries(3))
        replayer = TraceReplayer(strategy, monitor_target=3)
        # Delete at t=2 drops coverage to 2; refill at t=7.
        stats = replayer.replay(
            [DeleteEvent(2.0, Entry("v1")), AddEvent(7.0, Entry("r"))],
            until=10.0,
        )
        assert stats.failure_time == pytest.approx(5.0)
        assert stats.observed_time == pytest.approx(10.0)
        assert stats.failure_time_fraction == pytest.approx(0.5)

    def test_fraction_zero_without_monitoring(self, strategy):
        replayer = TraceReplayer(strategy)
        stats = replayer.replay([AddEvent(1.0, Entry("a"))])
        assert stats.failure_time_fraction == 0.0
