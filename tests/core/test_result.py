"""Unit tests for LookupResult, UpdateResult, and OperationLog."""

from repro.core.entry import make_entries
from repro.core.result import LookupResult, OperationLog, UpdateResult


def _result(found: int, target: int, contacted: int = 1) -> LookupResult:
    return LookupResult(
        entries=tuple(make_entries(found)),
        target=target,
        servers_contacted=tuple(range(contacted)),
        messages=contacted,
    )


class TestLookupResult:
    def test_success_when_target_met(self):
        assert _result(found=5, target=5).success

    def test_success_when_target_exceeded(self):
        assert _result(found=6, target=5).success

    def test_failure_when_short(self):
        assert not _result(found=4, target=5).success

    def test_target_zero_always_succeeds(self):
        assert _result(found=0, target=0).success

    def test_lookup_cost_counts_operational_contacts(self):
        assert _result(found=5, target=5, contacted=3).lookup_cost == 3

    def test_failed_contacts_not_in_cost(self):
        result = LookupResult(
            entries=tuple(make_entries(2)),
            target=2,
            servers_contacted=(1,),
            failed_contacts=(0, 3),
        )
        assert result.lookup_cost == 1

    def test_len_and_iter(self):
        result = _result(found=3, target=3)
        assert len(result) == 3
        assert [e.entry_id for e in result] == ["v1", "v2", "v3"]

    def test_entry_set(self):
        result = _result(found=2, target=2)
        assert result.entry_set == frozenset(make_entries(2))


class TestOperationLog:
    def test_mean_lookup_cost(self):
        log = OperationLog()
        log.record_lookup(_result(5, 5, contacted=1))
        log.record_lookup(_result(5, 5, contacted=3))
        assert log.mean_lookup_cost == 2.0

    def test_failure_rate(self):
        log = OperationLog()
        log.record_lookup(_result(5, 5))
        log.record_lookup(_result(2, 5))
        assert log.failure_rate == 0.5
        assert log.failed_lookups == 1

    def test_empty_log_zeroes(self):
        log = OperationLog()
        assert log.mean_lookup_cost == 0.0
        assert log.failure_rate == 0.0

    def test_update_messages_total(self):
        log = OperationLog()
        log.record_update(UpdateResult("add", messages=3))
        log.record_update(UpdateResult("delete", messages=11, broadcast=True))
        assert log.total_update_messages == 14

    def test_clear(self):
        log = OperationLog()
        log.record_lookup(_result(1, 1))
        log.record_update(UpdateResult("add", messages=1))
        log.clear()
        assert not log.lookups and not log.updates
