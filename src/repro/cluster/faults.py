"""Deterministic fault injection for the message transport.

The paper's evaluation assumes a perfect network: every message is
delivered exactly once and servers only fail between protocol steps
(§4.4's fail-stop model).  Real deployments drop and duplicate
messages and crash servers *mid-protocol* — precisely the failure
modes that break the multi-step update choreographies (Round-Robin's
broadcast → migrate → remove_replacement delete, Hash-y's per-target
routing).  This module provides a :class:`FaultPlan` — a seeded,
fully deterministic schedule of those faults — that the
:class:`~repro.cluster.network.Network` consults on every delivery
once a plan is installed.

Determinism is the design constraint: the plan owns a private RNG
seeded from ``FaultPlan.seed``, so installing a plan never perturbs
the cluster RNG stream, and the same (workload seed, fault plan) pair
replays the identical fault sequence.  With no plan installed the
transport takes its original code path and is bit-identical to the
fault-free implementation.

Fault vocabulary:

- **drop**: a delivery vanishes; the sender observes
  :data:`~repro.cluster.network.DROPPED` (distinct from
  :data:`~repro.cluster.network.UNDELIVERED`, which means the
  destination is failed — clients use the distinction to decide
  whether re-contacting the same server can help).
- **duplicate**: the delivery arrives twice with the same delivery id;
  the server-side dedupe (see
  :meth:`~repro.cluster.server.Server.receive_dedup`) makes the second
  copy a no-op, which is what makes every update handler idempotent
  under at-least-once delivery.
- **blackout**: a window, in per-server delivery-attempt counts,
  during which every delivery to one server is dropped — a transient
  partition that leaves the server's state intact.
- **crash point**: the server fails (fail-stop, state retained) right
  after processing its k-th message of a named protocol step, leaving
  whatever multi-step protocol it was part of interrupted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.cluster.messages import Message, known_message_types

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.server import Server
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class Blackout:
    """Drop every delivery to ``server_id`` during an attempt window.

    The window ``[start, stop)`` counts the server's delivery
    *attempts* (messages the network tried to hand it, delivered or
    not), so a blackout's position in the run is independent of what
    other servers are doing — deterministic under any interleaving.
    """

    server_id: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise InvalidParameterError(
                f"blackout server_id must be >= 0, got {self.server_id}"
            )
        if not 0 <= self.start < self.stop:
            raise InvalidParameterError(
                f"blackout window must satisfy 0 <= start < stop, "
                f"got [{self.start}, {self.stop})"
            )

    def covers(self, attempt_index: int) -> bool:
        return self.start <= attempt_index < self.stop


@dataclass(frozen=True)
class CrashPoint:
    """Fail ``server_id`` after it processes its k-th ``step`` message.

    ``step`` is a message type name (``"RemoveWithHead"``,
    ``"StorePositioned"``, ...), i.e. one named step of an update
    protocol; ``after`` is the 1-based count of processed messages of
    that step at which the crash fires.  The k-th message itself is
    processed normally (its reply is returned) — the crash lands in
    the gap *between* protocol steps, which is exactly where the
    paper's atomic-update assumption is unsound.
    """

    server_id: int
    step: str
    after: int = 1

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise InvalidParameterError(
                f"crash point server_id must be >= 0, got {self.server_id}"
            )
        if self.after < 1:
            raise InvalidParameterError(
                f"crash point 'after' must be >= 1, got {self.after}"
            )
        if self.step not in known_message_types():
            raise InvalidParameterError(
                f"unknown protocol step {self.step!r}; known steps: "
                f"{', '.join(sorted(known_message_types()))}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic fault schedule for the transport.

    Parameters
    ----------
    seed:
        Seed for the plan's private RNG.  Drop/duplicate coin flips
        draw from this RNG only, never from the cluster RNG, so the
        workload's randomness stream is identical with and without the
        plan.
    drop_probability:
        Per-delivery probability that the message is lost.
    duplicate_probability:
        Per-delivery probability that the message arrives twice (with
        the same delivery id, so dedupe applies).
    blackouts:
        Transient per-server delivery outages.
    crash_points:
        Mid-protocol fail-stop crashes.
    """

    seed: int = 0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    blackouts: Tuple[Blackout, ...] = ()
    crash_points: Tuple[CrashPoint, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise InvalidParameterError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if len({(c.server_id, c.step) for c in self.crash_points}) != len(
            self.crash_points
        ):
            raise InvalidParameterError(
                "crash points must be unique per (server_id, step)"
            )

    @property
    def is_noop(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.drop_probability == 0.0
            and self.duplicate_probability == 0.0
            and not self.blackouts
            and not self.crash_points
        )


@dataclass
class FaultStats:
    """What the installed plan actually did, delivery by delivery.

    Kept strictly separate from the §6.4
    :class:`~repro.cluster.network.MessageStats` counters: the paper's
    cost model has no notion of redelivery or loss, so faulty-mode
    accounting is reported on its own and never pollutes the
    update-overhead / lookup-cost numbers.

    The books must balance:
    ``attempted == delivered + dropped + blacked_out + suppressed``.
    """

    attempted: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    blacked_out: int = 0
    #: Deliveries suppressed because the destination was failed (the
    #: fault-free transport's UNDELIVERED path, counted here too so
    #: the books close under faults).
    suppressed: int = 0
    #: (server_id, step, nth) triples, in firing order.
    crashes: List[Tuple[int, str, int]] = field(default_factory=list)

    @property
    def balanced(self) -> bool:
        return self.attempted == (
            self.delivered + self.dropped + self.blacked_out + self.suppressed
        )

    def as_row(self) -> Dict[str, int]:
        return {
            "attempted": self.attempted,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "blacked_out": self.blacked_out,
            "suppressed": self.suppressed,
            "crashes": len(self.crashes),
        }

    def publish(
        self, metrics: "MetricsRegistry", prefix: str = "faults"
    ) -> None:
        """Publish the fault ledger into a metrics registry.

        ``Counter.set_to`` ledger semantics, like
        :meth:`~repro.cluster.network.MessageStats.publish`:
        idempotent on re-publish, rejects going backwards.
        """
        for name, value in self.as_row().items():
            metrics.counter(f"{prefix}.{name}").set_to(value)


class FaultInjector:
    """Runtime state of an installed :class:`FaultPlan`.

    Created by :meth:`Network.install_fault_plan`; one injector per
    installation, so reinstalling the same plan replays the same fault
    sequence from the start.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = random.Random(plan.seed)
        self._attempts_by_server: Dict[int, int] = {}
        self._step_counts: Dict[Tuple[int, str], int] = {}
        self._fired: set = set()

    # -- per-delivery decisions ------------------------------------------------

    def next_attempt(self, server_id: int) -> int:
        """Count and return this server's delivery-attempt index."""
        index = self._attempts_by_server.get(server_id, 0)
        self._attempts_by_server[server_id] = index + 1
        self.stats.attempted += 1
        return index

    def blacked_out(self, server_id: int, attempt_index: int) -> bool:
        for blackout in self.plan.blackouts:
            if blackout.server_id == server_id and blackout.covers(attempt_index):
                self.stats.blacked_out += 1
                return True
        return False

    def drops(self) -> bool:
        """Deterministic coin flip: is this delivery lost?

        A zero probability draws nothing, so enabling only duplication
        (or only crashes) leaves the other knobs' RNG stream empty and
        the fault schedule a pure function of the enabled knobs.
        """
        if self.plan.drop_probability <= 0.0:
            return False
        if self._rng.random() < self.plan.drop_probability:
            self.stats.dropped += 1
            return True
        return False

    def duplicates(self) -> bool:
        if self.plan.duplicate_probability <= 0.0:
            return False
        if self._rng.random() < self.plan.duplicate_probability:
            self.stats.duplicated += 1
            return True
        return False

    # -- crash points ---------------------------------------------------------

    def note_processed(self, server: "Server", message: Message) -> None:
        """Advance step counters; fire a crash point if one matured."""
        if not self.plan.crash_points:
            return
        step = type(message).__name__
        key = (server.server_id, step)
        count = self._step_counts.get(key, 0) + 1
        self._step_counts[key] = count
        if key in self._fired:
            return
        for point in self.plan.crash_points:
            if (
                point.server_id == server.server_id
                and point.step == step
                and count >= point.after
            ):
                self._fired.add(key)
                server.fail()
                self.stats.crashes.append((server.server_id, step, count))
                return
