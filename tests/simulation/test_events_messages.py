"""Unit tests for event descriptions and message categories."""

from repro.cluster.messages import (
    AddRequest,
    DeleteRequest,
    LookupRequest,
    MessageCategory,
    MigrateRequest,
    PlaceRequest,
    RemoveMessage,
    RemoveWithHead,
    StoreMessage,
)
from repro.core.entry import Entry, make_entries
from repro.simulation.events import (
    AddEvent,
    DeleteEvent,
    FailureEvent,
    LookupEvent,
    ProbeEvent,
    RecoveryEvent,
)


class TestEventDescriptions:
    def test_add_describe(self):
        assert AddEvent(2.5, Entry("v1")).describe() == "add(v1)@2.5"

    def test_delete_describe(self):
        assert DeleteEvent(3.0, Entry("x")).describe() == "delete(x)@3"

    def test_lookup_describe(self):
        assert LookupEvent(1.0, target=7).describe() == "lookup(t=7)@1"

    def test_probe_describe(self):
        assert ProbeEvent(4.0, label="sample").describe() == "probe(sample)@4"

    def test_failure_recovery_fields(self):
        assert FailureEvent(1.0, server_id=3).server_id == 3
        assert RecoveryEvent(2.0, server_id=3).server_id == 3

    def test_events_are_frozen(self):
        import pytest

        event = AddEvent(1.0, Entry("a"))
        with pytest.raises(AttributeError):
            event.time = 9.0


class TestMessageCategories:
    def test_lookup_is_lookup_category(self):
        assert LookupRequest(3).category is MessageCategory.LOOKUP

    def test_everything_else_is_update(self):
        entries = tuple(make_entries(2))
        for message in (
            PlaceRequest(entries),
            AddRequest(Entry("a")),
            DeleteRequest(Entry("a")),
            StoreMessage(Entry("a")),
            RemoveMessage(Entry("a")),
            RemoveWithHead(Entry("a"), head=0),
            MigrateRequest(Entry("a"), head=0, new_position=5),
        ):
            assert message.category is MessageCategory.UPDATE

    def test_messages_are_frozen_and_hashable(self):
        a = StoreMessage(Entry("a"))
        b = StoreMessage(Entry("a"))
        assert a == b
        assert hash(a) == hash(b)
