"""Driver equivalence: the session pump reproduces the legacy skeleton.

The refactor's core claim is that extracting the lookup skeleton into
``LookupSession`` changed *nothing observable*: for every scheme, a
seeded run produces bit-identical ``LookupResult``s and §6.4
``MessageStats`` whichever way the machine is pumped — via the
``Client`` driver, via a hand-rolled pump, traced or untraced, under
fault plans and retries.
"""

import random

import pytest

from repro.cluster.client import Client, RetryPolicy
from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.network import DROPPED, is_undelivered
from repro.core.entry import make_entries
from repro.obs import Tracer
from repro.protocol import (
    Complete,
    ContactFailed,
    ReplyReceived,
    SendRequest,
    Sleep,
    LookupSession,
    SLEPT,
)
from repro.strategies.registry import create_strategy

SCHEMES = {
    "full_replication": {},
    "fixed": {"x": 10},
    "random_server": {"x": 10},
    "round_robin": {"y": 2},
    "hash": {"y": 2},
}

N = 12
H = 30
SEED = 123


def build(scheme, seed=SEED):
    cluster = Cluster(N, seed=seed)
    strategy = create_strategy(scheme, cluster, **SCHEMES[scheme])
    strategy.place(make_entries(H))
    return strategy


def stats_tuple(network):
    stats = network.stats
    return (
        stats.total,
        dict(stats.by_category),
        dict(stats.by_type),
        dict(stats.per_server),
        stats.undelivered,
        stats.broadcasts,
        stats.payload_entries,
    )


def manual_pump(strategy, target):
    """Pump a LookupSession by hand, mirroring Client.lookup's draws."""
    client = strategy.client
    profile = strategy.lookup_profile()
    order, label = client._resolve_order(profile.order)
    session = LookupSession(
        strategy.key,
        target,
        order,
        max_servers=profile.max_servers,
        retry_policy=client.retry_policy,
        rng=strategy.cluster.rng,
    )
    network = strategy.cluster.network
    effects = session.start()
    while True:
        event = None
        for effect in effects:
            if isinstance(effect, SendRequest):
                reply = network.send(effect.server_id, effect.key, effect.request)
                if is_undelivered(reply):
                    event = ContactFailed(
                        effect.server_id, dropped=reply is DROPPED
                    )
                else:
                    event = ReplyReceived(effect.server_id, reply)
            elif isinstance(effect, Sleep):
                event = SLEPT
            elif isinstance(effect, Complete):
                return effect.result
        effects = session.on_event(event)


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_manual_pump_equals_client_driver(scheme):
    via_client = build(scheme)
    via_pump = build(scheme)
    for target in (5, 12):
        expect = via_client.partial_lookup(target)
        got = manual_pump(via_pump, target)
        assert got == expect
    assert stats_tuple(via_pump.cluster.network) == stats_tuple(
        via_client.cluster.network
    )


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_traced_equals_untraced(scheme):
    plain = build(scheme)
    traced = build(scheme)
    tracer = Tracer(run_id="eq")
    traced.client.tracer = tracer
    for target in (5, 12):
        assert traced.partial_lookup(target) == plain.partial_lookup(target)
    assert len(tracer.spans("lookup")) == 2


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_seed_identical_under_faults_and_retries(scheme):
    """Same seeds, two independent stacks: identical results and stats."""
    plan = FaultPlan(seed=9, drop_probability=0.2, duplicate_probability=0.1)
    policy = RetryPolicy(max_attempts=3, base_backoff=0.5, backoff_budget=20.0)

    def run():
        strategy = build(scheme)
        strategy.cluster.fail(2)
        strategy.cluster.network.install_fault_plan(plan)
        strategy.client.retry_policy = policy
        results = [strategy.partial_lookup(8) for _ in range(10)]
        return results, stats_tuple(strategy.cluster.network)

    first_results, first_stats = run()
    second_results, second_stats = run()
    assert first_results == second_results
    assert first_stats == second_stats
    # The fault plan really fired: some lookup retried or lost servers.
    assert any(r.retries or r.failed_contacts for r in first_results)


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_retrying_traced_client_matches_untraced(scheme):
    """Trace effects draw nothing from the RNG even on the retry path."""
    plan = FaultPlan(seed=4, drop_probability=0.25)
    policy = RetryPolicy(max_attempts=3)

    def run(tracer):
        strategy = build(scheme)
        strategy.cluster.network.install_fault_plan(plan)
        strategy.client.retry_policy = policy
        strategy.client.tracer = tracer
        return [strategy.partial_lookup(8) for _ in range(6)]

    tracer = Tracer(run_id="retry")
    assert run(tracer) == run(None)
    assert len(tracer.spans("lookup")) == 6
