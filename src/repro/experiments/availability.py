"""Availability experiment: lookup success under random crash/repair.

§4.4 studies the adversarial worst case; this companion experiment
(not a numbered paper figure) measures the *average* case the paper's
introduction appeals to ("even if S2 is down, partial lookups can
continue"): servers crash and recover as independent exponential
processes, clients keep issuing lookups, and we record the fraction of
lookups that fail per scheme at matched storage budgets.

Expected ordering, from the §4.4 analysis: full replication and
Fixed-x (any survivor serves everything they track) > RandomServer-x
(overlap redundancy) ≈ Round-Robin-y > Hash-y, with the
key-partitioning baseline worst of all — its key is down whenever its
single owner is.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from repro.baselines.key_partitioning import KeyPartitioning
from repro.cluster.cluster import Cluster
from repro.core.entry import make_entries
from repro.experiments.parallel import make_executor
from repro.experiments.runner import ExperimentResult, average_runs_multi
from repro.simulation.replay import TraceReplayer
from repro.strategies.fixed import FixedX
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY
from repro.workload.failures import FailureProcess, FailureProcessConfig
from repro.workload.lookups import LookupWorkload


@dataclass(frozen=True)
class AvailabilityConfig:
    """Defaults chosen to separate the schemes.

    ``target = 35`` exceeds Fixed-20's coverage, so Fixed-x fails
    *every* lookup — the §4.3 coverage cap showing up as permanent
    unavailability rather than a crash effect — while the other
    schemes need at least two cooperative survivors, which low
    availabilities make scarce.
    """

    entry_count: int = 100
    server_count: int = 10
    storage_budget: int = 200
    target: int = 35
    #: Per-server availabilities to sweep (MTBF scaled, MTTR fixed).
    availabilities: Tuple[float, ...] = (0.2, 0.35, 0.5, 0.75, 0.95)
    mean_time_to_repair: float = 50.0
    lookups_per_run: int = 400
    horizon: float = 4000.0
    runs: int = 5
    seed: int = 44


SCHEME_LABELS = (
    "fixed",
    "random_server",
    "round_robin",
    "hash",
    "key_partitioning",
)


def _build_scheme(label: str, config: AvailabilityConfig, cluster: Cluster):
    x = max(1, config.storage_budget // config.server_count)
    y = max(1, config.storage_budget // config.entry_count)
    builders = {
        "fixed": lambda: FixedX(cluster, x=x),
        "random_server": lambda: RandomServerX(cluster, x=x),
        "round_robin": lambda: RoundRobinY(cluster, y=y),
        "hash": lambda: HashY(cluster, y=y),
        "key_partitioning": lambda: KeyPartitioning(cluster),
    }
    return builders[label]()


def measure_point(
    config: AvailabilityConfig, availability: float, seed: int
) -> Dict[str, float]:
    """One run: crash/repair + lookups against each scheme."""
    mtbf = (
        availability
        * config.mean_time_to_repair
        / max(1e-9, 1.0 - availability)
    )
    failure_config = FailureProcessConfig(
        mean_time_between_failures=mtbf,
        mean_time_to_repair=config.mean_time_to_repair,
    )
    samples: Dict[str, float] = {}
    entries = make_entries(config.entry_count)
    for label in SCHEME_LABELS:
        # Fresh cluster per scheme so failures don't leak across; the
        # same seed gives every scheme the same failure schedule.
        cluster = Cluster(config.server_count, seed=seed)
        strategy = _build_scheme(label, config, cluster)
        strategy.place(entries)
        failure_events = FailureProcess(
            failure_config, rng=random.Random(seed)
        ).events_for_fleet(config.server_count, config.horizon)
        lookup_events = LookupWorkload(
            target=config.target, rng=random.Random(seed + 1)
        ).events_uniform(config.lookups_per_run, 0.0, config.horizon)
        replayer = TraceReplayer(strategy)
        stats = replayer.replay(
            sorted(
                failure_events + lookup_events, key=lambda event: event.time
            )
        )
        samples[label] = stats.lookup_failure_rate
        cluster.recover_all()
    return samples


def run(
    config: AvailabilityConfig = AvailabilityConfig(), *, jobs: Optional[int] = None
) -> ExperimentResult:
    """Lookup failure rate vs per-server availability, per scheme."""
    labels = list(SCHEME_LABELS)
    result = ExperimentResult(
        name="Availability: lookup failure rate under random crash/repair",
        headers=["availability"] + labels,
        meta={
            "h": config.entry_count,
            "n": config.server_count,
            "budget": config.storage_budget,
            "t": config.target,
            "runs": config.runs,
        },
    )
    with make_executor(jobs) as executor:
        for availability in config.availabilities:
            averaged = average_runs_multi(
                partial(measure_point, config, availability),
                master_seed=config.seed + int(availability * 1000),
                runs=config.runs,
                executor=executor,
            )
            row: Dict[str, object] = {"availability": availability}
            for label in labels:
                row[label] = round(averaged[label].mean, 4)
            result.rows.append(row)
    return result
