"""Property-based tests on the metric functions."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.entry import Entry
from repro.metrics.fault_tolerance import server_importance
from repro.metrics.unfairness import (
    exact_unfairness_uniform_subset,
    instance_unfairness,
)

probability_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=50,
)


@settings(deadline=None)
@given(probability_lists, st.integers(min_value=1, max_value=20))
def test_unfairness_nonnegative(probabilities, target):
    assert instance_unfairness(probabilities, target) >= 0.0


@settings(deadline=None)
@given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=50))
def test_uniform_probabilities_are_fair(h, target):
    assume(target <= h)
    probabilities = [target / h] * h
    assert instance_unfairness(probabilities, target) < 1e-9


@settings(deadline=None)
@given(st.integers(min_value=2, max_value=100), st.integers(min_value=1, max_value=10))
def test_single_entry_monopoly_maximizes_unfairness(h, target):
    """All probability mass on one entry is worse than any even split."""
    assume(target <= h)
    monopoly = [float(target)] + [0.0] * (h - 1)
    spread = [target / h] * h
    assert instance_unfairness(monopoly, target) > instance_unfairness(
        spread, target
    )


@settings(deadline=None)
@given(
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=1, max_value=50),
)
def test_subset_closed_form_matches_equation_one(covered, h, target):
    assume(covered <= h)
    assume(target <= covered)
    # A uniform lookup over `covered` of `h` entries: p = t/covered.
    probabilities = [target / covered] * covered + [0.0] * (h - covered)
    direct = instance_unfairness(probabilities, target)
    closed = exact_unfairness_uniform_subset(covered, h, target)
    assert math.isclose(direct, closed, rel_tol=1e-9, abs_tol=1e-9)


@settings(deadline=None)
@given(
    st.dictionaries(
        keys=st.integers(min_value=0, max_value=8),
        values=st.sets(st.sampled_from(["a", "b", "c", "d", "e"]), max_size=5),
        min_size=1,
        max_size=8,
    )
)
def test_importance_total_equals_distinct_entries(raw_placement):
    """Σ_S X_S = Σ_e f_e · (1/f_e) = number of distinct stored entries."""
    placement = {
        sid: {Entry(name) for name in names} for sid, names in raw_placement.items()
    }
    scores = server_importance(placement)
    distinct = set().union(*placement.values()) if placement else set()
    assert math.isclose(sum(scores.values()), len(distinct), rel_tol=1e-9)
