"""Property-based tests for EntryStore: it must behave as an ordered set."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.server import EntryStore
from repro.core.entry import Entry

entry_ids = st.text(
    alphabet="abcdefgh", min_size=1, max_size=4
)

operations = st.lists(
    st.tuples(st.sampled_from(["add", "discard"]), entry_ids),
    max_size=60,
)


@given(operations)
def test_store_matches_model_set(ops):
    """The store's membership always equals a plain model dict's."""
    store = EntryStore()
    model = {}
    for action, entry_id in ops:
        entry = Entry(entry_id)
        if action == "add":
            changed = store.add(entry)
            assert changed == (entry_id not in model)
            model[entry_id] = entry
        else:
            changed = store.discard(entry)
            assert changed == (entry_id in model)
            model.pop(entry_id, None)
        assert len(store) == len(model)
        assert {e.entry_id for e in store} == set(model)


@given(operations)
def test_store_never_duplicates(ops):
    store = EntryStore()
    for action, entry_id in ops:
        if action == "add":
            store.add(Entry(entry_id))
        else:
            store.discard(Entry(entry_id))
    listed = [e.entry_id for e in store]
    assert len(listed) == len(set(listed))


@given(st.lists(entry_ids, unique=True, min_size=1, max_size=30),
       st.integers(min_value=0, max_value=40),
       st.integers())
def test_sample_is_subset_of_requested_size(ids, count, seed):
    store = EntryStore([Entry(i) for i in ids])
    sampled = store.sample(count, random.Random(seed))
    assert len(sampled) == (len(ids) if count <= 0 or count >= len(ids) else count)
    assert {e.entry_id for e in sampled} <= set(ids)
    assert len({e.entry_id for e in sampled}) == len(sampled)


@given(st.lists(entry_ids, unique=True, min_size=1, max_size=20), st.integers())
def test_pop_random_drains_completely(ids, seed):
    store = EntryStore([Entry(i) for i in ids])
    rng = random.Random(seed)
    popped = [store.pop_random(rng).entry_id for _ in range(len(ids))]
    assert sorted(popped) == sorted(ids)
    assert len(store) == 0
