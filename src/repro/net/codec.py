"""The wire format: length-prefixed JSON frames over a byte stream.

Framing
-------
Each frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON.  Length prefixes keep the protocol
self-delimiting over TCP's byte stream without sentinel scanning; the
:data:`MAX_FRAME` bound (16 MiB) rejects corrupt prefixes before they
turn into giant allocations.

Value encoding
--------------
JSON has no tuples, no :class:`~repro.core.entry.Entry`, and no typed
messages, so non-JSON values are *tagged*: an object with a single
``"!"`` key naming the type.

- ``{"!": "entry", "id": ..., "payload": ...}`` — an Entry.  Payloads
  must themselves be wire-encodable; opaque application payloads that
  are not JSON-serializable are rejected at encode time rather than
  silently mangled.
- ``{"!": "tuple", "items": [...]}`` — a tuple (lists pass through as
  JSON arrays, so round-trips preserve the list/tuple distinction
  that :class:`~repro.cluster.messages.Message` fields rely on).
- ``{"!": "msg", "type": "LookupRequest", "fields": {...}}`` — a
  typed message, by dataclass field name.  The decode registry is
  built from the live :class:`~repro.cluster.messages.Message` class
  hierarchy (the :func:`~repro.cluster.messages.known_message_types`
  pattern), so new message types become wire-addressable without
  codec changes.

Envelopes
---------
A request frame is ``{"op": ..., ...}`` and a reply frame is
``{"ok": true, "value": ...}`` or ``{"ok": false, "error": <code>,
"detail": <human text>}``.  Error codes are part of the protocol:
``"unavailable"`` (the addressed server is failed), ``"dropped"``
(the transport lost the request), ``"bad-request"`` (malformed or
unknown op), and ``"internal"`` (handler raised).  See
``docs/protocols.md`` for the full schema catalogue.

The sharded deployment adds the membership plane on the same wire:
``{"op": "heartbeat", "message": <Heartbeat>}`` carries the tagged
:class:`~repro.cluster.messages.Heartbeat` message (incarnation plus
the sender's gossiped peer view) and is answered with the receiver's
own ``Heartbeat``, so one round-trip refreshes the failure detectors
on both ends; ``{"op": "membership"}`` reads a shard's current view.
:func:`heartbeat_envelope` / :func:`decode_heartbeat` are the typed
faces for that op.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import struct
from typing import Any

from repro.core.entry import Entry
from repro.cluster.messages import Heartbeat, Message

#: Frames above this size are rejected (corrupt length prefix guard).
MAX_FRAME = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(ValueError):
    """A value or message cannot be encoded/decoded for the wire."""


class FrameError(ConnectionError):
    """The byte stream violated the framing protocol."""


# --------------------------------------------------------------------------
# Value encoding
# --------------------------------------------------------------------------


def _message_registry() -> dict[str, type]:
    registry: dict[str, type] = {}
    stack = [Message]
    while stack:
        cls = stack.pop()
        for sub in cls.__subclasses__():
            registry[sub.__name__] = sub
            stack.append(sub)
    return registry


#: Wire name -> message class, from the live hierarchy.  Built once at
#: import; all concrete message types live in ``cluster.messages``.
MESSAGE_TYPES: dict[str, type] = _message_registry()


def encode_value(value: Any) -> Any:
    """Encode one Python value into its JSON-safe wire form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Entry):
        return {"!": "entry", "id": value.entry_id, "payload": encode_value(value.payload)}
    if isinstance(value, tuple):
        return {"!": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, Message):
        return encode_message(value)
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str) or key == "!":
                raise WireError(f"unencodable dict key: {key!r}")
            out[key] = encode_value(item)
        return out
    raise WireError(f"unencodable value of type {type(value).__name__}: {value!r}")


def decode_value(wire: Any) -> Any:
    """Decode one wire value back into its Python form."""
    if wire is None or isinstance(wire, (bool, int, float, str)):
        return wire
    if isinstance(wire, list):
        return [decode_value(v) for v in wire]
    if isinstance(wire, dict):
        tag = wire.get("!")
        if tag is None:
            return {k: decode_value(v) for k, v in wire.items()}
        if tag == "entry":
            return Entry(wire["id"], decode_value(wire.get("payload")))
        if tag == "tuple":
            return tuple(decode_value(v) for v in wire["items"])
        if tag == "msg":
            return decode_message(wire)
        raise WireError(f"unknown wire tag: {tag!r}")
    raise WireError(f"undecodable wire value: {wire!r}")


def encode_message(message: Message) -> dict[str, Any]:
    """Encode a typed cluster message as a tagged wire object."""
    fields = {
        f.name: encode_value(getattr(message, f.name))
        for f in dataclasses.fields(message)
    }
    return {"!": "msg", "type": type(message).__name__, "fields": fields}


def decode_message(wire: dict[str, Any]) -> Message:
    """Decode a tagged wire object back into its message dataclass."""
    name = wire.get("type")
    cls = MESSAGE_TYPES.get(name)
    if cls is None:
        raise WireError(f"unknown message type: {name!r}")
    raw = wire.get("fields", {})
    if not isinstance(raw, dict):
        raise WireError(f"malformed fields for {name}: {raw!r}")
    declared = {f.name for f in dataclasses.fields(cls)}
    if set(raw) != declared:
        raise WireError(
            f"{name} fields mismatch: got {sorted(raw)}, want {sorted(declared)}"
        )
    return cls(**{k: decode_value(v) for k, v in raw.items()})


def heartbeat_envelope(heartbeat: "Heartbeat") -> dict[str, Any]:
    """The request envelope carrying one membership heartbeat."""
    return {"op": "heartbeat", "message": encode_message(heartbeat)}


def decode_heartbeat(wire: Any) -> "Heartbeat":
    """Decode a wire value that must be a :class:`Heartbeat`.

    The membership pump feeds heartbeats straight into the sans-IO
    failure detector, so a peer answering the heartbeat op with any
    other message type is a protocol violation, not a quiet no-op.
    """
    message = decode_message(wire) if isinstance(wire, dict) else wire
    if not isinstance(message, Heartbeat):
        raise WireError(
            f"expected a Heartbeat, got {type(message).__name__}: {message!r}"
        )
    return message


# --------------------------------------------------------------------------
# Envelopes
# --------------------------------------------------------------------------


def encode_envelope(obj: dict[str, Any]) -> bytes:
    """Serialize one request/reply envelope into a framed byte string."""
    try:
        body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireError(f"unencodable envelope: {exc}") from exc
    if len(body) > MAX_FRAME:
        raise WireError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def decode_envelope(body: bytes) -> dict[str, Any]:
    """Parse one frame body into an envelope dict."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame body: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(f"frame body must be an object, got {type(obj).__name__}")
    return obj


# --------------------------------------------------------------------------
# Asyncio stream helpers
# --------------------------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one framed envelope; ``None`` on clean end-of-stream.

    A connection that closes *between* frames is a normal hangup; one
    that closes mid-frame raises :class:`FrameError`.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid length prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid frame") from exc
    return decode_envelope(body)


async def write_frame(writer: asyncio.StreamWriter, obj: dict[str, Any]) -> None:
    """Write one framed envelope and drain the transport."""
    writer.write(encode_envelope(obj))
    await writer.drain()


__all__ = [
    "MAX_FRAME",
    "MESSAGE_TYPES",
    "FrameError",
    "WireError",
    "decode_envelope",
    "decode_heartbeat",
    "decode_message",
    "decode_value",
    "encode_envelope",
    "encode_message",
    "encode_value",
    "heartbeat_envelope",
    "read_frame",
    "write_frame",
]
