"""Generate a self-contained markdown report of every experiment.

``python -m repro report --out report.md`` runs the full suite at a
chosen statistical scale and writes one document with a markdown table
per paper artifact (plus the extension experiments), each preceded by
the expected-shape notes — a shareable artifact of a reproduction run.
"""

from __future__ import annotations

import dataclasses
import datetime
import pathlib
from typing import Any, Dict, List, Optional

from repro.core.exceptions import InvalidParameterError
from repro.experiments.plotting import plot_experiment
from repro.experiments.registry import (
    ExperimentSpec,
    build_config,
    list_experiments,
)
from repro.experiments.runner import ExperimentResult

#: Per-scale config overrides applied wherever the field exists.
SCALES: Dict[str, Dict[str, Any]] = {
    "quick": {
        "runs": 3,
        "lookups_per_run": 150,
        "lookups_per_instance": 500,
        "updates_per_run": 1500,
        "lookups": 400,
        "churn_updates": 400,
        "update_trace_length": 400,
        "stochastic_runs": 10,
    },
    "default": {},
    "thorough": {
        "runs": 40,
        "lookups_per_run": 1000,
        "lookups_per_instance": 5000,
        "updates_per_run": 10000,
        "lookups": 4000,
    },
}

_SHAPE_NOTES: Dict[str, str] = {
    "table1": "Deterministic rows must equal the closed forms exactly; "
    "the Hash-y row is an expectation over hash collisions.",
    "fig4": "Round-2 steps by one server per 20 of target; "
    "RandomServer-20 tracks it from above; Hash-2 pays >1 even for "
    "small targets but dips below the others just past each step.",
    "fig6": "Round/Hash cover min(budget, h); Fixed covers budget/n; "
    "RandomServer follows the inverted exponential h·(1−(1−x/h)^n).",
    "fig7": "Round-2 matches n − ⌈tn/h⌉ + y − 1; RandomServer-20 sits "
    "at or above it; Hash-2 declines in an S-shape.",
    "fig9": "RandomServer decays in two phases toward ~0; Hash rises "
    "through phase 1 then drifts; Fixed-x is an order of magnitude "
    "worse (closed-form column).",
    "fig12": "Failure time >10% with no cushion, dropping roughly an "
    "order of magnitude per early cushion entry; the Zipf tail keeps "
    "a failure floor.",
    "fig13": "Unfairness rises rapidly with churn and plateaus a "
    "factor ~2 under Fixed-x's constant 2.0.",
    "fig14": "Fixed's cost falls smoothly with h; Hash steps at its y "
    "break points; the curves cross multiple times.",
    "table2": "Stars are per-column ranks of measured values; they "
    "satisfy every prose claim of the paper's summary.",
    "hotspot": "Key partitioning funnels 100% of a popular key's load "
    "to one server and loses the key with it; partial schemes spread "
    "to ~1/n and survive.",
    "availability": "Partial schemes drive lookup failures to zero as "
    "server availability rises; partitioning tracks owner downtime; "
    "Fixed-x's coverage cap fails targets above x permanently.",
    "diverse": "Everyone serves the small-target majority in one "
    "contact; only the complete-coverage schemes serve the crawlers.",
}


def _scaled_overrides(spec: ExperimentSpec, scale: str) -> Dict[str, Any]:
    if scale not in SCALES:
        raise InvalidParameterError(
            f"unknown scale {scale!r}; available: {', '.join(sorted(SCALES))}"
        )
    valid = {f.name for f in dataclasses.fields(spec.config_class)}
    return {k: v for k, v in SCALES[scale].items() if k in valid}


def _markdown_table(result: ExperimentResult) -> str:
    headers = result.headers
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in result.rows:
        lines.append(
            "| " + " | ".join(str(row.get(h, "")) for h in headers) + " |"
        )
    return "\n".join(lines)


def generate_report(
    scale: str = "quick",
    include_plots: bool = False,
    experiment_ids: Optional[List[str]] = None,
) -> str:
    """Run the experiments and return the markdown document."""
    sections: List[str] = []
    specs = [
        spec
        for spec in list_experiments()
        if experiment_ids is None or spec.experiment_id in experiment_ids
    ]
    if not specs:
        raise InvalidParameterError("no experiments selected")
    for spec in specs:
        config = build_config(spec, _scaled_overrides(spec, scale))
        result = spec.run(config)
        section = [f"## {spec.paper_artifact}: {spec.description}", ""]
        note = _SHAPE_NOTES.get(spec.experiment_id)
        if note:
            section.append(f"*Expected shape:* {note}")
            section.append("")
        meta = ", ".join(f"{k}={v}" for k, v in result.meta.items())
        if meta:
            section.append(f"*Parameters:* {meta}")
            section.append("")
        section.append(_markdown_table(result))
        if include_plots and spec.plottable:
            section.append("")
            section.append("```")
            section.append(plot_experiment(result, log_y=spec.log_y))
            section.append("```")
        sections.append("\n".join(section))
    header = (
        "# Partial Lookup Services — reproduction report\n\n"
        f"Scale: `{scale}`.  Generated by `python -m repro report`.\n"
    )
    return header + "\n\n" + "\n\n".join(sections) + "\n"


def write_report(
    path: pathlib.Path,
    scale: str = "quick",
    include_plots: bool = False,
    experiment_ids: Optional[List[str]] = None,
) -> pathlib.Path:
    """Generate and write the report; returns the path."""
    document = generate_report(scale, include_plots, experiment_ids)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(document)
    return path
