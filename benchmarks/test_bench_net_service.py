"""Net-service throughput: concurrent partial lookups over real sockets.

Boots one in-process :class:`~repro.net.service.LookupService` on an
ephemeral loopback port and measures sustained lookups/second with a
small fleet of concurrent async clients — the socket path's end-to-end
cost (framing, codec, event-loop scheduling, protocol pump) on top of
the simulator work the other benches already measure.  Three metrics
go into the ``--bench-json`` artifact:

- ``net_lookups_per_sec`` — the original workload: sequential
  single lookups (one request/response round trip each) over the
  JSON codec, from a small fleet of concurrent clients.
- ``net_batched_lookups_per_sec`` — the pipelined path: one client,
  binary codec, ``lookup_many`` packing many lookups per write with
  out-of-order response correlation.  Uses ``full_replication`` (one
  contact per lookup) so the metric isolates wire + dispatch cost
  rather than multiplying it by a scheme's retry chain.
- ``net_multiclient_lookups_per_sec`` — several concurrent binary
  clients each running batched ``lookup_many``, sharing one server
  event loop: the contended aggregate throughput.
- ``net_hotkey_cached_lookups_per_sec`` — a Zipf-shaped stream of
  repeated RNG-free lookups against the hot-key reply cache
  (:mod:`repro.net.cache`); the same stream is replayed against a
  cache-disabled twin and every reply body is asserted byte-identical,
  with ``net_hotkey_cache_ratio`` recording the cached/uncached
  speedup (the PR's acceptance floor is 2x).
- ``net_workers2_lookups_per_sec`` — the multi-core path: a real
  ``repro serve --workers 2`` subprocess fleet (SO_REUSEPORT or the
  shared-socket fallback) driven by concurrent batched binary
  clients, torn down with SIGTERM and asserted to exit cleanly.  The
  ``_workers2`` suffix lets ``scripts/check_bench_regression.py``
  demote the metric to informational on boxes with fewer cores.
- ``net_log_store_lookups_per_sec`` / ``net_log_store_ratio`` — the
  batched workload against a ``--store log`` service vs its in-memory
  twin; the ratio is gated at >= 0.8 (lookups never journal, so the
  durable backend's read path must cost what memory's does).
- ``net_log_recovery_entries_per_sec`` — cold-start journal replay
  cost: a crashed five-scheme placement rebuilt from disk, timed as a
  whole ``LookupService`` construction.

Recorded numbers are machine-relative.  The committed baselines were
taken on a 1-core CI-class container; absolute values on other
hardware differ (the pre-batching ``net_lookups_per_sec`` baseline of
4,021.6 came from a ~1.3x faster box than the one that recorded the
batched numbers — compare ratios within one artifact, not across
machines).  Per-lookup cost on the batched path is dominated by the
protocol's pinned RNG draws (client probe-order shuffle + server
sampling) and the event-loop floor, not the codec, which is why the
batched speedup saturates around 6-8x the sequential path on one core.
"""

import asyncio
import os
import random
import signal
import struct
import subprocess
import sys
import tempfile
import time

from repro.cluster.messages import LookupRequest
from repro.net.cache import DEFAULT_CAPACITY
from repro.net.client import AsyncLookupClient
from repro.net.codec import (
    CODEC_BINARY,
    encode_envelope_as,
    encode_message,
    hello_envelope,
    read_frame,
    write_frame,
)
from repro.net.service import LookupService, ServiceConfig

CLIENTS = 4
LOOKUPS_PER_CLIENT = 75
TARGET = 8
SCHEME = "round_robin"


async def _drive(host, port, seed):
    async with AsyncLookupClient(host, port, rng=random.Random(seed)) as client:
        await client.info()  # warm the topology cache before timing
        for _ in range(LOOKUPS_PER_CLIENT):
            result = await client.lookup(SCHEME, TARGET)
            assert result.success
    return LOOKUPS_PER_CLIENT


async def _throughput():
    service = LookupService(ServiceConfig(server_count=16, entry_count=40, seed=3))
    host, port = await service.start(port=0)
    try:
        started = time.perf_counter()
        counts = await asyncio.gather(
            *(_drive(host, port, seed) for seed in range(CLIENTS))
        )
        elapsed = time.perf_counter() - started
    finally:
        await service.stop()
    return sum(counts) / elapsed


def test_bench_net_service_throughput(bench_json_record):
    lookups_per_sec = asyncio.run(asyncio.wait_for(_throughput(), timeout=120))
    print(
        f"\nnet service: {CLIENTS} clients x {LOOKUPS_PER_CLIENT} lookups "
        f"(target {TARGET}, {SCHEME}) -> {lookups_per_sec:,.0f} lookups/s"
    )
    bench_json_record("net_lookups_per_sec", round(lookups_per_sec, 1))
    # Sanity floor, far below any plausible loopback result: catches a
    # pathological regression (e.g. an accidental per-lookup reconnect)
    # without being machine-sensitive.
    assert lookups_per_sec > 50


BATCH_SCHEME = "full_replication"
BATCH_WARMUP = 50
BATCH_LOOKUPS = 4000
BATCH_CLIENTS = 3
BATCH_LOOKUPS_PER_CLIENT = 1200


async def _drive_batched(host, port, seed, count):
    async with AsyncLookupClient(
        host, port, rng=random.Random(seed), codec="binary"
    ) as client:
        await client.lookup_many(BATCH_SCHEME, [TARGET] * BATCH_WARMUP)
        started = time.perf_counter()
        report = await client.lookup_many(BATCH_SCHEME, [TARGET] * count)
        elapsed = time.perf_counter() - started
    assert len(report) == count and report.all_success
    return count, elapsed


async def _batched_throughput():
    service = LookupService(ServiceConfig(server_count=16, entry_count=40, seed=3))
    host, port = await service.start(port=0)
    try:
        count, elapsed = await _drive_batched(host, port, 7, BATCH_LOOKUPS)
    finally:
        await service.stop()
    return count / elapsed


async def _multiclient_throughput():
    service = LookupService(ServiceConfig(server_count=16, entry_count=40, seed=3))
    host, port = await service.start(port=0)
    try:
        started = time.perf_counter()
        results = await asyncio.gather(
            *(
                _drive_batched(host, port, seed, BATCH_LOOKUPS_PER_CLIENT)
                for seed in range(BATCH_CLIENTS)
            )
        )
        elapsed = time.perf_counter() - started
    finally:
        await service.stop()
    return sum(count for count, _ in results) / elapsed


def test_bench_net_batched_throughput(bench_json_record):
    lookups_per_sec = asyncio.run(asyncio.wait_for(_batched_throughput(), timeout=120))
    print(
        f"\nnet service batched: 1 client x {BATCH_LOOKUPS} lookups "
        f"(target {TARGET}, {BATCH_SCHEME}, binary codec, pipelined) "
        f"-> {lookups_per_sec:,.0f} lookups/s"
    )
    bench_json_record("net_batched_lookups_per_sec", round(lookups_per_sec, 1))
    # The pipelined binary path must stay well clear of the sequential
    # JSON path; the committed-baseline ratio is gated separately by
    # scripts/check_bench_regression.py.
    assert lookups_per_sec > 500


def test_bench_net_multiclient_throughput(bench_json_record):
    lookups_per_sec = asyncio.run(
        asyncio.wait_for(_multiclient_throughput(), timeout=120)
    )
    print(
        f"\nnet service multiclient: {BATCH_CLIENTS} clients x "
        f"{BATCH_LOOKUPS_PER_CLIENT} lookups "
        f"(target {TARGET}, {BATCH_SCHEME}, binary codec, pipelined) "
        f"-> {lookups_per_sec:,.0f} lookups/s"
    )
    bench_json_record("net_multiclient_lookups_per_sec", round(lookups_per_sec, 1))
    assert lookups_per_sec > 500


# --------------------------------------------------------------------------
# Hot-key reply cache: Zipf-repeated lookups, cache-on vs cache-off twins
# --------------------------------------------------------------------------

HOTKEY_SERVERS = 12
#: Large enough that packing the reply dominates the uncached cost
#: (the cache's memcpy win scales with reply size; per-frame event-loop
#: overhead is paid by both twins and dilutes the ratio).
HOTKEY_ENTRIES = 320
HOTKEY_LOOKUPS = 1500
HOTKEY_SCHEME = "full_replication"


def _hotkey_frames():
    """The benchmark's request stream, pre-encoded once.

    Zipf(1)-weighted server ids (rank-``r`` server drawn with weight
    ``1/(r+1)``) over ``full_replication`` with ``target=0`` — the
    RNG-free "send everything" shape, so every request is cacheable
    and the cache-on and cache-off services consume identical RNG
    streams.  Both services are fed the *same* byte-for-byte frames.
    """
    rng = random.Random(101)
    weights = [1.0 / (rank + 1) for rank in range(HOTKEY_SERVERS)]
    sids = rng.choices(range(HOTKEY_SERVERS), weights=weights, k=HOTKEY_LOOKUPS)
    message = encode_message(LookupRequest(0))
    def frame(sid):
        return encode_envelope_as(
            {"op": "send", "server": sid, "key": HOTKEY_SCHEME, "message": message},
            CODEC_BINARY,
        )
    warmup = [frame(sid) for sid in range(HOTKEY_SERVERS)]
    return warmup, [frame(sid) for sid in sids]


async def _pipeline_raw(reader, writer, frames):
    """Blast pre-encoded frames down one connection; collect raw reply bodies.

    Replies are read as opaque length-prefixed byte strings (never
    decoded) so the cache-on/cache-off comparison is on the exact
    wire bytes, not on a parsed view that could mask a difference.
    """
    writer.write(b"".join(frames))
    drain = asyncio.ensure_future(writer.drain())
    bodies = []
    for _ in frames:
        (length,) = struct.unpack(">I", await reader.readexactly(4))
        bodies.append(await reader.readexactly(length))
    await drain
    return bodies


async def _hotkey_run(cache_size, warmup, frames):
    service = LookupService(
        ServiceConfig(
            server_count=HOTKEY_SERVERS,
            entry_count=HOTKEY_ENTRIES,
            seed=3,
            cache_size=cache_size,
        )
    )
    host, port = await service.start(port=0)
    try:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await write_frame(writer, hello_envelope((CODEC_BINARY,)))
            hello = await read_frame(reader)
            assert hello and hello.get("ok")
            await _pipeline_raw(reader, writer, warmup)
            started = time.perf_counter()
            bodies = await _pipeline_raw(reader, writer, frames)
            elapsed = time.perf_counter() - started
        finally:
            writer.close()
            await writer.wait_closed()
        cache = service.reply_cache
        stats = cache.snapshot() if cache is not None else None
    finally:
        await service.stop()
    return bodies, elapsed, stats


async def _hotkey_throughput():
    warmup, frames = _hotkey_frames()
    cached_bodies, cached_elapsed, stats = await _hotkey_run(
        DEFAULT_CAPACITY, warmup, frames
    )
    uncached_bodies, uncached_elapsed, _ = await _hotkey_run(0, warmup, frames)
    return {
        "cached_bodies": cached_bodies,
        "uncached_bodies": uncached_bodies,
        "cached_per_sec": HOTKEY_LOOKUPS / cached_elapsed,
        "uncached_per_sec": HOTKEY_LOOKUPS / uncached_elapsed,
        "ratio": uncached_elapsed / cached_elapsed,
        "stats": stats,
    }


def test_bench_net_hotkey_cache(bench_json_record):
    run = asyncio.run(asyncio.wait_for(_hotkey_throughput(), timeout=120))
    print(
        f"\nnet service hot-key cache: {HOTKEY_LOOKUPS} Zipf lookups "
        f"(target 0, {HOTKEY_SCHEME}, {HOTKEY_ENTRIES} entries, binary codec) "
        f"-> cached {run['cached_per_sec']:,.0f}/s vs uncached "
        f"{run['uncached_per_sec']:,.0f}/s ({run['ratio']:.2f}x), "
        f"cache {run['stats']['hits']} hits / {run['stats']['misses']} misses"
    )
    # Soundness before speed: the cached service must serve the exact
    # reply bytes the uncached twin computes, on every single request.
    assert run["cached_bodies"] == run["uncached_bodies"]
    # The warmup covered every server id once, so the timed stream is
    # all hits on the cached service.
    assert run["stats"]["hits"] >= HOTKEY_LOOKUPS
    # Acceptance floor for this PR: >= 2x on the Zipf-repeated-key
    # workload.  Measured ~4x on a 1-core container; 2.0 leaves slack
    # for runner noise without letting the cache silently stop caching.
    assert run["ratio"] >= 2.0
    bench_json_record(
        "net_hotkey_cached_lookups_per_sec", round(run["cached_per_sec"], 1)
    )
    # Informational companion (no _per_sec/_speedup suffix, so the
    # regression gate reports it without gating): the measured ratio.
    bench_json_record("net_hotkey_cache_ratio", round(run["ratio"], 2))


# --------------------------------------------------------------------------
# Worker fleet: a real `serve --workers 2` subprocess, driven and torn down
# --------------------------------------------------------------------------

FLEET_WORKERS = 2
FLEET_CLIENTS = 3
FLEET_LOOKUPS_PER_CLIENT = 800


def _spawn_fleet(ready):
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host", "127.0.0.1",
        "--port", "0",
        "--servers", "16",
        "--entries", "40",
        "--seed", "3",
        "--workers", str(FLEET_WORKERS),
        "--ready-file", ready,
    ]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if process.poll() is not None:
            output = process.stdout.read() if process.stdout else ""
            raise AssertionError(
                f"fleet exited {process.returncode} at boot:\n{output}"
            )
        if os.path.exists(ready) and os.path.getsize(ready) > 0:
            with open(ready, encoding="utf-8") as handle:
                host, port = handle.read().split()
            return process, host, int(port)
        time.sleep(0.05)
    process.kill()
    raise AssertionError("fleet never became ready")


async def _drive_fleet(host, port):
    started = time.perf_counter()
    results = await asyncio.gather(
        *(
            _drive_batched(host, port, seed, FLEET_LOOKUPS_PER_CLIENT)
            for seed in range(FLEET_CLIENTS)
        )
    )
    elapsed = time.perf_counter() - started
    return sum(count for count, _ in results) / elapsed


def test_bench_net_workers_throughput(bench_json_record):
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmpdir:
        ready = os.path.join(tmpdir, "fleet.ready")
        process, host, port = _spawn_fleet(ready)
        try:
            lookups_per_sec = asyncio.run(
                asyncio.wait_for(_drive_fleet(host, port), timeout=120)
            )
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                raise
        output = process.stdout.read() if process.stdout else ""
    print(
        f"\nnet service workers: {FLEET_WORKERS} workers x {FLEET_CLIENTS} "
        f"clients x {FLEET_LOOKUPS_PER_CLIENT} lookups "
        f"(target {TARGET}, {BATCH_SCHEME}, binary codec, pipelined) "
        f"-> {lookups_per_sec:,.0f} lookups/s"
    )
    # Clean SIGTERM teardown is part of the contract being measured.
    assert process.returncode == 0, output
    assert "[serve] stopped" in output
    assert "Traceback" not in output
    bench_json_record("net_workers2_lookups_per_sec", round(lookups_per_sec, 1))
    assert lookups_per_sec > 500

# --------------------------------------------------------------------------
# Zero-copy reply path: cached batch sub-replies spliced through writelines
# --------------------------------------------------------------------------

ZC_SERVERS = 16
ZC_ENTRIES = 160
ZC_BATCH = 64
ZC_BATCHES = 60
ZC_SCHEME = "full_replication"


def _zerocopy_frames():
    """Pre-encoded batch request frames, all RNG-free (target 0).

    Every sub-request addresses (scheme, server, target=0) — cacheable
    — so after one warmup sweep the server's reply path is: local
    cache hit -> Prepacked body -> fragment splice -> one writelines.
    That chain IS the zero-copy tentpole; the client never decodes, so
    the number isolates the server-side reply path.
    """
    from repro.net.codec import pack_send_envelope

    rng = random.Random(77)
    message = LookupRequest(0)

    def batch(base):
        requests = [
            pack_send_envelope(
                base + offset, rng.randrange(ZC_SERVERS), ZC_SCHEME, message
            )
            for offset in range(ZC_BATCH)
        ]
        return encode_envelope_as(
            {"op": "batch", "requests": requests}, CODEC_BINARY
        )

    warmup = [
        encode_envelope_as(
            {
                "op": "batch",
                "requests": [
                    pack_send_envelope(sid, sid, ZC_SCHEME, message)
                    for sid in range(ZC_SERVERS)
                ],
            },
            CODEC_BINARY,
        )
    ]
    return warmup, [batch(index * ZC_BATCH) for index in range(ZC_BATCHES)]


async def _zerocopy_throughput():
    warmup, frames = _zerocopy_frames()
    service = LookupService(
        ServiceConfig(server_count=ZC_SERVERS, entry_count=ZC_ENTRIES, seed=3)
    )
    host, port = await service.start(port=0)
    try:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await write_frame(writer, hello_envelope((CODEC_BINARY,)))
            hello = await read_frame(reader)
            assert hello and hello.get("ok")
            await _pipeline_raw(reader, writer, warmup)
            started = time.perf_counter()
            await _pipeline_raw(reader, writer, frames)
            elapsed = time.perf_counter() - started
        finally:
            writer.close()
            await writer.wait_closed()
        stats = service.reply_cache.snapshot()
    finally:
        await service.stop()
    return (ZC_BATCH * ZC_BATCHES) / elapsed, stats


def test_bench_net_zerocopy_batched_throughput(bench_json_record):
    lookups_per_sec, stats = asyncio.run(
        asyncio.wait_for(_zerocopy_throughput(), timeout=120)
    )
    print(
        f"\nnet service zero-copy batched: {ZC_BATCHES} batches x {ZC_BATCH} "
        f"cached sub-lookups (target 0, {ZC_SCHEME}, {ZC_ENTRIES} entries, "
        f"binary codec) -> {lookups_per_sec:,.0f} lookups/s, "
        f"hit rate {stats['hit_rate']:.3f}"
    )
    # The warmup swept every (server, target=0) slot: the timed stream
    # must be pure hits, or the metric is measuring the wrong path.
    assert stats["hits"] >= ZC_BATCH * ZC_BATCHES
    bench_json_record(
        "net_zerocopy_batched_lookups_per_sec", round(lookups_per_sec, 1)
    )
    assert lookups_per_sec > 500


# --------------------------------------------------------------------------
# Warm respawn: hit rate of a SIGKILLed-and-respawned reader's first lookups
# --------------------------------------------------------------------------


async def _fleet_probe(host, port, frame):
    """One fresh binary connection: hot lookup, then an info probe.

    Returns the answering worker's capabilities dict — fresh
    connections land on an arbitrary fleet worker, so the caller loops
    until the worker it wants answers.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(writer, hello_envelope((CODEC_BINARY,)))
        hello = await read_frame(reader)
        assert hello and hello.get("ok")
        await _pipeline_raw(reader, writer, [frame])
        info = await _request_json(reader, writer)
        return info["capabilities"]
    finally:
        writer.close()
        await writer.wait_closed()


async def _request_json(reader, writer):
    await write_frame(writer, {"op": "info"}, codec=CODEC_BINARY)
    reply = await read_frame(reader)
    assert reply and reply.get("ok")
    return reply["value"]


def _read_manifest(path):
    pids = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            index, pid = line.split()
            pids[int(index)] = int(pid)
    return pids


async def _warm_respawn_hit_rate(ready, host, port, process):
    hot = encode_envelope_as(
        {
            "op": "send",
            "server": 0,
            "key": BATCH_SCHEME,
            "message": encode_message(LookupRequest(0)),
        },
        CODEC_BINARY,
    )
    seen = set()
    for _ in range(60):
        caps = await _fleet_probe(host, port, hot)
        seen.add(caps["workers"]["index"])
        if {0, 1} <= seen:
            break
    assert {0, 1} <= seen, f"probes only reached workers {sorted(seen)}"

    victims = _read_manifest(f"{ready}.workers")
    os.kill(victims[1], signal.SIGKILL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        assert process.poll() is None, "fleet died after reader kill"
        if _read_manifest(f"{ready}.workers").get(1, victims[1]) != victims[1]:
            break
        await asyncio.sleep(0.1)
    else:
        raise AssertionError("reader was never respawned")

    for _ in range(60):
        caps = await _fleet_probe(host, port, hot)
        if caps["workers"]["index"] == 1:
            return caps["cache"]["hit_rate"]
    raise AssertionError("probes never reached the respawned reader")


def test_bench_net_warm_respawn_hit_rate(bench_json_record):
    """Hit rate of the respawned reader's first served lookup: 1.0 when
    the warm handoff (hot-set import + shared segment) works, 0.0 when
    the replacement boots cold."""
    with tempfile.TemporaryDirectory(prefix="bench-respawn-") as tmpdir:
        ready = os.path.join(tmpdir, "fleet.ready")
        process, host, port = _spawn_fleet(ready)
        try:
            hit_rate = asyncio.run(
                asyncio.wait_for(
                    _warm_respawn_hit_rate(ready, host, port, process),
                    timeout=120,
                )
            )
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                raise
    print(f"\nnet service warm respawn: respawned reader hit rate {hit_rate:.3f}")
    bench_json_record("net_warm_respawn_hit_rate", round(hit_rate, 3))
    assert hit_rate >= 0.99


# --------------------------------------------------------------------------
# Append-log store: read-path parity with memory, and recovery cost
# --------------------------------------------------------------------------

LOG_STORE_LOOKUPS = 3000


async def _store_throughput(store, data_dir=None):
    """The pipelined batched-lookup workload against a chosen backend.

    Lookups never journal (only mutations append records), so the log
    backend's read path should cost what the memory backend's does —
    this pair of runs is the proof, and ``net_log_store_ratio`` the
    regression tripwire for any journaling that leaks onto reads.
    """
    overrides = {}
    if store == "log":
        overrides = {"store": "log", "data_dir": data_dir}
    service = LookupService(
        ServiceConfig(server_count=16, entry_count=40, seed=3, **overrides)
    )
    host, port = await service.start(port=0)
    try:
        count, elapsed = await _drive_batched(host, port, 7, LOG_STORE_LOOKUPS)
    finally:
        await service.stop()
    return count / elapsed


def test_bench_net_log_store_throughput(bench_json_record):
    with tempfile.TemporaryDirectory(prefix="bench-logstore-") as tmpdir:
        log_rate = asyncio.run(
            asyncio.wait_for(_store_throughput("log", tmpdir), timeout=120)
        )
    memory_rate = asyncio.run(
        asyncio.wait_for(_store_throughput("memory"), timeout=120)
    )
    ratio = log_rate / memory_rate
    print(
        f"\nnet service log store: {LOG_STORE_LOOKUPS} lookups "
        f"(target {TARGET}, {BATCH_SCHEME}, binary codec, pipelined) "
        f"-> log {log_rate:,.0f}/s vs memory {memory_rate:,.0f}/s "
        f"({ratio:.2f}x)"
    )
    bench_json_record("net_log_store_lookups_per_sec", round(log_rate, 1))
    # Informational name (no _per_sec suffix) but gated by an absolute
    # floor in scripts/check_bench_regression.py: the acceptance
    # criterion is the log backend serving >= 80% of memory's rate.
    bench_json_record("net_log_store_ratio", round(ratio, 2))
    assert ratio >= 0.8


RECOVERY_SERVERS = 12
RECOVERY_ENTRIES = 400


def test_bench_net_log_recovery(bench_json_record):
    """Cold-start journal replay cost, in recovered store entries/sec.

    Builds a full five-scheme placement on the log backend (every add
    journaled), closes the journal as a crash would leave it, and times
    a complete ``LookupService`` reconstruction from disk — replay,
    image application, and strategy re-construction included.
    """
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmpdir:
        def config():
            return ServiceConfig(
                server_count=RECOVERY_SERVERS,
                entry_count=RECOVERY_ENTRIES,
                seed=3,
                store="log",
                data_dir=tmpdir,
            )

        crashed = LookupService(config())
        stored = sum(
            crashed.cluster.storage_cost(key) for key in crashed.strategies
        )
        crashed.journal.close()
        started = time.perf_counter()
        reborn = LookupService(config())
        elapsed = time.perf_counter() - started
        assert reborn.recovered
        recovered = sum(
            reborn.cluster.storage_cost(key) for key in reborn.strategies
        )
        assert recovered == stored
    entries_per_sec = stored / elapsed
    print(
        f"\nnet service log recovery: {stored} store entries "
        f"({RECOVERY_SERVERS} servers x {RECOVERY_ENTRIES} entries, "
        f"5 schemes) replayed in {elapsed:.3f}s "
        f"-> {entries_per_sec:,.0f} entries/s"
    )
    bench_json_record("net_log_recovery_entries_per_sec", round(entries_per_sec, 1))
    # Far-below-plausible floor: catches a pathological replay (e.g.
    # quadratic re-scans) without being machine-sensitive.
    assert entries_per_sec > 1000
