"""How many runs does a target confidence interval need?

The paper reports 5000-run averages with 95% CIs under 0.1% of the
mean.  When reproducing at other scales, the practical question is
inverse: *given a pilot batch of samples, how many runs until my CI is
tight enough?*  The normal-approximation answer:

    required_n = (z · s / (r · |mean|))²

for sample std ``s``, target relative half-width ``r``, and the
confidence level's z value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.confidence import mean_confidence_interval
from repro.core.exceptions import InvalidParameterError

_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class ConvergencePlan:
    """The estimated run budget for a target precision."""

    pilot_samples: int
    pilot_mean: float
    pilot_relative_half_width: float
    target_relative_half_width: float
    required_runs: int

    @property
    def additional_runs(self) -> int:
        """Runs still needed beyond the pilot."""
        return max(0, self.required_runs - self.pilot_samples)

    @property
    def already_converged(self) -> bool:
        return self.pilot_relative_half_width <= self.target_relative_half_width


def plan_runs(
    pilot: Sequence[float],
    target_relative_half_width: float = 0.01,
    level: float = 0.95,
) -> ConvergencePlan:
    """Estimate the run count for a target relative CI half-width.

    >>> plan = plan_runs([10.0, 10.5, 9.5, 10.2, 9.8], 0.05)
    >>> plan.already_converged
    True
    >>> tight = plan_runs([10.0, 10.5, 9.5, 10.2, 9.8], 0.001)
    >>> tight.required_runs > 1000
    True

    Raises
    ------
    InvalidParameterError
        If fewer than two pilot samples are given (no variance
        estimate), the target is non-positive, or the pilot mean is
        zero (relative precision undefined).
    """
    if len(pilot) < 2:
        raise InvalidParameterError("need at least two pilot samples")
    if target_relative_half_width <= 0:
        raise InvalidParameterError("target_relative_half_width must be > 0")
    if level not in _Z_VALUES:
        raise InvalidParameterError(
            f"supported levels: {sorted(_Z_VALUES)}; got {level}"
        )
    ci = mean_confidence_interval(pilot, level=level)
    if ci.mean == 0:
        raise InvalidParameterError(
            "pilot mean is zero; relative precision is undefined"
        )
    count = len(pilot)
    std = ci.half_width * math.sqrt(count) / _Z_VALUES[level]
    required = math.ceil(
        (_Z_VALUES[level] * std / (target_relative_half_width * abs(ci.mean)))
        ** 2
    )
    return ConvergencePlan(
        pilot_samples=count,
        pilot_mean=ci.mean,
        pilot_relative_half_width=ci.relative_half_width,
        target_relative_half_width=target_relative_half_width,
        required_runs=max(required, 2),
    )
