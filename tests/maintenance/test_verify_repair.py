"""Unit tests for placement verification and repair."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.entry import Entry, make_entries
from repro.maintenance.repair import repair
from repro.maintenance.verify import verify_placement
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.registry import available_strategies, create_strategy
from repro.strategies.round_robin import RoundRobinY

PARAMS = {
    "full_replication": {},
    "fixed": {"x": 10},
    "random_server": {"x": 10},
    "round_robin": {"y": 2},
    "hash": {"y": 2},
    "key_partitioning": {},
}


class TestVerifyCleanPlacements:
    @pytest.mark.parametrize("name", available_strategies())
    def test_fresh_placement_has_no_violations(self, name):
        strategy = create_strategy(name, Cluster(8, seed=1), **PARAMS[name])
        strategy.place(make_entries(30))
        assert verify_placement(strategy) == []

    @pytest.mark.parametrize("name", available_strategies())
    def test_healthy_updates_stay_clean(self, name):
        strategy = create_strategy(name, Cluster(8, seed=2), **PARAMS[name])
        strategy.place(make_entries(30))
        strategy.add(Entry("new"))
        strategy.delete(Entry("v7"))
        assert verify_placement(strategy) == []


class TestVerifyDetectsDamage:
    def test_divergent_fixed_store(self):
        strategy = FixedX(Cluster(4, seed=3), x=5)
        strategy.place(make_entries(20))
        strategy.cluster.fail(2)
        strategy.delete(Entry("v1"))  # server 2 keeps a stale copy
        strategy.cluster.recover(2)
        violations = verify_placement(strategy)
        assert any(v.kind == "divergent_store" for v in violations)
        assert any("v1" in str(v) for v in violations)

    def test_missing_hash_replica(self):
        strategy = HashY(Cluster(8, seed=4), y=2)
        strategy.place(make_entries(20))
        # Knock a copy off one of its targets by hand.
        entry = Entry("v5")
        target = strategy.family.assign_distinct(entry)[0]
        strategy.cluster.server(target).store("k").discard(entry)
        violations = verify_placement(strategy)
        assert any(v.kind == "missing_replica" for v in violations)

    def test_misplaced_hash_copy(self):
        strategy = HashY(Cluster(8, seed=5), y=2)
        strategy.place(make_entries(10))
        entry = Entry("v3")
        wrong = next(
            sid
            for sid in range(8)
            if sid not in strategy.family.assign_distinct(entry)
        )
        strategy.cluster.server(wrong).store("k").add(entry)
        violations = verify_placement(strategy)
        assert any(v.kind == "misplaced" for v in violations)

    def test_round_robin_replica_count(self):
        strategy = RoundRobinY(Cluster(6, seed=6), y=2)
        strategy.place(make_entries(12))
        strategy.cluster.fail(3)
        strategy.add(Entry("partial"))  # one copy lands on failed 3? or
        strategy.cluster.recover(3)
        violations = verify_placement(strategy)
        # The add's copy aimed at a failed server is missing iff the
        # tail positions hit it; either way verify must not crash and
        # any violation must be a replica_count one.
        assert all(
            v.kind in ("replica_count", "non_consecutive") for v in violations
        )

    def test_random_server_oversize_detected(self):
        strategy = RandomServerX(Cluster(4, seed=7), x=3)
        strategy.place(make_entries(10))
        for entry in make_entries(10):
            strategy.cluster.server(0).store("k").add(entry)
        violations = verify_placement(strategy)
        assert any(v.kind == "oversized_store" for v in violations)

    def test_violation_str(self):
        strategy = FixedX(Cluster(3, seed=8), x=2)
        strategy.place(make_entries(5))
        strategy.cluster.server(1).store("k").discard(Entry("v1"))
        violation = verify_placement(strategy)[0]
        assert "[divergent_store]" in str(violation)


class TestRepair:
    def _damaged_hash(self, seed=9):
        strategy = HashY(Cluster(8, seed=seed), y=2)
        strategy.place(make_entries(40))
        cluster = strategy.cluster
        cluster.fail(0)
        cluster.fail(3)
        # Updates while degraded: missing copies + stale copies.
        for i in range(6):
            strategy.add(Entry(f"n{i}"))
        for i in range(1, 6):
            strategy.delete(Entry(f"v{i}"))
        cluster.recover_all()
        return strategy

    def test_targeted_hash_repair_restores_invariants(self):
        strategy = self._damaged_hash()
        assert verify_placement(strategy)  # damage present
        report = repair(strategy)
        assert report.mode == "targeted"
        assert report.clean
        assert verify_placement(strategy) == []

    def test_naive_repair_restores_invariants(self):
        strategy = self._damaged_hash(seed=10)
        report = repair(strategy, mode="naive")
        assert report.clean

    def test_targeted_cheaper_than_naive_for_light_damage(self):
        a = self._damaged_hash(seed=11)
        targeted = repair(a, mode="targeted")
        b = self._damaged_hash(seed=11)
        naive = repair(b, mode="naive")
        assert targeted.messages < naive.messages

    def test_naive_repair_resurrects_stale_deletes(self):
        """The documented no-tombstone consequence."""
        strategy = FullReplication(Cluster(4, seed=12))
        strategy.place(make_entries(10))
        strategy.cluster.fail(2)
        strategy.delete(Entry("v1"))  # server 2 keeps a stale copy
        strategy.cluster.recover(2)
        report = repair(strategy)
        assert report.clean
        # v1 is back everywhere: repair trusted the stale copy.
        assert Entry("v1") in strategy.lookup_all()

    def test_repair_on_clean_placement_is_noop_wrt_violations(self):
        strategy = FullReplication(Cluster(4, seed=13))
        strategy.place(make_entries(8))
        report = repair(strategy)
        assert report.violations_before == 0
        assert report.clean

    def test_mode_validation(self):
        strategy = FullReplication(Cluster(3, seed=14))
        strategy.place(make_entries(3))
        with pytest.raises(ValueError):
            repair(strategy, mode="magic")
        with pytest.raises(ValueError):
            repair(strategy, mode="targeted")  # hash-only
