"""Stochastic server failure/recovery processes.

§4.4 evaluates the *adversarial* worst case; operators also care about
the average case — servers crashing and recovering at random.  This
module generates alternating failure/recovery event streams per server
with exponential time-between-failures and time-to-repair, which the
availability experiment mixes with lookup traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.exceptions import InvalidParameterError
from repro.simulation.events import Event, FailureEvent, RecoveryEvent


@dataclass(frozen=True)
class FailureProcessConfig:
    """An exponential crash/repair model for one fleet of servers.

    Parameters
    ----------
    mean_time_between_failures:
        Expected healthy interval before a server crashes (MTBF).
    mean_time_to_repair:
        Expected downtime before the crashed server recovers (MTTR).
    """

    mean_time_between_failures: float
    mean_time_to_repair: float

    def __post_init__(self) -> None:
        if self.mean_time_between_failures <= 0:
            raise InvalidParameterError("MTBF must be positive")
        if self.mean_time_to_repair <= 0:
            raise InvalidParameterError("MTTR must be positive")

    @property
    def availability(self) -> float:
        """Steady-state per-server availability: MTBF / (MTBF + MTTR)."""
        return self.mean_time_between_failures / (
            self.mean_time_between_failures + self.mean_time_to_repair
        )


class FailureProcess:
    """Generates per-server crash/repair event streams."""

    def __init__(
        self,
        config: FailureProcessConfig,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config
        self.rng = rng if rng is not None else random.Random()

    def events_for_server(self, server_id: int, horizon: float) -> List[Event]:
        """Alternating failure/recovery events for one server.

        The server starts healthy; events past ``horizon`` are
        dropped.  A failure without its recovery inside the horizon is
        kept (the server simply stays down to the end).
        """
        if horizon <= 0:
            raise InvalidParameterError("horizon must be positive")
        events: List[Event] = []
        now = 0.0
        while True:
            now += self.rng.expovariate(
                1.0 / self.config.mean_time_between_failures
            )
            if now >= horizon:
                break
            events.append(FailureEvent(now, server_id=server_id))
            now += self.rng.expovariate(1.0 / self.config.mean_time_to_repair)
            if now >= horizon:
                break
            events.append(RecoveryEvent(now, server_id=server_id))
        return events

    def events_for_fleet(self, server_count: int, horizon: float) -> List[Event]:
        """Independent crash/repair streams for every server, merged."""
        events: List[Event] = []
        for server_id in range(server_count):
            events.extend(self.events_for_server(server_id, horizon))
        events.sort(key=lambda event: event.time)
        return events


def empirical_availability(events: List[Event], horizon: float) -> float:
    """Fraction of server-time healthy implied by one server's stream.

    A measurement helper for tests: integrates the up/down intervals
    of a single server's alternating event list.
    """
    if horizon <= 0:
        raise InvalidParameterError("horizon must be positive")
    up_time = 0.0
    last = 0.0
    healthy = True
    for event in events:
        if healthy and isinstance(event, FailureEvent):
            up_time += event.time - last
            healthy = False
            last = event.time
        elif not healthy and isinstance(event, RecoveryEvent):
            healthy = True
            last = event.time
    if healthy:
        up_time += horizon - last
    return up_time / horizon
