"""Unit tests for the discrete-event engine."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event, LookupEvent


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        seen = []
        engine.on(LookupEvent, lambda e: seen.append(e.time))
        engine.schedule_all(
            [LookupEvent(5.0), LookupEvent(1.0), LookupEvent(3.0)]
        )
        engine.run()
        assert seen == [1.0, 3.0, 5.0]

    def test_ties_break_in_insertion_order(self):
        engine = SimulationEngine()
        seen = []
        engine.on(LookupEvent, lambda e: seen.append(e.target))
        engine.schedule(LookupEvent(1.0, target=1))
        engine.schedule(LookupEvent(1.0, target=2))
        engine.schedule(LookupEvent(1.0, target=3))
        engine.run()
        assert seen == [1, 2, 3]

    def test_scheduling_in_the_past_rejected(self):
        engine = SimulationEngine()
        engine.on(LookupEvent, lambda e: None)
        engine.schedule(LookupEvent(5.0))
        engine.run()
        with pytest.raises(InvalidParameterError):
            engine.schedule(LookupEvent(1.0))

    def test_handler_can_schedule_future_events(self):
        engine = SimulationEngine()
        seen = []

        def cascade(event):
            seen.append(event.time)
            if event.time < 3:
                engine.schedule(LookupEvent(event.time + 1))

        engine.on(LookupEvent, cascade)
        engine.schedule(LookupEvent(1.0))
        engine.run()
        assert seen == [1.0, 2.0, 3.0]


class TestExecution:
    def test_clock_tracks_last_event(self):
        engine = SimulationEngine()
        engine.on(LookupEvent, lambda e: None)
        engine.schedule(LookupEvent(7.5))
        engine.run()
        assert engine.now == 7.5

    def test_run_until_leaves_later_events(self):
        engine = SimulationEngine()
        engine.on(LookupEvent, lambda e: None)
        engine.schedule_all([LookupEvent(1.0), LookupEvent(10.0)])
        executed = engine.run(until=5.0)
        assert executed == 1
        assert engine.pending == 1
        assert engine.now == 5.0  # clock advanced through the gap

    def test_run_max_events(self):
        engine = SimulationEngine()
        engine.on(LookupEvent, lambda e: None)
        engine.schedule_all([LookupEvent(float(i)) for i in range(5)])
        assert engine.run(max_events=3) == 3
        assert engine.pending == 2

    def test_step_on_empty_returns_none(self):
        assert SimulationEngine().step() is None

    def test_missing_handler_raises(self):
        engine = SimulationEngine()
        engine.schedule(LookupEvent(1.0))
        with pytest.raises(InvalidParameterError, match="no handler"):
            engine.step()

    def test_processed_counter(self):
        engine = SimulationEngine()
        engine.on(LookupEvent, lambda e: None)
        engine.schedule_all([LookupEvent(1.0), LookupEvent(2.0)])
        engine.run()
        assert engine.processed == 2

    def test_tracing(self):
        engine = SimulationEngine()
        engine.on(LookupEvent, lambda e: None)
        trace = engine.enable_tracing()
        engine.schedule(LookupEvent(1.0, target=5))
        engine.run()
        assert trace == ["lookup(t=5)@1"]
