"""Unit tests for the markdown report generator."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.experiments.report_doc import (
    SCALES,
    generate_report,
    write_report,
)


class TestGenerateReport:
    def test_selected_experiments_only(self):
        document = generate_report(
            scale="quick", experiment_ids=["table1"]
        )
        assert "## Table 1" in document
        assert "## Figure 4" not in document

    def test_tables_are_markdown(self):
        document = generate_report(scale="quick", experiment_ids=["table1"])
        assert "| strategy |" in document
        assert "|---|" in document

    def test_shape_notes_included(self):
        document = generate_report(scale="quick", experiment_ids=["table1"])
        assert "*Expected shape:*" in document

    def test_plots_fenced(self):
        document = generate_report(
            scale="quick", experiment_ids=["fig6"], include_plots=True
        )
        assert "```" in document
        assert "legend:" in document

    def test_unknown_scale_rejected(self):
        with pytest.raises(InvalidParameterError, match="scale"):
            generate_report(scale="galactic", experiment_ids=["table1"])

    def test_empty_selection_rejected(self):
        with pytest.raises(InvalidParameterError, match="no experiments"):
            generate_report(scale="quick", experiment_ids=["nothing"])

    def test_scales_defined(self):
        assert {"quick", "default", "thorough"} <= set(SCALES)


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(
            tmp_path / "sub" / "report.md",
            scale="quick",
            experiment_ids=["table1"],
        )
        assert path.exists()
        assert path.read_text().startswith("# Partial Lookup Services")

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "r.md"
        assert main([
            "report", "--out", str(out), "--only", "table1",
        ]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
