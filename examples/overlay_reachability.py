"""Limited reachability (§7.2): placing servers on an overlay network.

The paper's second variation drops the all-servers-reachable
assumption: clients live on a Gnutella-style overlay and can only
reach nodes within ``d`` hops.  The placement question becomes *where
to put servers* so every client has one nearby, and the tradeoff is
§7.2's: a small hop bound keeps lookups cheap but needs servers (and
therefore update fan-out) everywhere.

This example builds a 200-node random overlay, sweeps the hop bound,
and prints the tradeoff curve, then stands up an actual partial lookup
service on the chosen server nodes.

Run:  python examples/overlay_reachability.py
"""

import random

from repro import Cluster
from repro.core.entry import make_entries
from repro.experiments.report import render_table
from repro.extensions.reachability import OverlayNetwork, ReachabilityPlacement
from repro.strategies.round_robin import RoundRobinY

OVERLAY_NODES = 200


def main() -> None:
    overlay = OverlayNetwork.random(
        OVERLAY_NODES, mean_degree=4, rng=random.Random(42)
    )
    placement = ReachabilityPlacement(overlay)

    rows = []
    reports = {}
    for hop_bound in (0, 1, 2, 3, 4, 5):
        report = placement.place_servers(hop_bound)
        reports[hop_bound] = report
        rows.append(
            {
                "hop_bound_d": hop_bound,
                "servers_needed": report.update_fanout,
                "clients_covered": f"{report.clients_covered}/{report.clients_total}",
                "update_fanout": report.update_fanout,
            }
        )
    print(render_table(
        ["hop_bound_d", "servers_needed", "clients_covered", "update_fanout"],
        rows,
        title=f"§7.2 tradeoff on a {OVERLAY_NODES}-node overlay: "
              "small d = cheap lookups but many servers to update",
    ))

    # Deploy a partial lookup service on the d=2 server set.
    chosen = reports[2]
    cluster = Cluster(max(1, chosen.update_fanout), seed=7)
    service = RoundRobinY(cluster, y=min(2, cluster.size))
    service.place(make_entries(50))
    result = service.partial_lookup(5)
    print(
        f"\nDeployed Round-Robin on the {cluster.size} d=2 server nodes: "
        f"a size-5 lookup returned {len(result)} entries from "
        f"{result.lookup_cost} server(s)."
    )


if __name__ == "__main__":
    main()
