"""Periodic anti-entropy: scheduled verify + repair sweeps.

The paper's only nod at reconciliation is that stale placements are
"quickly repaired as new add events arrive" (§6.2) — which is false
for entries that never see another update.  The anti-entropy sweep
closes that gap operationally: a :class:`AntiEntropySweep` attaches to
a :class:`~repro.simulation.engine.SimulationEngine` and periodically

1. optionally restarts failed servers (``restart_failed``),
2. runs :func:`~repro.maintenance.verify.verify_placement`,
3. if violations exist **and** every server is operational, runs
   :func:`~repro.maintenance.repair.repair` and accounts the repair
   traffic separately from the workload's Section 6.4 counters.

Repair around still-failed servers re-breaks the moment they return,
so when servers are down and ``restart_failed`` is off the sweep only
*counts* the violations (``stats.deferred``) and waits for recovery.

The sweep self-schedules through
:class:`~repro.simulation.events.CallbackEvent`, which the engine
dispatches without handler registration — so it composes with any
event-driven workload (including :class:`~repro.simulation.replay.
TraceReplayer`, which drains the queue unbounded; the ``horizon``
guard is what stops the sweep from rescheduling forever there).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.maintenance.repair import RepairReport, repair
from repro.maintenance.verify import verify_placement
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import CallbackEvent
from repro.strategies.base import PlacementStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer


@dataclass
class SweepStats:
    """What the sweep observed and did across its lifetime."""

    sweeps: int = 0
    recoveries: int = 0
    violations_found: int = 0
    repairs: int = 0
    repair_messages: int = 0
    deferred: int = 0
    reports: List[RepairReport] = field(default_factory=list)

    def as_row(self) -> Tuple[int, int, int, int, int, int]:
        return (
            self.sweeps,
            self.recoveries,
            self.violations_found,
            self.repairs,
            self.repair_messages,
            self.deferred,
        )


class AntiEntropySweep:
    """A periodic verify-and-repair task bound to one strategy.

    Parameters
    ----------
    strategy:
        The placement to watch and mend.
    period:
        Simulated time between sweeps; must be positive.
    restart_failed:
        When True each sweep recovers every failed server (with its
        stale store — that is what repair is for) before verifying.
    repair_mode:
        Passed through to :func:`~repro.maintenance.repair.repair`;
        the default ``"auto"`` uses targeted repair on Hash-y and
        naive re-placement elsewhere.
    horizon:
        Optional hard stop: the sweep never schedules itself at a time
        strictly greater than ``horizon``.  Required when the driving
        loop is an unbounded ``engine.run()`` (e.g. ``TraceReplayer``),
        where a self-rescheduling task would otherwise never let the
        queue drain.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; each
        :meth:`sweep_once` then emits a ``"repair_sweep"`` span
        recording what the sweep found and did.
    """

    def __init__(
        self,
        strategy: PlacementStrategy,
        period: float,
        restart_failed: bool = False,
        repair_mode: str = "auto",
        horizon: Optional[float] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if period <= 0:
            raise InvalidParameterError(f"period must be positive, got {period}")
        if horizon is not None and horizon < 0:
            raise InvalidParameterError(f"horizon must be >= 0, got {horizon}")
        self._strategy = strategy
        self._period = period
        self._restart_failed = restart_failed
        self._repair_mode = repair_mode
        self._horizon = horizon
        self._tracer = tracer
        self._engine: Optional[SimulationEngine] = None
        self._stopped = False
        self.stats = SweepStats()

    @property
    def period(self) -> float:
        return self._period

    @property
    def stopped(self) -> bool:
        return self._stopped

    def start(self, engine: SimulationEngine, first_at: Optional[float] = None) -> None:
        """Schedule the first sweep on ``engine``.

        ``first_at`` defaults to one period after the engine's current
        time.  Starting an already-started sweep is an error; call
        :meth:`stop` first.
        """
        if self._engine is not None and not self._stopped:
            raise InvalidParameterError("sweep is already running")
        self._engine = engine
        self._stopped = False
        when = engine.now + self._period if first_at is None else first_at
        self._schedule(when)

    def stop(self) -> None:
        """Cancel future sweeps.

        Any already-queued CallbackEvent still fires but becomes a
        no-op; the engine owns its queue and events are frozen.
        """
        self._stopped = True

    # -- internals ------------------------------------------------------------

    def _schedule(self, when: float) -> None:
        if self._horizon is not None and when > self._horizon:
            return
        assert self._engine is not None
        self._engine.schedule(
            CallbackEvent(time=when, callback=self._fire, label="anti-entropy")
        )

    def _fire(self, now: float) -> None:
        if self._stopped:
            return
        self.sweep_once()
        self._schedule(now + self._period)

    def sweep_once(self) -> List:
        """One verify(+repair) pass, outside any schedule.

        Returns the violations found *before* any repair, so callers
        can assert convergence (an empty list means the placement was
        already clean when the sweep looked).
        """
        cluster = self._strategy.cluster
        self.stats.sweeps += 1
        span = None
        if self._tracer is not None:
            span = self._tracer.begin_span(
                "repair_sweep", sweep=self.stats.sweeps
            )
        outcome = {
            "recoveries": 0,
            "violations": 0,
            "deferred": False,
            "repaired": False,
            "repair_messages": 0,
        }
        try:
            if self._restart_failed:
                for server in cluster.servers:
                    if not server.alive:
                        server.recover()
                        self.stats.recoveries += 1
                        outcome["recoveries"] += 1
            violations = verify_placement(self._strategy)
            outcome["violations"] = len(violations)
            if not violations:
                return violations
            self.stats.violations_found += len(violations)
            if any(not server.alive for server in cluster.servers):
                # Repairing around down servers re-breaks on recovery;
                # defer until everyone is back.
                self.stats.deferred += 1
                outcome["deferred"] = True
                return violations
            report = repair(self._strategy, mode=self._repair_mode)
            self.stats.repairs += 1
            self.stats.repair_messages += report.messages
            self.stats.reports.append(report)
            outcome["repaired"] = True
            outcome["repair_messages"] = report.messages
            return violations
        finally:
            if span is not None:
                self._tracer.end_span(span, **outcome)
