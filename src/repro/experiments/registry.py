"""Registry of all paper experiments, for the CLI and run-all driver.

Each entry binds an experiment id (the paper artifact it regenerates)
to its config class and run function, with enough metadata to build a
command line and a report automatically.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.exceptions import InvalidParameterError
from repro.experiments import (
    availability,
    chaos_soak,
    diverse_clients,
    sensitivity,
    fig4_lookup_cost,
    fig6_coverage,
    fig7_fault_tolerance,
    fig9_unfairness,
    fig12_cushion,
    fig13_dynamic_unfairness,
    fig14_update_overhead,
    hotspot,
    table1_storage,
    table2_summary,
)
from repro.experiments.runner import ExperimentResult


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable paper experiment."""

    experiment_id: str
    paper_artifact: str
    description: str
    config_class: type
    run: Callable[[Any], ExperimentResult]
    #: Whether the first column is a numeric sweep (plottable).
    plottable: bool = True
    #: Plot failure-rate style data on a log axis.
    log_y: bool = False


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in [
        ExperimentSpec(
            "table1",
            "Table 1",
            "storage cost: closed forms vs measured placements",
            table1_storage.Table1Config,
            table1_storage.run,
            plottable=False,
        ),
        ExperimentSpec(
            "fig4",
            "Figure 4",
            "client lookup cost vs target answer size at a fixed budget",
            fig4_lookup_cost.Fig4Config,
            fig4_lookup_cost.run,
        ),
        ExperimentSpec(
            "fig6",
            "Figure 6",
            "maximum coverage vs total storage budget",
            fig6_coverage.Fig6Config,
            fig6_coverage.run,
        ),
        ExperimentSpec(
            "fig7",
            "Figure 7",
            "worst-case fault tolerance vs target answer size",
            fig7_fault_tolerance.Fig7Config,
            fig7_fault_tolerance.run,
        ),
        ExperimentSpec(
            "fig9",
            "Figure 9",
            "unfairness vs total storage (static placements)",
            fig9_unfairness.Fig9Config,
            fig9_unfairness.run,
        ),
        ExperimentSpec(
            "fig12",
            "Figure 12",
            "Fixed-x lookup failure time vs cushion size",
            fig12_cushion.Fig12Config,
            fig12_cushion.run,
            log_y=True,
        ),
        ExperimentSpec(
            "fig13",
            "Figure 13",
            "RandomServer-x unfairness deterioration under churn",
            fig13_dynamic_unfairness.Fig13Config,
            fig13_dynamic_unfairness.run,
        ),
        ExperimentSpec(
            "fig14",
            "Figure 14",
            "total update overhead: Fixed-x vs Hash-y",
            fig14_update_overhead.Fig14Config,
            fig14_update_overhead.run,
        ),
        ExperimentSpec(
            "table2",
            "Table 2",
            "strategy/metric star summary, re-derived from measurements",
            table2_summary.Table2Config,
            table2_summary.run,
            plottable=False,
        ),
        ExperimentSpec(
            "hotspot",
            "Figure 1 / conclusion",
            "popular-key hot spot: partitioning vs partial lookup",
            hotspot.HotspotConfig,
            hotspot.run,
            plottable=False,
        ),
        ExperimentSpec(
            "availability",
            "§4.4 companion",
            "lookup failure rate under random server crash/repair",
            availability.AvailabilityConfig,
            availability.run,
        ),
        ExperimentSpec(
            "diverse",
            "§4.3 companion",
            "mixed client populations: small targets + crawlers",
            diverse_clients.DiverseClientsConfig,
            diverse_clients.run,
            plottable=False,
        ),
        ExperimentSpec(
            "sensitivity",
            "robustness check",
            "do the §4.2/§4.4 orderings hold at other cluster sizes?",
            sensitivity.SensitivityConfig,
            sensitivity.run,
            plottable=False,
        ),
        ExperimentSpec(
            "chaos",
            "robustness gate",
            "soak all schemes under drop/duplicate/crash fault plans",
            chaos_soak.ChaosSoakConfig,
            chaos_soak.run,
            plottable=False,
        ),
    ]
}


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment, with a helpful error for typos."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(sorted(EXPERIMENTS))}"
        ) from None


def list_experiments() -> List[ExperimentSpec]:
    """All experiments in paper order."""
    return list(EXPERIMENTS.values())


def build_config(spec: ExperimentSpec, overrides: Dict[str, Any]):
    """Instantiate the spec's config with field overrides.

    Override values are coerced to the dataclass field's type where
    the field annotation is a simple builtin (int/float), so CLI
    strings Just Work; tuple-of-int fields accept comma-separated
    strings.
    """
    fields = {f.name: f for f in dataclasses.fields(spec.config_class)}
    coerced: Dict[str, Any] = {}
    for name, raw in overrides.items():
        if name not in fields:
            raise InvalidParameterError(
                f"{spec.experiment_id} has no parameter {name!r}; "
                f"available: {', '.join(sorted(fields))}"
            )
        default = fields[name].default
        if isinstance(raw, str):
            try:
                if isinstance(default, bool):
                    coerced[name] = raw.lower() in ("1", "true", "yes")
                elif isinstance(default, int):
                    coerced[name] = int(raw)
                elif isinstance(default, float):
                    coerced[name] = float(raw)
                elif isinstance(default, tuple):
                    parts = [p.strip() for p in raw.split(",") if p.strip()]
                    coerced[name] = tuple(
                        int(part) if part.lstrip("+-").isdigit() else part
                        for part in parts
                    )
                else:
                    coerced[name] = raw
            except ValueError:
                kind = type(default).__name__
                raise InvalidParameterError(
                    f"{spec.experiment_id} parameter {name!r} expects "
                    f"{kind}, got {raw!r}"
                ) from None
        else:
            coerced[name] = raw
    return spec.config_class(**coerced)


def run_manifest(spec: ExperimentSpec, config: Any) -> "RunManifest":
    """The :class:`~repro.obs.manifest.RunManifest` for one (spec, config).

    One derivation point for the whole CLI: the manifest the ``--json``
    artifact carries and the manifest a ``--trace`` header embeds come
    from the same call, so their run ids always agree.
    """
    from repro.obs.manifest import RunManifest

    return RunManifest.for_config(spec.experiment_id, config)
