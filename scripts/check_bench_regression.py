#!/usr/bin/env python
"""Compare a fresh ``--bench-json`` artifact against the committed baseline.

Usage::

    python scripts/check_bench_regression.py CURRENT BASELINE [--tolerance 0.25]

Fails (exit 1) when any benchmark present in both artifacts is more
than ``tolerance`` slower than the baseline wall clock, or when a
recorded bigger-is-better metric — any name containing ``_speedup``
or ending in ``_per_sec`` or ``_hit_rate`` — drops below
``1 - tolerance`` of its baseline value.  Benchmarks only present on one side are reported but
never fail the check, so adding or retiring benches does not require
lock-step baseline updates.

Speedup metrics whose names encode a parallelism requirement
(``..._jobsN`` for the process-pool experiments, ``..._workersN`` for
the serve worker fleet) are demoted to informational when either
artifact was recorded with fewer than N CPUs (top-level
``cpu_count``): a 1-CPU runner measuring jobs=4 or a 2-worker fleet
produces a meaningless sub-1x "speedup", and gating on it would fail
every PR for reasons unrelated to the code.

A few metrics carry an *absolute* floor independent of the baseline
(see ``ABSOLUTE_FLOORS``): ``net_log_store_ratio`` is the append-log
backend's lookup throughput as a fraction of the in-memory backend's,
and the acceptance criterion is >= 0.8 on every run — a baseline that
itself regressed must not grandfather a slower durable read path.

The committed baseline (``BENCH_results.json``) is refreshed in the PR
that changes the measured performance; see docs/performance.md.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

#: ``..._jobsN`` / ``..._workersN`` suffix on a speedup metric: the
#: parallelism the measurement needs to be meaningful.
JOBS_RE = re.compile(r"_(?:jobs|workers)(\d+)")

#: Metric name -> minimum acceptable value on *every* run, baseline or
#: not.  These encode acceptance criteria rather than
#: relative-to-baseline performance.
ABSOLUTE_FLOORS = {
    "net_log_store_ratio": 0.8,
}


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _by_test(artifact: dict) -> dict:
    return {
        record["test"]: record["wall_clock_seconds"]
        for record in artifact.get("benchmarks", [])
        if record.get("outcome") == "passed"
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly generated --bench-json artifact")
    parser.add_argument("baseline", help="committed baseline (BENCH_results.json)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    current = _load(args.current)
    baseline = _load(args.baseline)
    current_times = _by_test(current)
    baseline_times = _by_test(baseline)

    failures = []
    for test, base_seconds in sorted(baseline_times.items()):
        now_seconds = current_times.get(test)
        if now_seconds is None:
            print(f"SKIP (not in current run): {test}")
            continue
        limit = base_seconds * (1.0 + args.tolerance)
        verdict = "ok"
        if now_seconds > limit and now_seconds - base_seconds > 0.05:
            # The absolute floor keeps sub-100ms benches from failing
            # on scheduler jitter alone.
            verdict = "REGRESSION"
            failures.append(
                f"{test}: {now_seconds:.3f}s vs baseline "
                f"{base_seconds:.3f}s (> +{args.tolerance:.0%})"
            )
        print(f"{verdict:>10}  {now_seconds:8.3f}s  (base {base_seconds:8.3f}s)  {test}")
    for test in sorted(set(current_times) - set(baseline_times)):
        print(f"       new  {current_times[test]:8.3f}s  (no baseline)  {test}")

    for name, base_value in sorted(baseline.get("metrics", {}).items()):
        now_value = current.get("metrics", {}).get(name)
        if now_value is None:
            print(f"SKIP metric (not in current run): {name}")
            continue
        if (
            "_speedup" in name
            or name.endswith("_per_sec")
            or name.endswith("_hit_rate")
        ):
            jobs_match = JOBS_RE.search(name)
            cpus = min(
                current.get("cpu_count") or 1, baseline.get("cpu_count") or 1
            )
            if jobs_match and cpus < int(jobs_match.group(1)):
                print(
                    f"      info  {name} = {now_value} (base {base_value}; "
                    f"cpu_count {cpus} < {jobs_match.group(1)} "
                    f"needed by {jobs_match.group(0).lstrip('_')}, not gated)"
                )
                continue
            floor = base_value * (1.0 - args.tolerance)
            verdict = "ok"
            if now_value < floor:
                verdict = "REGRESSION"
                failures.append(
                    f"metric {name}: {now_value} vs baseline {base_value} "
                    f"(< -{args.tolerance:.0%})"
                )
            print(f"{verdict:>10}  {name} = {now_value} (base {base_value})")
        else:
            print(f"      info  {name} = {now_value} (base {base_value})")

    for name, floor in sorted(ABSOLUTE_FLOORS.items()):
        now_value = current.get("metrics", {}).get(name)
        if now_value is None:
            print(f"SKIP metric (not in current run): {name}")
            continue
        verdict = "ok"
        if now_value < floor:
            verdict = "REGRESSION"
            failures.append(
                f"metric {name}: {now_value} below the absolute floor {floor}"
            )
        print(f"{verdict:>10}  {name} = {now_value} (absolute floor {floor})")

    if failures:
        print("\nBENCHMARK REGRESSIONS:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
