"""Unit tests for named RNG streams."""

from repro.simulation.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(seed=1).get("arrivals").random()
        b = RngStreams(seed=1).get("arrivals").random()
        assert a == b

    def test_different_names_independent(self):
        streams = RngStreams(seed=1)
        assert streams.get("a").random() != streams.get("b").random()

    def test_stream_cached_per_name(self):
        streams = RngStreams(seed=1)
        assert streams.get("x") is streams.get("x")

    def test_adding_stream_does_not_perturb_existing(self):
        baseline = RngStreams(seed=5)
        baseline_values = [baseline.get("work").random() for _ in range(3)]

        perturbed = RngStreams(seed=5)
        perturbed.get("other")  # extra stream created first
        perturbed_values = [perturbed.get("work").random() for _ in range(3)]
        assert baseline_values == perturbed_values

    def test_spawn_children_distinct(self):
        parent = RngStreams(seed=7)
        child_a = parent.spawn(0)
        child_b = parent.spawn(1)
        assert child_a.seed != child_b.seed
        assert child_a.get("w").random() != child_b.get("w").random()

    def test_spawn_deterministic(self):
        assert RngStreams(seed=7).spawn(3).seed == RngStreams(seed=7).spawn(3).seed

    def test_unseeded_streams_differ(self):
        assert RngStreams().seed != RngStreams().seed
