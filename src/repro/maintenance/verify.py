"""Structural placement verification, per scheme.

Each scheme defines invariants over where entries live; failures
during updates can silently break them (stale copies, missing
replicas, desynchronized Fixed-x stores).  ``verify_placement``
inspects a live strategy and returns a violation list — empty means
the placement is exactly what the scheme promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.key_partitioning import KeyPartitioning
from repro.core.entry import Entry
from repro.strategies.base import PlacementStrategy
from repro.strategies.fixed import FixedX
from repro.strategies.full_replication import FullReplication
from repro.strategies.hashing import HashY
from repro.strategies.random_server import RandomServerX
from repro.strategies.round_robin import RoundRobinY


@dataclass(frozen=True)
class PlacementViolation:
    """One broken invariant, with enough context to act on."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


def _verify_identical_stores(strategy) -> List[PlacementViolation]:
    """Full replication and Fixed-x promise identical stores."""
    violations: List[PlacementViolation] = []
    placement = strategy.placement()
    reference_id = min(placement)
    reference = placement[reference_id]
    for server_id, entries in placement.items():
        if entries != reference:
            missing = {e.entry_id for e in reference - entries}
            extra = {e.entry_id for e in entries - reference}
            violations.append(
                PlacementViolation(
                    "divergent_store",
                    f"server {server_id} differs from server {reference_id}: "
                    f"missing={sorted(missing)} extra={sorted(extra)}",
                )
            )
    return violations


def _verify_fixed(strategy: FixedX) -> List[PlacementViolation]:
    violations = _verify_identical_stores(strategy)
    for server_id, size in enumerate(strategy.cluster.store_sizes(strategy.key)):
        if size > strategy.x:
            violations.append(
                PlacementViolation(
                    "oversized_store",
                    f"server {server_id} holds {size} > x={strategy.x}",
                )
            )
    return violations


def _verify_random_server(strategy: RandomServerX) -> List[PlacementViolation]:
    violations: List[PlacementViolation] = []
    for server_id, size in enumerate(strategy.cluster.store_sizes(strategy.key)):
        if size > strategy.x:
            violations.append(
                PlacementViolation(
                    "oversized_store",
                    f"server {server_id} holds {size} > x={strategy.x}",
                )
            )
    return violations


def _verify_round_robin(strategy: RoundRobinY) -> List[PlacementViolation]:
    violations: List[PlacementViolation] = []
    n = strategy.cluster.size
    y = strategy.y
    placement = strategy.placement()
    windows = [
        sorted((start + offset) % n for offset in range(y)) for start in range(n)
    ]
    for entry, count in strategy.cluster.replica_counts(
        strategy.key, alive_only=False
    ).items():
        holders = sorted(
            sid for sid, entries in placement.items() if entry in entries
        )
        if count != y:
            violations.append(
                PlacementViolation(
                    "replica_count",
                    f"{entry.entry_id} has {count} copies, expected {y}",
                )
            )
        elif holders not in windows:
            violations.append(
                PlacementViolation(
                    "non_consecutive",
                    f"{entry.entry_id} copies on {holders}, not consecutive",
                )
            )
    return violations


def _verify_hash(strategy: HashY) -> List[PlacementViolation]:
    violations: List[PlacementViolation] = []
    placement = strategy.placement()
    seen = set()
    for server_id, entries in placement.items():
        for entry in entries:
            seen.add(entry)
            targets = set(strategy.family.assign_distinct(entry))
            if server_id not in targets:
                violations.append(
                    PlacementViolation(
                        "misplaced",
                        f"{entry.entry_id} on server {server_id}, "
                        f"targets are {sorted(targets)}",
                    )
                )
    for entry in seen:
        targets = set(strategy.family.assign_distinct(entry))
        holders = {
            sid for sid, entries in placement.items() if entry in entries
        }
        missing = targets - holders
        if missing:
            violations.append(
                PlacementViolation(
                    "missing_replica",
                    f"{entry.entry_id} absent from targets {sorted(missing)}",
                )
            )
    return violations


def _verify_key_partitioning(
    strategy: KeyPartitioning,
) -> List[PlacementViolation]:
    violations: List[PlacementViolation] = []
    for server_id, entries in strategy.placement().items():
        if server_id != strategy.owner_id and entries:
            violations.append(
                PlacementViolation(
                    "misplaced",
                    f"{len(entries)} entries on non-owner server {server_id}",
                )
            )
    return violations


def verify_directory(directory) -> dict:
    """Verify every key of a :class:`PartialLookupDirectory`.

    Returns ``{key: [violations]}`` including only keys with at least
    one violation — an empty dict means the whole directory is sound.
    """
    report = {}
    for key in directory.keys():
        violations = verify_placement(directory.strategy(key))
        if violations:
            report[key] = violations
    return report


def verify_placement(strategy: PlacementStrategy) -> List[PlacementViolation]:
    """Check ``strategy``'s current placement against its invariants.

    Returns an empty list when the placement is exactly what the
    scheme promises; failed servers' stores are included (their stale
    contents are precisely what verification is for).
    """
    if isinstance(strategy, FixedX):
        return _verify_fixed(strategy)
    if isinstance(strategy, FullReplication):
        return _verify_identical_stores(strategy)
    if isinstance(strategy, RandomServerX):
        return _verify_random_server(strategy)
    if isinstance(strategy, RoundRobinY):
        return _verify_round_robin(strategy)
    if isinstance(strategy, HashY):
        return _verify_hash(strategy)
    if isinstance(strategy, KeyPartitioning):
        return _verify_key_partitioning(strategy)
    raise TypeError(f"no verifier for {type(strategy).__name__}")
